//! Domain example: an address generator for a word list using the paper's
//! Fig. 8 architecture — LUT cascade + auxiliary memory + comparator.
//!
//! A dictionary of words is mapped to indices 1..k; everything else must
//! return 0. Widening the specification (non-words become don't cares)
//! lets support-variable removal and Algorithm 3.3 shrink the cascade; the
//! auxiliary memory restores exactness.
//!
//! Run with: `cargo run --release --example address_generator`

#![allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
use bddcf::bdd::ReorderCost;
use bddcf::cascade::{synthesize_partitioned, AddressGenerator, CascadeOptions};
use bddcf::funcs::words::{encode_word, WordList};
use bddcf::funcs::{build_isf_pieces, Benchmark};
use bddcf::logic::MultiOracle;

fn main() {
    let dictionary = [
        "add", "and", "bdd", "cascade", "chart", "clique", "cover", "cut", "decomp", "dontcare",
        "edge", "lut", "node", "order", "rail", "sift", "width",
    ];
    let list = WordList::new(dictionary.iter().map(|w| w.to_string()).collect(), true);
    println!(
        "{} words, {} input bits, {} index bits, DC ratio {:.4}%",
        list.len(),
        list.num_inputs(),
        list.num_outputs(),
        list.dc_ratio() * 100.0
    );

    // Widened ISF -> reductions -> cascades.
    let (mgr, layout, isf) = build_isf_pieces(&list);
    let m = layout.num_outputs();
    let multi = synthesize_partitioned(
        &mgr,
        &layout,
        &isf,
        &[0..m],
        &CascadeOptions {
            max_cell_inputs: 10,
            max_cell_outputs: 8,
            ..CascadeOptions::default()
        },
        |cf| {
            let removed = cf.reduce_support_variables();
            cf.optimize_order(ReorderCost::SumOfWidths, 1);
            cf.reduce_alg33_default();
            println!(
                "  part prepared: {} redundant inputs removed, final width {}",
                removed.len(),
                cf.max_width()
            );
        },
    );
    println!(
        "cascades: {}  cells: {}  LUT bits: {}",
        multi.num_cascades(),
        multi.num_cells(),
        multi.memory_bits()
    );

    let generator = AddressGenerator::new(multi, list.encoded().to_vec(), list.num_inputs());
    println!(
        "auxiliary memory: {} bits; total {} bits",
        generator.aux_memory_bits(),
        generator.total_memory_bits()
    );

    // Look words up.
    println!("\nLookups:");
    for probe in ["bdd", "cascade", "width", "zebra", "bddd", "lu"] {
        let index = generator.lookup(encode_word(probe));
        match index {
            0 => println!("  {probe:<8} -> not in the dictionary"),
            i => println!(
                "  {probe:<8} -> index {i} ({})",
                dictionary[(i - 1) as usize]
            ),
        }
    }

    // Exactness: every word hits its index, non-words (sampled) return 0.
    for (i, w) in dictionary.iter().enumerate() {
        assert_eq!(generator.lookup(encode_word(w)), (i + 1) as u64);
    }
    for w in ["ab", "zzz", "caskade", "vhdl", "widths"] {
        assert_eq!(generator.lookup(encode_word(w)), 0);
    }
    println!("\nAddress generator verified: all words map to their index, probes map to 0.");
}
