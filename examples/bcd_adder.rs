//! Domain example: the decimal (BCD) adder — the paper's most dramatic
//! Table-4 row.
//!
//! A completely specified 4-digit BCD adder has a BDD_for_CF that is two
//! orders of magnitude wider than the incompletely specified one: once the
//! invalid BCD codes (10..15) become don't cares, the carry-chain
//! interleaved variable order collapses the width to ~a dozen, and the LUT
//! cascade shrinks accordingly.
//!
//! Run with: `cargo run --release --example bcd_adder`

use bddcf::bdd::ReorderCost;
use bddcf::cascade::{synthesize_partitioned, CascadeOptions};
use bddcf::core::partition::bipartition;
use bddcf::funcs::{build_isf_pieces, Benchmark, DecimalAdder};
use bddcf::logic::{MultiOracle, Response};

fn main() {
    let adder = DecimalAdder::new(4);
    println!(
        "{}: {} inputs, {} outputs, {:.1}% of the input space is invalid BCD",
        adder.name(),
        adder.num_inputs(),
        adder.num_outputs(),
        adder.dc_ratio() * 100.0
    );

    // Build with the generator's carry-chain interleaved order and split
    // the outputs (§5.1).
    let (mgr, layout, isf) = build_isf_pieces(&adder);
    let halves = bipartition(&mgr, &layout, &isf);
    for (k, mut cf) in halves.into_iter().enumerate() {
        cf.optimize_order(ReorderCost::SumOfWidths, 1);
        let dc0 = cf.completion_variant(false);
        println!(
            "half F{}: DC=0 completion width {:>5}  |  ISF width {:>3}",
            k + 1,
            dc0.max_width(),
            cf.max_width()
        );
        let stats = cf.reduce_alg33_default();
        println!(
            "          Algorithm 3.3: {} -> {} (paper's row: 79/1398 -> 10)",
            stats.max_width_before, stats.max_width_after
        );
    }

    // Full adder as hardware: synthesize, then actually add numbers on it.
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    let multi = synthesize_partitioned(
        &mgr,
        &layout,
        &isf,
        &[0..half, half..m],
        &CascadeOptions::default(),
        |cf| {
            cf.optimize_order(ReorderCost::SumOfWidths, 1);
            cf.reduce_alg33_default();
        },
    );
    println!(
        "\ncascades: {}  cells: {}  memory bits: {}",
        multi.num_cascades(),
        multi.num_cells(),
        multi.memory_bits()
    );

    println!("\nAdding on the synthesized cascade:");
    for (a, b) in [(1234u64, 8766u64), (9999, 9999), (1, 9), (4705, 1730)] {
        // Encode the operands digit-interleaved, most significant first.
        let mut word = 0u64;
        for i in 0..4 {
            let da = a / 10u64.pow(3 - i as u32) % 10;
            let db = b / 10u64.pow(3 - i as u32) % 10;
            word |= da << (8 * i);
            word |= db << (8 * i + 4);
        }
        let input: Vec<bool> = (0..32).map(|i| word >> i & 1 == 1).collect();
        let got = multi.eval(&input);
        let expect = match adder.respond(&input) {
            Response::Value(v) => v,
            Response::DontCare => unreachable!("valid BCD"),
        };
        assert_eq!(got, expect);
        // Decode the BCD result for display.
        let mut sum = 0u64;
        for d in 0..5 {
            let mut digit = 0u64;
            for b in 0..4 {
                if got >> (4 * d + (3 - b)) & 1 == 1 {
                    digit |= 1 << b;
                }
            }
            sum = sum * 10 + digit;
        }
        println!("  {a:>4} + {b:>4} = {sum:>5}   (cascade verified)");
        assert_eq!(sum, a + b);
    }
}
