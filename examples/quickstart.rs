//! Quickstart: the paper's running example end to end.
//!
//! Builds the BDD_for_CF of the incompletely specified 4-input, 2-output
//! function of Table 1 (in the paper's drawing order), reduces its width
//! with Algorithms 3.1 and 3.3, and extracts a completely specified
//! realization.
//!
//! Run with: `cargo run --example quickstart`

use bddcf::bdd::Var;
use bddcf::core::{Cf, CfLayout, IsfBdds};
use bddcf::logic::TruthTable;

fn main() {
    // The incompletely specified function of Table 1 (d = don't care).
    let table = TruthTable::paper_table1();
    println!("Specification (Table 1):\n{table:?}");

    // Build χ(X,Y) = ∧ᵢ (ȳᵢ·f_i0 ∨ yᵢ·f_i1 ∨ f_id) with the paper's
    // variable order (x1 x2 x3 y1 x4 y2).
    let order = [Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)];
    let mut cf = Cf::build_with_order(CfLayout::new(4, 2), &order, |mgr, layout| {
        IsfBdds::from_truth_table(mgr, layout, &table)
    });
    println!(
        "BDD_for_CF: {} nodes, width profile {:?} (max {})",
        cf.node_count(),
        cf.width_profile().cuts(),
        cf.max_width()
    );

    // Algorithm 3.1 — merge compatible children (Example 3.5: width 8 -> 5).
    let mut cf31 = cf.clone();
    let stats = cf31.reduce_alg31();
    println!(
        "Algorithm 3.1: width {} -> {}, nodes {} -> {}",
        stats.max_width_before, stats.max_width_after, stats.nodes_before, stats.nodes_after
    );

    // Algorithm 3.3 — level-wise clique cover (Example 3.6: width 8 -> 4).
    let stats = cf.reduce_alg33_default();
    println!(
        "Algorithm 3.3: width {} -> {}, nodes {} -> {}",
        stats.max_width_before, stats.max_width_after, stats.nodes_before, stats.nodes_after
    );

    // Extract a completely specified realization and check it against the
    // original specification.
    let outputs = cf.complete();
    assert!(cf.realizes_original(&outputs));
    println!("\nCompleted function (don't cares resolved):");
    println!("x1x2x3x4 | f1 f2");
    for r in 0..16usize {
        let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
        let word = cf.eval_completed(&input);
        println!(
            "  {}{}{}{}   |  {}  {}",
            r & 1,
            r >> 1 & 1,
            r >> 2 & 1,
            r >> 3 & 1,
            word & 1,
            word >> 1 & 1
        );
    }
    println!("\nRealization verified against every specified entry of Table 1.");
}
