//! Domain example: functional decomposition with don't cares.
//!
//! Reproduces §3.1's chart story (Tables 2–3: merging compatible columns
//! halves the column multiplicity) and then performs the same kind of
//! decomposition directly on a BDD_for_CF, checking Theorem 3.1's rail
//! count.
//!
//! Run with: `cargo run --example decomposition`

use bddcf::bdd::Var;
use bddcf::core::cover::CoverHeuristic;
use bddcf::core::{Cf, CfLayout, IsfBdds};
use bddcf::decomp::bdd_decomp::{decompose_at, rails_for};
use bddcf::decomp::DecompositionChart;
use bddcf::logic::TruthTable;

fn main() {
    // --- Chart view (Tables 2 and 3) ---------------------------------
    let chart = DecompositionChart::paper_table2();
    println!(
        "Decomposition chart (Table 2): µ = {}",
        chart.multiplicity()
    );
    for c in 0..chart.num_columns() {
        let pattern: String = chart.column(c).iter().map(|v| v.to_string()).collect();
        println!("  Φ{} = {}", c + 1, pattern);
    }
    let (merged, codes) = chart.merge_compatible(CoverHeuristic::MinDegreeFirst);
    println!(
        "After merging compatible columns (Table 3): µ = {}, codes {:?}",
        merged.multiplicity(),
        codes
    );
    println!(
        "h-block outputs: {} -> {} (⌈log₂ µ⌉)",
        chart.rails(),
        merged.rails()
    );

    // --- BDD view (Theorem 3.1) ---------------------------------------
    let table = TruthTable::paper_table1();
    let order = [Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)];
    let mut cf = Cf::build_with_order(CfLayout::new(4, 2), &order, |mgr, layout| {
        IsfBdds::from_truth_table(mgr, layout, &table)
    });
    println!(
        "\nBDD_for_CF of Table 1: width profile {:?}",
        cf.width_profile().cuts()
    );
    for k in [1usize, 2, 3] {
        let d = decompose_at(&cf, k);
        println!(
            "cut below {} input level(s): {} columns -> {} rails (Theorem 3.1: ⌈log₂ {}⌉ = {})",
            k,
            d.columns.len(),
            d.rails,
            d.columns.len(),
            rails_for(d.columns.len())
        );
    }

    // Width reduction narrows the cut, hence the wires between the blocks.
    cf.reduce_alg33_default();
    let d = decompose_at(&cf, 3);
    println!(
        "after Algorithm 3.3: cut below 3 levels has {} columns -> {} rails",
        d.columns.len(),
        d.rails
    );

    // The decomposed network still realizes the specification.
    for r in 0..16usize {
        let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
        let word = d.eval(&cf, &input);
        assert!(
            (0..2).all(|j| table.get(r, j).admits(word >> j & 1 == 1)),
            "row {r}"
        );
    }
    println!("Decomposed network g(h(X1), X2) verified on all 16 inputs.");
}
