//! Domain example: synthesize an LUT cascade for a ternary→binary radix
//! converter (the paper's §4.1 benchmark family) and simulate it.
//!
//! The 6-digit ternary converter maps a binary-coded-ternary number
//! (12 input bits, 3^6 = 729 care points) to its 10-bit binary value; the
//! unused digit code `11` makes ~82% of the input space don't care, which
//! the width reductions turn into a smaller cascade.
//!
//! Run with: `cargo run --release --example radix_converter`

use bddcf::bdd::ReorderCost;
use bddcf::cascade::{synthesize, CascadeOptions};
use bddcf::core::partition::bipartition;
use bddcf::funcs::{build_isf_pieces, value_to_word, Benchmark, RadixConverter};

fn main() {
    let conv = RadixConverter::new(3, 6);
    println!(
        "{}: {} inputs, {} outputs, DC ratio {:.1}%",
        conv.name(),
        conv.digits().total_bits(),
        {
            use bddcf::logic::MultiOracle;
            conv.num_outputs()
        },
        conv.dc_ratio() * 100.0
    );

    // Build the ISF symbolically and split the outputs in two (§5.1).
    let (mgr, layout, isf) = build_isf_pieces(&conv);
    let halves = bipartition(&mgr, &layout, &isf);

    let cells = CascadeOptions {
        max_cell_inputs: 8,
        max_cell_outputs: 6,
        ..CascadeOptions::default()
    };
    let mut cascades = Vec::new();
    for (k, mut cf) in halves.into_iter().enumerate() {
        cf.optimize_order(ReorderCost::SumOfWidths, 2);
        let before = cf.max_width();
        cf.reduce_alg33_default();
        println!(
            "half F{}: width {} -> {} after sifting + Algorithm 3.3",
            k + 1,
            before,
            cf.max_width()
        );
        let cascade = synthesize(&mut cf, &cells).expect("fits 8-input cells");
        println!(
            "  cascade: {} cells, {} LUT outputs, {} memory bits",
            cascade.num_cells(),
            cascade.lut_outputs(),
            cascade.memory_bits()
        );
        cascades.push(cascade);
    }

    // Drive the synthesized hardware model on a few conversions.
    println!("\nSimulating the cascade pair:");
    use bddcf::logic::MultiOracle;
    let m = conv.num_outputs();
    let half = m.div_ceil(2);
    for digits in [[0, 0, 0, 0, 0, 1], [2, 1, 0, 2, 1, 0], [2, 2, 2, 2, 2, 2]] {
        let digit_values: Vec<u64> = digits.iter().map(|&d| d as u64).collect();
        let word = conv.digits().encode(&digit_values);
        let input: Vec<bool> = (0..12).map(|i| word >> i & 1 == 1).collect();
        let hi = cascades[0].eval(&input);
        let lo = cascades[1].eval(&input);
        let got = hi | (lo << half);
        let expect = value_to_word(conv.value_of(&digit_values), m);
        assert_eq!(got, expect);
        println!(
            "  ternary {:?} -> {} (verified)",
            digits,
            conv.value_of(&digit_values)
        );
    }

    // Exhaustive check over every valid ternary number.
    for digit_values in conv.digits().valid_combinations() {
        let word = conv.digits().encode(&digit_values);
        let input: Vec<bool> = (0..12).map(|i| word >> i & 1 == 1).collect();
        let got = cascades[0].eval(&input) | (cascades[1].eval(&input) << half);
        assert_eq!(got, value_to_word(conv.value_of(&digit_values), m));
    }
    println!("\nAll 729 valid ternary inputs verified against CRT-free direct arithmetic.");
}
