//! Exact minimum-max-width variable ordering for small functions.
//!
//! The width of a BDD at a cut (Definition 3.5) is the number of distinct
//! non-false cofactors of the function with respect to *all* assignments of
//! the variables above the cut — it depends only on the **set** of
//! variables above, not on their order. Minimizing the maximum width over
//! orders is therefore a Friedman–Supowit-style dynamic program over
//! variable subsets: `dp[S] = min over v ∈ S of max(w(S), dp[S − v])`,
//! where `w(S)` is the cofactor count with `S` on top.
//!
//! This is exponential (`O(2ⁿ·n)` plus cofactor bookkeeping) and intended
//! as a *verifier*: it bounds what sifting can achieve on small functions
//! and certifies Theorem-3.1 wire counts. Order constraints (Definition
//! 2.4) are not modelled, so for a BDD_for_CF the result is a lower bound.

use crate::hasher::FastSet;
use crate::manager::{BddManager, NodeId, Var, FALSE};

/// Result of [`BddManager::exact_min_max_width`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactWidth {
    /// The minimum achievable maximum cut width over all variable orders.
    pub max_width: usize,
    /// An order achieving it (top to bottom, all manager variables).
    pub order: Vec<Var>,
}

impl BddManager {
    /// Computes the exact minimum of the maximum cut width of `f` over all
    /// variable orders, and one optimal order.
    ///
    /// # Panics
    ///
    /// Panics if the manager has more than 16 variables (the subset DP
    /// would not fit).
    pub fn exact_min_max_width(&mut self, f: NodeId) -> ExactWidth {
        let n = self.num_vars();
        assert!(n <= 16, "exact width search limited to 16 variables");
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

        // cofactors[s] = distinct non-false cofactors of f after assigning
        // the variables of subset s (bit i = Var(i)) in all ways.
        let mut widths = vec![0usize; 1 << n];
        let mut cofactors: Vec<Option<Vec<NodeId>>> = vec![None; 1 << n];
        cofactors[0] = Some(if f == FALSE { vec![] } else { vec![f] });
        widths[0] = 1; // the external pointer to the root
        for s in 1u32..=full {
            // Expand from s with its lowest set bit removed.
            let v = s.trailing_zeros();
            let parent = s & !(1 << v);
            let base = cofactors[parent as usize]
                .clone()
                .expect("parents precede children in numeric order");
            let mut set: FastSet<NodeId> = FastSet::default();
            for g in base {
                for value in [false, true] {
                    let c = self.restrict(g, Var(v), value);
                    if c != FALSE {
                        set.insert(c);
                    }
                }
            }
            let mut list: Vec<NodeId> = set.into_iter().collect();
            list.sort_unstable();
            widths[s as usize] = list.len().max(1);
            cofactors[s as usize] = Some(list);
        }

        // dp[s] = minimal possible maximum width over all cuts once the
        // variables of s are above the cut, given an optimal completion of
        // the prefix; choice[s] = last variable added to reach that.
        let mut dp = vec![usize::MAX; 1 << n];
        let mut choice = vec![u32::MAX; 1 << n];
        dp[0] = widths[0];
        for s in 1u32..=full {
            let mut bits = s;
            while bits != 0 {
                let v = bits.trailing_zeros();
                bits &= bits - 1;
                let prev = s & !(1 << v);
                let candidate = dp[prev as usize].max(widths[s as usize]);
                if candidate < dp[s as usize] {
                    dp[s as usize] = candidate;
                    choice[s as usize] = v;
                }
            }
        }

        // Reconstruct the order, top variable first.
        let mut order = Vec::with_capacity(n);
        let mut s = full;
        while s != 0 {
            let v = choice[s as usize];
            order.push(Var(v));
            s &= !(1 << v);
        }
        order.reverse();
        ExactWidth {
            max_width: dp[full as usize],
            order,
        }
    }

    /// Rebuilds `roots` under the exact target order (a permutation of all
    /// variables, top to bottom) by repeated adjacent swaps.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the manager's variables.
    pub fn rebuild_order(&mut self, roots: &[NodeId], order: &[Var]) -> Vec<NodeId> {
        assert_eq!(
            order.len(),
            self.num_vars(),
            "order must cover all variables"
        );
        let mut seen = vec![false; self.num_vars()];
        for &v in order {
            assert!(
                !std::mem::replace(&mut seen[v.0 as usize], true),
                "duplicate {v:?} in order"
            );
        }
        let mut roots = roots.to_vec();
        for (level, &var) in order.iter().enumerate() {
            roots = self.move_var_to_level(var, level as u32, &roots);
        }
        self.gc(&roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TRUE;
    use crate::reorder::{ReorderCost, SiftConstraints};

    fn interleaved(mgr: &mut BddManager) -> NodeId {
        // v0·v2 ∨ v1·v3: optimal orders pair the factors.
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let c = mgr.var(Var(2));
        let d = mgr.var(Var(3));
        let ac = mgr.and(a, c);
        let bd = mgr.and(b, d);
        mgr.or(ac, bd)
    }

    #[test]
    fn exact_finds_the_known_optimum() {
        let mut mgr = BddManager::new(4);
        let f = interleaved(&mut mgr);
        let exact = mgr.exact_min_max_width(f);
        // With (v0 v2 v1 v3) the widths are 1,2,2,2,1: max 2.
        assert_eq!(exact.max_width, 2);
        let roots = mgr.rebuild_order(&[f], &exact.order);
        assert_eq!(mgr.width_profile(&[roots[0]]).max(), exact.max_width);
    }

    #[test]
    fn exact_is_a_lower_bound_for_sifting() {
        let mut mgr = BddManager::new(5);
        // A lopsided function: (v0 XOR v3) AND (v1 OR v4) AND v2.
        let x03 = {
            let a = mgr.var(Var(0));
            let d = mgr.var(Var(3));
            mgr.xor(a, d)
        };
        let o14 = {
            let b = mgr.var(Var(1));
            let e = mgr.var(Var(4));
            mgr.or(b, e)
        };
        let c = mgr.var(Var(2));
        let t = mgr.and(x03, o14);
        let f = mgr.and(t, c);
        let exact = mgr.exact_min_max_width(f);
        let sifted = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::SumOfWidths, 3);
        let sift_width = mgr.width_profile(&[sifted[0]]).max();
        assert!(
            exact.max_width <= sift_width,
            "exact {} must lower-bound sifting {}",
            exact.max_width,
            sift_width
        );
    }

    #[test]
    fn exact_on_constants_and_literals() {
        let mut mgr = BddManager::new(3);
        assert_eq!(mgr.exact_min_max_width(TRUE).max_width, 1);
        assert_eq!(mgr.exact_min_max_width(FALSE).max_width, 1);
        let a = mgr.var(Var(1));
        assert_eq!(mgr.exact_min_max_width(a).max_width, 1);
    }

    #[test]
    fn exact_width_of_parity_is_two() {
        // Parity is width-2 in every order: the DP must report exactly 2.
        let mut mgr = BddManager::new(4);
        let mut f = FALSE;
        for i in 0..4 {
            let v = mgr.var(Var(i));
            f = mgr.xor(f, v);
        }
        let exact = mgr.exact_min_max_width(f);
        assert_eq!(exact.max_width, 2);
    }

    #[test]
    fn rebuild_order_preserves_semantics() {
        let mut mgr = BddManager::new(4);
        let f = interleaved(&mut mgr);
        let truth: Vec<bool> = (0..16u32)
            .map(|bits| {
                let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect();
        let roots = mgr.rebuild_order(&[f], &[Var(3), Var(1), Var(2), Var(0)]);
        assert_eq!(mgr.order(), &[Var(3), Var(1), Var(2), Var(0)]);
        for (bits, expect) in (0..16u32).zip(truth) {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(roots[0], &a), expect);
        }
    }
}
