//! The virtual filesystem behind every durable path in the workspace.
//!
//! Checkpoints, snapshots, and the serve spool all promise crash safety,
//! but those promises are only as good as the filesystem calls beneath
//! them — and `std::fs` cannot be made hostile on demand. This module
//! narrows all durable I/O to one [`Vfs`] trait with two implementations:
//!
//! * [`StdVfs`] — the real filesystem, including the directory fsync that
//!   POSIX requires for a rename to survive power loss. Every public API
//!   defaults to it, so callers that never heard of the trait keep
//!   working.
//! * [`FaultVfs`] — a deterministic in-memory filesystem that injects
//!   seeded faults (ENOSPC/EIO/short writes on the Nth write, matching
//!   the `bddcf loadtest` splitmix64 seed discipline), records every
//!   mutating call in an event journal, and can replay any *crash prefix*
//!   of that journal into a new filesystem state.
//!
//! # The crash-prefix (fsync-lies) model
//!
//! [`FaultVfs::crash_state`] rematerializes the durable state an
//! adversarial disk could present after power loss at event `k`:
//!
//! * file data written but never `sync_file`d is **torn**: a seeded choice
//!   between the previous durable contents, a byte prefix of the new
//!   write, or (the kernel got lucky) the full write;
//! * a rename (or create, or remove) whose directory was never
//!   `sync_dir`d is **dropped**: the new name vanishes and any previously
//!   durable file resurfaces under its old name — the classic
//!   missing-directory-fsync failure;
//! * directories themselves are modeled as durable once created (the
//!   interesting torn states in this workspace are all file-level).
//!
//! With [`FaultPlan::ignore_sync_dir`] the replay treats `sync_dir` as a
//! lie — exactly what a caller that forgot the directory fsync would
//! experience — which is how `bddcf diskchaos` proves the fsync actually
//! matters.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::snapshot::fnv1a64;

/// The splitmix64 mixer, the workspace-wide seed discipline (shared with
/// `bddcf loadtest` and `bddcf diskchaos`).
pub fn splitmix64(x: u64) -> u64 {
    let x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Filesystem operations needed by every durable path (checkpoints,
/// snapshots, the serve spool). Implementations must be shareable across
/// threads — the serve daemon calls them from connection threads, workers,
/// and the completion hook concurrently.
pub trait Vfs: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path` and writes `bytes`. Durability is
    /// *not* implied — call [`sync_file`](Vfs::sync_file) and
    /// [`sync_dir`](Vfs::sync_dir) for that (or use [`write_atomic`]).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// fsyncs a file's contents.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// fsyncs a directory, making renames/creates/removes inside it
    /// durable. Without this, a rename can silently vanish at power loss.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Renames a file (same filesystem; used for tmp → final and
    /// quarantine renames).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and all missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Lists the entries of a directory (full paths, sorted).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Does `path` exist (file or directory)?
    fn exists(&self, path: &Path) -> bool;
    /// Is `path` an existing directory?
    fn is_dir(&self, path: &Path) -> bool;
}

/// Atomically publishes `dir/name`: tmp file → write → fsync → rename →
/// **parent-directory fsync**. The final step is what makes the rename
/// itself durable; without it a power loss can roll the directory entry
/// back even though the data blocks were synced.
pub fn write_atomic(vfs: &dyn Vfs, dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    vfs.create_dir_all(dir)?;
    let tmp = dir.join(format!(".tmp-{name}"));
    vfs.write(&tmp, bytes)?;
    vfs.sync_file(&tmp)?;
    vfs.rename(&tmp, &dir.join(name))?;
    vfs.sync_dir(dir)
}

// ---------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------

/// The real filesystem. The default implementation everywhere a `Vfs` is
/// accepted.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX way
        // to make its entries durable. Platforms that refuse to open
        // directories (e.g. Windows) get best-effort semantics: the open
        // error is swallowed because there is nothing better to do there,
        // and the workspace's durability tests all run on the in-memory
        // FaultVfs anyway.
        match fs::File::open(dir) {
            Ok(handle) => handle.sync_all(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(e),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(dir)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
}

// ---------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------

/// What a seeded write fault does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// `write` fails before any byte lands (out of space).
    Enospc,
    /// `write` fails after a seeded prefix of the buffer lands (media
    /// error mid-write).
    Eio,
    /// `write` lands a seeded strict prefix and reports failure — the
    /// short-write case a `write_all` loop surfaces as an error.
    ShortWrite,
}

/// Deterministic fault configuration for a [`FaultVfs`].
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for partial-write lengths and crash-torn choices.
    pub seed: u64,
    /// Inject [`fault`](FaultPlan::fault) on the Nth `write` call
    /// (0-based), once.
    pub fail_write: Option<u64>,
    /// The fault injected at [`fail_write`](FaultPlan::fail_write).
    pub fault: WriteFault,
    /// Every `write` fails with ENOSPC (a full disk; used to drive the
    /// serve daemon into storage-degraded mode deterministically).
    pub fail_all_writes: bool,
    /// `sync_dir` succeeds but confers no durability in
    /// [`crash_state`](FaultVfs::crash_state) — the fsync-lies adversary,
    /// equivalent to a caller that forgot the directory fsync.
    pub ignore_sync_dir: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            fail_write: None,
            fault: WriteFault::Enospc,
            fail_all_writes: false,
            ignore_sync_dir: false,
        }
    }
}

/// One recorded storage event. The journal index of an event is its
/// *crash point*: [`FaultVfs::crash_state`]`(k, …)` replays events
/// `0..k`.
#[derive(Clone, Debug)]
pub enum VfsEvent {
    /// Bytes that reached the page cache for `path` (a faulted write
    /// records only the prefix that landed).
    Write {
        /// Target file.
        path: PathBuf,
        /// The landed bytes.
        bytes: Vec<u8>,
    },
    /// `path`'s contents were fsynced.
    SyncFile {
        /// The synced file.
        path: PathBuf,
    },
    /// `dir`'s entries were fsynced.
    SyncDir {
        /// The synced directory.
        dir: PathBuf,
    },
    /// `from` was renamed to `to`.
    Rename {
        /// Old name.
        from: PathBuf,
        /// New name.
        to: PathBuf,
    },
    /// `path` was unlinked.
    RemoveFile {
        /// The removed file.
        path: PathBuf,
    },
    /// `dir` was created.
    CreateDir {
        /// The new directory.
        dir: PathBuf,
    },
}

impl VfsEvent {
    /// Short tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            VfsEvent::Write { .. } => "write",
            VfsEvent::SyncFile { .. } => "sync_file",
            VfsEvent::SyncDir { .. } => "sync_dir",
            VfsEvent::Rename { .. } => "rename",
            VfsEvent::RemoveFile { .. } => "remove",
            VfsEvent::CreateDir { .. } => "mkdir",
        }
    }

    /// Is this a `sync_dir` of `dir`? (How harnesses locate the return
    /// points of atomic publishes.)
    pub fn is_sync_dir_of(&self, dir: &Path) -> bool {
        matches!(self, VfsEvent::SyncDir { dir: d } if d == dir)
    }
}

struct FaultState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
    journal: Vec<VfsEvent>,
    plan: FaultPlan,
    writes: u64,
    faults_injected: u64,
}

/// The deterministic in-memory fault-injection filesystem. Cloning shares
/// the underlying state (clones are views of the same disk).
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.lock();
        f.debug_struct("FaultVfs")
            .field("files", &state.files.len())
            .field("events", &state.journal.len())
            .field("faults_injected", &state.faults_injected)
            .finish()
    }
}

impl Default for FaultVfs {
    fn default() -> Self {
        FaultVfs::new()
    }
}

impl FaultVfs {
    /// An empty filesystem with no faults planned.
    pub fn new() -> Self {
        FaultVfs::with_plan(FaultPlan::default())
    }

    /// An empty filesystem with the given fault plan.
    pub fn with_plan(plan: FaultPlan) -> Self {
        let mut dirs = BTreeSet::new();
        dirs.insert(PathBuf::from("/"));
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                files: BTreeMap::new(),
                dirs,
                journal: Vec::new(),
                plan,
                writes: 0,
                faults_injected: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of journaled storage events so far (the crash-point space).
    pub fn events_len(&self) -> usize {
        self.lock().journal.len()
    }

    /// A copy of the event journal.
    pub fn journal(&self) -> Vec<VfsEvent> {
        self.lock().journal.clone()
    }

    /// How many faults the plan has injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.lock().faults_injected
    }

    /// `write` calls observed (the fault plan's op counter).
    pub fn writes_observed(&self) -> u64 {
        self.lock().writes
    }

    /// The durable filesystem an adversarial disk could present after
    /// power loss at event `prefix` (replaying journal events `0..prefix`
    /// under the fsync-lies model; see the module docs). `crash_seed`
    /// picks among the legal torn states per file. The returned
    /// filesystem starts with a fresh journal and no write faults, but
    /// keeps [`FaultPlan::ignore_sync_dir`] so a lying stack stays lying
    /// across restarts.
    pub fn crash_state(&self, prefix: usize, crash_seed: u64) -> FaultVfs {
        struct Replay {
            data: Vec<u8>,
            last_durable: Option<Vec<u8>>,
            name_synced: bool,
        }
        let state = self.lock();
        let mut files: BTreeMap<PathBuf, Replay> = BTreeMap::new();
        // Durable contents whose unlink/rename-away was never dir-synced:
        // the adversary resurrects them under the old name.
        let mut ghosts: BTreeMap<PathBuf, Vec<u8>> = BTreeMap::new();
        let mut dirs = BTreeSet::new();
        dirs.insert(PathBuf::from("/"));
        for event in state.journal.iter().take(prefix) {
            match event {
                VfsEvent::Write { path, bytes } => {
                    if let Some(entry) = files.get_mut(path) {
                        entry.data = bytes.clone();
                    } else {
                        files.insert(
                            path.clone(),
                            Replay {
                                data: bytes.clone(),
                                last_durable: None,
                                name_synced: false,
                            },
                        );
                    }
                }
                VfsEvent::SyncFile { path } => {
                    if let Some(entry) = files.get_mut(path) {
                        entry.last_durable = Some(entry.data.clone());
                    }
                }
                VfsEvent::SyncDir { dir } => {
                    if state.plan.ignore_sync_dir {
                        continue; // the lie: the event happened, durability didn't
                    }
                    for (path, entry) in files.iter_mut() {
                        if path.parent() == Some(dir.as_path()) {
                            entry.name_synced = true;
                        }
                    }
                    ghosts.retain(|path, _| path.parent() != Some(dir.as_path()));
                }
                VfsEvent::Rename { from, to } => {
                    if let Some(mut entry) = files.remove(from) {
                        if entry.name_synced {
                            if let Some(durable) = &entry.last_durable {
                                ghosts.insert(from.clone(), durable.clone());
                            }
                        }
                        if let Some(old) = files.get(to) {
                            if old.name_synced {
                                if let Some(durable) = &old.last_durable {
                                    ghosts.insert(to.clone(), durable.clone());
                                }
                            }
                        }
                        entry.name_synced = false;
                        files.insert(to.clone(), entry);
                    }
                }
                VfsEvent::RemoveFile { path } => {
                    if let Some(entry) = files.remove(path) {
                        if entry.name_synced {
                            if let Some(durable) = &entry.last_durable {
                                ghosts.insert(path.clone(), durable.clone());
                            }
                        }
                    }
                }
                VfsEvent::CreateDir { dir } => {
                    let mut ancestors: Vec<PathBuf> =
                        dir.ancestors().map(Path::to_path_buf).collect();
                    ancestors.reverse();
                    dirs.extend(ancestors);
                }
            }
        }
        drop(state);

        let mut durable: BTreeMap<PathBuf, Vec<u8>> = BTreeMap::new();
        for (path, entry) in files {
            if !entry.name_synced {
                continue; // the name itself never became durable
            }
            let fully_synced = entry.last_durable.as_deref() == Some(entry.data.as_slice());
            let data = if fully_synced {
                entry.data
            } else {
                let r = splitmix64(crash_seed ^ fnv1a64(path.to_string_lossy().as_bytes()));
                match r % 3 {
                    0 => match entry.last_durable {
                        Some(durable_bytes) => durable_bytes, // un-synced write lost
                        None => continue,                     // never synced at all: gone
                    },
                    1 => {
                        // Torn: a seeded strict prefix of the new write.
                        let keep = (splitmix64(r) as usize) % (entry.data.len() + 1);
                        let mut torn = entry.data;
                        torn.truncate(keep);
                        torn
                    }
                    _ => entry.data, // the page cache made it out anyway
                }
            };
            durable.insert(path, data);
        }
        for (path, data) in ghosts {
            durable.entry(path).or_insert(data);
        }

        let plan = FaultPlan {
            seed: splitmix64(crash_seed),
            ignore_sync_dir: self.lock().plan.ignore_sync_dir,
            ..FaultPlan::default()
        };
        let crashed = FaultVfs::with_plan(plan);
        {
            let mut state = crashed.lock();
            state.dirs = dirs;
            state.files = durable;
        }
        crashed
    }

    /// Fault decision for the current `write`, advancing the op counter.
    fn write_fault(state: &mut FaultState) -> Option<WriteFault> {
        let op = state.writes;
        state.writes += 1;
        if state.plan.fail_all_writes {
            state.faults_injected += 1;
            return Some(WriteFault::Enospc);
        }
        if state.plan.fail_write == Some(op) {
            state.faults_injected += 1;
            return Some(state.plan.fault);
        }
        None
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file or directory", path.display()),
    )
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock();
        state
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        let parent_missing = path
            .parent()
            .is_some_and(|parent| !state.dirs.contains(parent));
        if parent_missing {
            return Err(not_found(path));
        }
        match FaultVfs::write_fault(&mut state) {
            None => {
                state.files.insert(path.to_path_buf(), bytes.to_vec());
                state.journal.push(VfsEvent::Write {
                    path: path.to_path_buf(),
                    bytes: bytes.to_vec(),
                });
                Ok(())
            }
            Some(WriteFault::Enospc) => Err(io::Error::other(format!(
                "{}: simulated ENOSPC (no space left on device)",
                path.display()
            ))),
            Some(fault) => {
                // A seeded prefix lands before the error surfaces.
                let seed = state.plan.seed;
                let op = state.writes;
                let keep = (splitmix64(seed ^ op) as usize) % (bytes.len() + 1);
                let landed = bytes.get(..keep).unwrap_or_default().to_vec();
                state.files.insert(path.to_path_buf(), landed.clone());
                state.journal.push(VfsEvent::Write {
                    path: path.to_path_buf(),
                    bytes: landed,
                });
                let what = match fault {
                    WriteFault::Eio => "EIO (I/O error)",
                    _ => "short write",
                };
                Err(io::Error::other(format!(
                    "{}: simulated {what} after {keep} of {} byte(s)",
                    path.display(),
                    bytes.len()
                )))
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if !state.files.contains_key(path) {
            return Err(not_found(path));
        }
        state.journal.push(VfsEvent::SyncFile {
            path: path.to_path_buf(),
        });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if !state.dirs.contains(dir) {
            return Err(not_found(dir));
        }
        state.journal.push(VfsEvent::SyncDir {
            dir: dir.to_path_buf(),
        });
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let Some(bytes) = state.files.remove(from) else {
            return Err(not_found(from));
        };
        state.files.insert(to.to_path_buf(), bytes);
        state.journal.push(VfsEvent::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if state.files.remove(path).is_none() {
            return Err(not_found(path));
        }
        state.journal.push(VfsEvent::RemoveFile {
            path: path.to_path_buf(),
        });
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let mut ancestors: Vec<PathBuf> = dir.ancestors().map(Path::to_path_buf).collect();
        ancestors.reverse();
        for ancestor in ancestors {
            if state.dirs.insert(ancestor.clone()) {
                state.journal.push(VfsEvent::CreateDir { dir: ancestor });
            }
        }
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let state = self.lock();
        if !state.dirs.contains(dir) {
            return Err(not_found(dir));
        }
        let mut entries: Vec<PathBuf> = state
            .files
            .keys()
            .chain(state.dirs.iter())
            .filter(|path| path.parent() == Some(dir))
            .cloned()
            .collect();
        entries.sort();
        entries.dedup();
        Ok(entries)
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.lock();
        state.files.contains_key(path) || state.dirs.contains(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.lock().dirs.contains(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn std_vfs_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("bddcf-vfs-std-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let vfs = StdVfs;
        write_atomic(&vfs, &dir, "a.bin", b"hello").expect("atomic write");
        assert_eq!(vfs.read(&dir.join("a.bin")).expect("read"), b"hello");
        assert!(vfs.exists(&dir.join("a.bin")));
        assert!(vfs.is_dir(&dir));
        let listed = vfs.list(&dir).expect("list");
        assert_eq!(listed, vec![dir.join("a.bin")], "no tmp file survives");
        vfs.remove_file(&dir.join("a.bin")).expect("remove");
        assert!(!vfs.exists(&dir.join("a.bin")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_vfs_behaves_like_a_filesystem() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(&p("/a/b")).expect("mkdir");
        vfs.write(&p("/a/b/x"), b"one").expect("write");
        assert_eq!(vfs.read(&p("/a/b/x")).expect("read"), b"one");
        vfs.rename(&p("/a/b/x"), &p("/a/b/y")).expect("rename");
        assert!(!vfs.exists(&p("/a/b/x")));
        assert_eq!(vfs.read(&p("/a/b/y")).expect("read"), b"one");
        assert_eq!(vfs.list(&p("/a/b")).expect("list"), vec![p("/a/b/y")]);
        assert!(matches!(
            vfs.write(&p("/nope/x"), b""),
            Err(e) if e.kind() == io::ErrorKind::NotFound
        ));
        assert!(vfs.read(&p("/a/b/zzz")).is_err());
    }

    #[test]
    fn nth_write_faults_are_seeded_and_typed() {
        for fault in [WriteFault::Enospc, WriteFault::Eio, WriteFault::ShortWrite] {
            let vfs = FaultVfs::with_plan(FaultPlan {
                seed: 9,
                fail_write: Some(1),
                fault,
                ..FaultPlan::default()
            });
            vfs.create_dir_all(&p("/d")).expect("mkdir");
            vfs.write(&p("/d/first"), b"ok").expect("write 0 clean");
            let err = vfs
                .write(&p("/d/second"), b"payload")
                .expect_err("write 1 faults");
            assert_eq!(err.kind(), io::ErrorKind::Other);
            vfs.write(&p("/d/third"), b"ok")
                .expect("write 2 clean again");
            assert_eq!(vfs.faults_injected(), 1);
            match fault {
                WriteFault::Enospc => assert!(!vfs.exists(&p("/d/second"))),
                // EIO / short write: a (possibly empty) prefix landed.
                _ => {
                    let landed = vfs.read(&p("/d/second")).expect("prefix landed");
                    assert!(landed.len() <= b"payload".len());
                    assert_eq!(b"payload".get(..landed.len()), Some(landed.as_slice()));
                }
            }
        }
    }

    #[test]
    fn unsynced_rename_is_lost_at_crash_and_synced_rename_survives() {
        // Without the directory fsync: the rename vanishes, the file is gone.
        let vfs = FaultVfs::new();
        vfs.create_dir_all(&p("/d")).expect("mkdir");
        vfs.write(&p("/d/.tmp-f"), b"data").expect("write");
        vfs.sync_file(&p("/d/.tmp-f")).expect("sync");
        vfs.rename(&p("/d/.tmp-f"), &p("/d/f")).expect("rename");
        let crashed = vfs.crash_state(vfs.events_len(), 1);
        assert!(
            !crashed.exists(&p("/d/f")),
            "un-dir-synced rename must be dropped by the adversary"
        );

        // With it: the file is durable with exactly its synced contents.
        vfs.sync_dir(&p("/d")).expect("sync dir");
        let crashed = vfs.crash_state(vfs.events_len(), 1);
        assert_eq!(crashed.read(&p("/d/f")).expect("durable"), b"data");
    }

    #[test]
    fn write_atomic_over_fault_vfs_is_crash_durable_at_every_prefix() {
        let vfs = FaultVfs::new();
        write_atomic(&vfs, &p("/d"), "f", b"v1").expect("publish v1");
        let publish_done = vfs.events_len();
        write_atomic(&vfs, &p("/d"), "f", b"v2").expect("publish v2");
        let total = vfs.events_len();
        // At every crash point the file is absent (before the first
        // publish completed) or holds exactly v1 or v2 — never a torn mix.
        for k in 0..=total {
            for seed in 0..4u64 {
                let crashed = vfs.crash_state(k, seed);
                match crashed.read(&p("/d/f")) {
                    Ok(bytes) => assert!(
                        bytes == b"v1" || bytes == b"v2",
                        "torn publish at crash point {k}: {bytes:?}"
                    ),
                    Err(_) => assert!(
                        k < publish_done,
                        "file vanished after its publish returned (crash point {k})"
                    ),
                }
            }
        }
        // After the second publish returned, v2 must be what survives.
        let crashed = vfs.crash_state(total, 3);
        assert_eq!(crashed.read(&p("/d/f")).expect("durable"), b"v2");
    }

    #[test]
    fn ignore_sync_dir_drops_completed_publishes() {
        let vfs = FaultVfs::with_plan(FaultPlan {
            ignore_sync_dir: true,
            ..FaultPlan::default()
        });
        write_atomic(&vfs, &p("/d"), "f", b"data").expect("publish");
        let crashed = vfs.crash_state(vfs.events_len(), 7);
        assert!(
            !crashed.exists(&p("/d/f")),
            "a lying sync_dir must not confer durability"
        );
    }

    #[test]
    fn unsynced_overwrite_tears_but_never_invents_bytes() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(&p("/d")).expect("mkdir");
        vfs.write(&p("/d/f"), b"old!").expect("write old");
        vfs.sync_file(&p("/d/f")).expect("sync");
        vfs.sync_dir(&p("/d")).expect("sync dir");
        vfs.write(&p("/d/f"), b"newer-bytes").expect("overwrite");
        // No sync after the overwrite: every legal outcome is old, a
        // prefix of new, or full new.
        let mut saw_old = false;
        let mut saw_partial = false;
        for seed in 0..64u64 {
            let crashed = vfs.crash_state(vfs.events_len(), seed);
            let bytes = crashed.read(&p("/d/f")).expect("name is durable");
            let is_old = bytes == b"old!";
            let is_prefix = b"newer-bytes".get(..bytes.len()) == Some(bytes.as_slice());
            assert!(is_old || is_prefix, "invented bytes: {bytes:?}");
            saw_old |= is_old;
            saw_partial |= is_prefix && bytes.len() < b"newer-bytes".len();
        }
        assert!(saw_old, "the seed sweep must exercise the lost-write case");
        assert!(saw_partial, "the seed sweep must exercise the torn case");
    }

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference values from the published splitmix64 (seed 0 stream).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
