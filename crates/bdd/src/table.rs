//! Cache-conscious node storage: the intrusive-chain unique table and the
//! direct-mapped operation caches.
//!
//! The engine core stores interior nodes in a flat arena of packed
//! [`Node`]s. Each node carries, besides its `(var, lo, hi)` triple, the
//! arena index of the *next* node in its unique-table hash bucket — the
//! collision chains thread through the arena itself, so a unique-table
//! probe touches exactly the memory the subsequent `mk` would touch
//! anyway, and the table proper is just one bucket-head array of `u32`s
//! ([`UniqueTable`]).
//!
//! Operation results are memoized in fixed-geometry direct-mapped tables
//! ([`ComputedTable`]): one slot per hash index, no chains, stale entries
//! simply overwritten. Each slot carries a *generation tag*; bumping the
//! table's generation invalidates every entry in O(1), which is what makes
//! per-swap cache invalidation during sifting affordable (the previous
//! design dropped and reallocated four `HashMap`s per adjacent-level
//! swap). All tables expose monotone counters so `bddcf bench`/`stats`
//! can report probe lengths and hit rates ([`CacheStats`],
//! [`EngineStats`]).

use crate::manager::NodeId;

/// Sentinel arena index meaning "no node" (end of a bucket chain, or an
/// absent key word in a two-word cache key). The arena overflow guard in
/// `try_mk` keeps real indices strictly below this value.
pub(crate) const NIL: u32 = u32::MAX;

/// One interior (or terminal) node in the arena: decision variable,
/// cofactor edges, and the intrusive unique-table chain link.
///
/// Without the `check` feature this is 16 bytes; the branded `NodeId` of
/// checked builds widens it to 24.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    /// Decision variable index (`TERMINAL_VAR` for the two terminals).
    pub(crate) var: u32,
    /// Else-edge (`var = 0` cofactor).
    pub(crate) lo: NodeId,
    /// Then-edge (`var = 1` cofactor).
    pub(crate) hi: NodeId,
    /// Arena index of the next node in the same unique-table bucket
    /// ([`NIL`] terminates the chain).
    pub(crate) next: u32,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Mixes three key words into a hash, in the spirit of the workspace's
/// [`FxLikeHasher`](crate::hasher::FxLikeHasher): rotate-xor-multiply per
/// word, then one finalizing xor-shift so that low bits (which index the
/// tables) depend on every input word.
#[inline]
fn mix3(a: u32, b: u32, c: u32) -> u64 {
    let mut h = 0u64;
    for word in [a, b, c] {
        h = (h.rotate_left(5) ^ u64::from(word)).wrapping_mul(SEED);
    }
    h ^ (h >> 33)
}

/// Unique table mapping `(var, lo, hi)` triples to arena indices via
/// intrusive bucket chains threaded through [`Node::next`].
///
/// Capacity is always a power of two; the table grows (doubling) when the
/// measured load factor passes 3/4, and is rebuilt to the deterministic
/// [`UniqueTable::capacity_log2_for`] geometry on GC compaction so that a
/// snapshot-restored manager and an uninterrupted one agree byte for
/// byte.
#[derive(Clone, Debug)]
pub(crate) struct UniqueTable {
    /// Bucket heads: arena index of the first chain node, or [`NIL`].
    buckets: Vec<u32>,
    /// `buckets.len() - 1` (power-of-two capacity).
    mask: u64,
    /// Number of nodes currently linked into buckets.
    len: usize,
    /// Total `find` calls (monotone).
    lookups: u64,
    /// Total chain nodes inspected across all `find` calls (monotone);
    /// `probes / lookups` is the mean probe length.
    probes: u64,
}

impl UniqueTable {
    /// Creates an empty table with `1 << capacity_log2` buckets.
    pub(crate) fn with_capacity_log2(capacity_log2: u32) -> Self {
        let cap = 1usize << capacity_log2;
        UniqueTable {
            buckets: vec![NIL; cap],
            mask: (cap - 1) as u64,
            len: 0,
            lookups: 0,
            probes: 0,
        }
    }

    /// The deterministic rebuild geometry for `n` linked nodes: the
    /// smallest power of two holding them at load factor ≤ 1/2, floored
    /// at 64 buckets. Used after GC compaction and on snapshot restore,
    /// so table shape is a pure function of live-node count.
    pub(crate) fn capacity_log2_for(n: usize) -> u32 {
        let target = (n.max(1) * 2).max(64);
        usize::BITS - (target - 1).leading_zeros()
    }

    /// Current bucket count (always a power of two).
    pub(crate) fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// log2 of the bucket count.
    pub(crate) fn capacity_log2(&self) -> u32 {
        self.buckets.len().trailing_zeros()
    }

    /// Number of nodes linked into the table.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Total `find` calls so far.
    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total chain nodes inspected across all `find` calls so far.
    pub(crate) fn probes(&self) -> u64 {
        self.probes
    }

    #[inline]
    fn bucket_of(&self, var: u32, lo: u32, hi: u32) -> usize {
        (mix3(var, lo, hi) & self.mask) as usize
    }

    /// Looks up `(var, lo, hi)`, recording lookup/probe counters.
    #[inline]
    pub(crate) fn find(&mut self, nodes: &[Node], var: u32, lo: u32, hi: u32) -> Option<u32> {
        self.lookups += 1;
        let mut cur = self.buckets[self.bucket_of(var, lo, hi)];
        while cur != NIL {
            self.probes += 1;
            let n = &nodes[cur as usize];
            if n.var == var && n.lo.0 == lo && n.hi.0 == hi {
                return Some(cur);
            }
            cur = n.next;
        }
        None
    }

    /// Counter-free lookup that tolerates corrupted chains (out-of-range
    /// indices, cycles): used by the integrity walk, which must not trust
    /// the structure it is checking. A chain defect reads as "not found".
    pub(crate) fn find_quiet(&self, nodes: &[Node], var: u32, lo: u32, hi: u32) -> Option<u32> {
        let mut cur = self.buckets[self.bucket_of(var, lo, hi)];
        let mut steps = 0usize;
        while cur != NIL && (cur as usize) < nodes.len() && steps <= nodes.len() {
            let n = &nodes[cur as usize];
            if n.var == var && n.lo.0 == lo && n.hi.0 == hi {
                return Some(cur);
            }
            cur = n.next;
            steps += 1;
        }
        None
    }

    /// Links the node at arena index `id` into its bucket (at the head).
    /// The caller guarantees the key is not already present.
    #[inline]
    pub(crate) fn insert(&mut self, nodes: &mut [Node], id: u32) {
        let n = nodes[id as usize];
        let b = self.bucket_of(n.var, n.lo.0, n.hi.0);
        nodes[id as usize].next = self.buckets[b];
        self.buckets[b] = id;
        self.len += 1;
    }

    /// True when the next insert should first [`grow`](Self::grow) the
    /// table (measured load factor ≥ 3/4).
    #[inline]
    pub(crate) fn should_grow(&self) -> bool {
        self.len >= self.buckets.len() / 4 * 3
    }

    /// Doubles the bucket array and relinks every tabled node. Chain
    /// order after a grow is descending arena index — deterministic.
    pub(crate) fn grow(&mut self, nodes: &mut [Node]) {
        self.rebuild(nodes, self.capacity_log2() + 1);
    }

    /// Rebuilds the table at `1 << capacity_log2` buckets, relinking the
    /// currently tabled nodes in ascending-index order. Untabled nodes
    /// stay untabled: during an in-place swap (reorder.rs) the arena holds
    /// deliberately unlinked garbage — and the node being rewritten is
    /// unlinked while its replacement children are `mk`-ed, which is
    /// exactly when a growth rebuild can fire — so relinking by arena
    /// membership instead of table membership would resurrect them.
    pub(crate) fn rebuild(&mut self, nodes: &mut [Node], capacity_log2: u32) {
        let mut tabled = vec![false; nodes.len()];
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                tabled[cur as usize] = true;
                cur = nodes[cur as usize].next;
            }
        }
        let cap = 1usize << capacity_log2;
        self.buckets.clear();
        self.buckets.resize(cap, NIL);
        self.mask = (cap - 1) as u64;
        self.len = 0;
        for id in 2..nodes.len() as u32 {
            if tabled[id as usize] {
                self.insert(nodes, id);
            }
        }
    }

    /// Splices the node at `id` out of its bucket chain (test support for
    /// the `UnregisterNode` corruption). No-op if the node is not linked.
    pub(crate) fn unlink(&mut self, nodes: &mut [Node], id: u32) {
        let _ = self.unlink_checked(nodes, id);
    }

    /// Splices the node at `id` out of its bucket chain, reporting whether
    /// it was actually linked. The in-place adjacent swap (reorder.rs) uses
    /// the `false` case as its garbage test: a node absent from the table
    /// cannot be the canonical representative of any live function.
    pub(crate) fn unlink_checked(&mut self, nodes: &mut [Node], id: u32) -> bool {
        let n = nodes[id as usize];
        let b = self.bucket_of(n.var, n.lo.0, n.hi.0);
        let mut cur = self.buckets[b];
        if cur == id {
            self.buckets[b] = n.next;
            self.len -= 1;
            return true;
        }
        while cur != NIL {
            let next = nodes[cur as usize].next;
            if next == id {
                nodes[cur as usize].next = n.next;
                self.len -= 1;
                return true;
            }
            cur = next;
        }
        false
    }

    /// Appends a dangling arena index to the end of the first non-empty
    /// bucket chain (test support for the `StaleUniqueEntry` corruption).
    /// Appending — rather than overwriting a head — keeps every real node
    /// reachable, so the seeded defect is exactly one stale entry. Falls
    /// back to corrupting an empty bucket's head if nothing is chained.
    pub(crate) fn corrupt_chain_for_testing(&mut self, nodes: &mut [Node], dangling: u32) {
        for head in self.buckets.iter_mut() {
            if *head == NIL {
                continue;
            }
            let mut cur = *head;
            loop {
                let next = nodes[cur as usize].next;
                if next == NIL {
                    nodes[cur as usize].next = dangling;
                    return;
                }
                cur = next;
            }
        }
        self.buckets[0] = dangling;
    }

    /// Iterates `(bucket_index, head)` over non-empty buckets — the
    /// integrity walk's entry points into the chains.
    pub(crate) fn bucket_heads(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &h)| h != NIL)
            .map(|(b, &h)| (b, h))
    }

    /// The bucket index a `(var, lo, hi)` key hashes to — lets the
    /// integrity walk verify each chained node is in its home bucket.
    pub(crate) fn home_bucket(&self, var: u32, lo: u32, hi: u32) -> usize {
        self.bucket_of(var, lo, hi)
    }
}

/// One direct-mapped cache slot: three key words, the result, and the
/// generation the entry was written under.
#[derive(Clone, Copy, Debug)]
struct Slot {
    a: u32,
    b: u32,
    c: u32,
    r: u32,
    generation: u32,
}

const EMPTY_SLOT: Slot = Slot {
    a: 0,
    b: 0,
    c: 0,
    r: 0,
    generation: 0,
};

/// Initial computed-table geometry (slots; power of two).
const CACHE_MIN_LOG2: u32 = 8;
/// Growth ceiling (slots; power of two).
const CACHE_MAX_LOG2: u32 = 20;

/// A fixed-geometry direct-mapped operation cache with generation-tag
/// invalidation.
///
/// `invalidate` bumps the table generation instead of touching slots, so
/// wholesale invalidation (GC, adjacent-level swaps during sifting) is
/// O(1). Entries whose tag does not match the current generation are
/// dead. The generation starts at 1 and zeroed slots are therefore never
/// live; on the (astronomically rare) tag wrap the table does one
/// physical sweep, counted in [`CacheStats::slots_swept`].
#[derive(Clone, Debug)]
pub(crate) struct ComputedTable {
    slots: Vec<Slot>,
    mask: u64,
    generation: u32,
    /// Entries written under the current generation and not yet evicted —
    /// the observable entry count.
    live: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
    slots_swept: u64,
}

impl Default for ComputedTable {
    fn default() -> Self {
        let cap = 1usize << CACHE_MIN_LOG2;
        ComputedTable {
            slots: vec![EMPTY_SLOT; cap],
            mask: (cap - 1) as u64,
            generation: 1,
            live: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            invalidations: 0,
            slots_swept: 0,
        }
    }
}

impl ComputedTable {
    /// Looks up `(a, b, c)`; use [`NIL`] for `c` on two-word keys.
    #[inline]
    pub(crate) fn get(&mut self, a: u32, b: u32, c: u32) -> Option<u32> {
        let slot = &self.slots[(mix3(a, b, c) & self.mask) as usize];
        if slot.generation == self.generation && slot.a == a && slot.b == b && slot.c == c {
            self.hits += 1;
            Some(slot.r)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Records `(a, b, c) → r`, evicting whatever lived in the slot.
    pub(crate) fn put(&mut self, a: u32, b: u32, c: u32, r: u32) {
        if self.live >= self.slots.len() / 2 && self.slots.len() < (1 << CACHE_MAX_LOG2) {
            self.grow();
        }
        let idx = (mix3(a, b, c) & self.mask) as usize;
        let slot = &mut self.slots[idx];
        if slot.generation == self.generation {
            if slot.a == a && slot.b == b && slot.c == c {
                slot.r = r;
                return;
            }
            self.evictions += 1;
        } else {
            self.live += 1;
        }
        *slot = Slot {
            a,
            b,
            c,
            r,
            generation: self.generation,
        };
        self.insertions += 1;
    }

    /// Doubles the slot array, re-homing live entries (misses cost real
    /// recursion, so growth preserves the working set).
    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; doubled]);
        self.mask = (self.slots.len() - 1) as u64;
        self.live = 0;
        for slot in old {
            if slot.generation == self.generation {
                let idx = (mix3(slot.a, slot.b, slot.c) & self.mask) as usize;
                let dst = &mut self.slots[idx];
                if dst.generation != self.generation {
                    self.live += 1;
                }
                *dst = slot;
            }
        }
    }

    /// Invalidates every entry in O(1) by bumping the generation tag.
    pub(crate) fn invalidate(&mut self) {
        self.invalidations += 1;
        self.live = 0;
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Tag wrap: old entries written under generation 0 would read
            // as live again; sweep them physically, once per 2^32 bumps.
            self.slots_swept += self.slots.len() as u64;
            for slot in &mut self.slots {
                *slot = EMPTY_SLOT;
            }
            self.generation = 1;
        }
    }

    /// Entries observable under the current generation.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Iterates the live `(a, b, c, r)` entries (integrity walk).
    pub(crate) fn live_entries(&self) -> impl Iterator<Item = (u32, u32, u32, u32)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.generation == self.generation)
            .map(|s| (s.a, s.b, s.c, s.r))
    }

    /// Snapshot of this cache's counters and geometry.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            invalidations: self.invalidations,
            slots_swept: self.slots_swept,
            live: self.live as u64,
            capacity: self.slots.len() as u64,
        }
    }
}

/// A stamped raw-id → `u32` map over arena indices, reused across calls:
/// resetting is one generation bump, so a traversal that visits `k` nodes
/// costs O(k) regardless of arena size — no per-use allocation or memset.
///
/// The backing store grows monotonically to the largest arena it has
/// served; [`begin`](Self::begin) must be called before each use.
#[derive(Clone, Debug, Default)]
pub(crate) struct ScratchMap {
    stamp: Vec<u32>,
    val: Vec<u32>,
    generation: u32,
}

impl ScratchMap {
    /// Starts a fresh use over an arena of `len` slots, forgetting all
    /// previous entries. O(1) except when the store grows or the
    /// generation wraps (once per 2^32 uses, which rewrites the stamps).
    pub(crate) fn begin(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
            self.val.resize(len, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// The value stored for `raw` in the current use, if any. Ids past
    /// the backing store (minted after [`begin`](Self::begin)) read as
    /// absent.
    pub(crate) fn get(&self, raw: u32) -> Option<u32> {
        match self.stamp.get(raw as usize) {
            Some(&stamp) if stamp == self.generation => Some(self.val[raw as usize]),
            _ => None,
        }
    }

    /// Stores `val` for `raw` in the current use, growing the store when
    /// `raw` was minted after [`begin`](Self::begin) (stamps of grown
    /// slots are dead until written, in every generation).
    pub(crate) fn set(&mut self, raw: u32, val: u32) {
        let i = raw as usize;
        if i >= self.stamp.len() {
            // A fresh stamp of 0 is never current: `begin` skips
            // generation 0 on wrap-around.
            self.stamp.resize(i + 1, 0);
            self.val.resize(i + 1, 0);
        }
        self.stamp[i] = self.generation;
        self.val[i] = val;
    }
}

/// Counters of one operation cache (see [`EngineStats`]). All counters
/// are monotone over a manager's lifetime; `live`/`capacity` are
/// point-in-time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a memoized result.
    pub hits: u64,
    /// Lookups that missed (dead slot or key mismatch).
    pub misses: u64,
    /// Entries written (including evicting writes).
    pub insertions: u64,
    /// Writes that displaced a live entry with a different key.
    pub evictions: u64,
    /// O(1) whole-table invalidations (GC, level swaps).
    pub invalidations: u64,
    /// Slots physically cleared by generation-wrap sweeps (zero in any
    /// realistic run — sifting regressions assert exactly this).
    pub slots_swept: u64,
    /// Entries currently live.
    pub live: u64,
    /// Slot count (power of two).
    pub capacity: u64,
}

impl CacheStats {
    /// Element-wise sum of the monotone counters; `live` and `capacity`
    /// also add, giving workspace totals.
    pub fn combined(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            slots_swept: self.slots_swept + other.slots_swept,
            live: self.live + other.live,
            capacity: self.capacity + other.capacity,
        }
    }
}

/// Engine-health snapshot of one [`BddManager`](crate::BddManager):
/// arena peaks, unique-table probe counters, per-operation cache
/// counters, and GC figures. Returned by
/// [`BddManager::engine_stats`](crate::BddManager::engine_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Largest arena length reached (nodes, terminals included).
    pub peak_nodes: u64,
    /// `peak_nodes` × the packed node size in bytes.
    pub peak_arena_bytes: u64,
    /// Current live interior nodes linked in the unique table.
    pub unique_len: u64,
    /// Current unique-table bucket count.
    pub unique_capacity: u64,
    /// Unique-table `find` calls.
    pub unique_lookups: u64,
    /// Chain nodes inspected across all `find` calls; divide by
    /// `unique_lookups` for the mean probe length.
    pub unique_probes: u64,
    /// The `ite` cache.
    pub ite: CacheStats,
    /// The existential-quantification cache.
    pub exists: CacheStats,
    /// The fused and-exists cache.
    pub and_exists: CacheStats,
    /// The compose/restrict cache.
    pub compose: CacheStats,
    /// Mark-and-rebuild collections completed.
    pub gc_runs: u64,
    /// Wall-clock nanoseconds spent inside those collections.
    pub gc_pause_ns: u64,
}

impl EngineStats {
    /// The four operation caches' counters combined.
    pub fn cache_total(&self) -> CacheStats {
        self.ite
            .combined(&self.exists)
            .combined(&self.and_exists)
            .combined(&self.compose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::NodeId;

    fn arena() -> Vec<Node> {
        // Two fake terminals + room for interiors.
        let t = Node {
            var: u32::MAX,
            lo: NodeId::test_raw(0),
            hi: NodeId::test_raw(0),
            next: NIL,
        };
        vec![t, t]
    }

    fn push(nodes: &mut Vec<Node>, var: u32, lo: u32, hi: u32) -> u32 {
        let id = nodes.len() as u32;
        nodes.push(Node {
            var,
            lo: NodeId::test_raw(lo),
            hi: NodeId::test_raw(hi),
            next: NIL,
        });
        id
    }

    #[test]
    fn unique_find_insert_roundtrip_and_probe_counters() {
        let mut nodes = arena();
        let mut t = UniqueTable::with_capacity_log2(6);
        assert_eq!(t.find(&nodes, 0, 0, 1), None);
        let id = push(&mut nodes, 0, 0, 1);
        t.insert(&mut nodes, id);
        assert_eq!(t.find(&nodes, 0, 0, 1), Some(id));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookups(), 2);
        assert!(t.probes() >= 1);
    }

    #[test]
    fn scratch_map_resets_by_generation_and_grows() {
        let mut s = ScratchMap::default();
        s.begin(4);
        assert_eq!(s.get(2), None);
        s.set(2, 7);
        assert_eq!(s.get(2), Some(7));
        s.begin(8); // new use over a larger arena: grown, old entries gone
        assert_eq!(s.get(2), None);
        s.set(7, 1);
        assert_eq!(s.get(7), Some(1));
        s.begin(8);
        assert_eq!(s.get(7), None, "a new use forgets the previous one");
    }

    #[test]
    fn unique_grow_preserves_membership() {
        let mut nodes = arena();
        let mut t = UniqueTable::with_capacity_log2(6);
        for v in 0..200u32 {
            let id = push(&mut nodes, v, 0, 1);
            if t.should_grow() {
                t.grow(&mut nodes);
            }
            t.insert(&mut nodes, id);
        }
        assert!(t.capacity() >= 256, "grew past the initial 64 buckets");
        for v in 0..200u32 {
            assert!(t.find(&nodes, v, 0, 1).is_some(), "var {v} lost in grow");
        }
    }

    #[test]
    fn unique_unlink_removes_only_the_target() {
        let mut nodes = arena();
        let mut t = UniqueTable::with_capacity_log2(2); // force shared buckets
        let ids: Vec<u32> = (0..8u32).map(|v| push(&mut nodes, v, 0, 1)).collect();
        for &id in &ids {
            t.insert(&mut nodes, id);
        }
        t.unlink(&mut nodes, ids[3]);
        assert_eq!(t.find(&nodes, 3, 0, 1), None);
        for v in [0u32, 1, 2, 4, 5, 6, 7] {
            assert!(t.find(&nodes, v, 0, 1).is_some(), "var {v} vanished");
        }
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn deterministic_rebuild_geometry() {
        assert_eq!(UniqueTable::capacity_log2_for(0), 6);
        assert_eq!(UniqueTable::capacity_log2_for(32), 6);
        assert_eq!(UniqueTable::capacity_log2_for(33), 7);
        assert_eq!(UniqueTable::capacity_log2_for(64), 7);
        assert_eq!(UniqueTable::capacity_log2_for(65), 8);
    }

    #[test]
    fn computed_table_hit_miss_and_generation_invalidation() {
        let mut c = ComputedTable::default();
        assert_eq!(c.get(1, 2, 3), None);
        c.put(1, 2, 3, 9);
        assert_eq!(c.get(1, 2, 3), Some(9));
        assert_eq!(c.live(), 1);
        c.invalidate();
        assert_eq!(c.get(1, 2, 3), None, "generation bump kills the entry");
        assert_eq!(c.live(), 0);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.slots_swept, 0, "no physical sweep for a single bump");
    }

    #[test]
    fn computed_table_grow_keeps_live_entries() {
        let mut c = ComputedTable::default();
        let n = (1u32 << CACHE_MIN_LOG2) + 40;
        for k in 0..n {
            c.put(k, k ^ 0x5555, k.rotate_left(7), k);
        }
        assert!(c.stats().capacity > 1 << CACHE_MIN_LOG2, "table grew");
        // Growth re-homes survivors; at least the last write must live.
        let k = n - 1;
        assert_eq!(c.get(k, k ^ 0x5555, k.rotate_left(7)), Some(k));
    }

    #[test]
    fn generation_wrap_sweeps_physically() {
        let mut c = ComputedTable::default();
        c.put(1, 2, 3, 4);
        // Drive the tag to the wrap point cheaply, then bump across it.
        c.generation = u32::MAX;
        c.invalidate();
        assert_eq!(c.generation, 1);
        assert!(c.stats().slots_swept > 0);
        assert_eq!(c.get(1, 2, 3), None, "swept entry is gone");
    }

    #[test]
    fn mix3_spreads_low_bits() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..32u32 {
            for b in 0..32u32 {
                seen.insert(mix3(a, b, NIL) & 0xFFFF);
            }
        }
        assert!(seen.len() > 900, "low 16 bits nearly collision-free");
    }
}
