//! The [`BddManager`]: node arena, unique table, Boolean operations,
//! quantification, composition, counting, and bulk constructors.
//!
//! # Design notes
//!
//! * Nodes are stored in a flat arena ([`Vec`]) and identified by [`NodeId`]
//!   (a `u32` index). The two terminals occupy the first two slots and have
//!   fixed ids [`FALSE`] and [`TRUE`].
//! * Nodes store the *variable* ([`Var`]), not the level. The manager keeps
//!   a `Var ↔ level` permutation, so dynamic reordering (see the
//!   [`reorder`](crate::reorder) module) only has to rebuild the nodes whose
//!   local shape changes.
//! * There is no reference counting. Temporary nodes accumulate in the arena
//!   and are reclaimed by an explicit mark-and-rebuild collection
//!   ([`BddManager::gc`]) which takes the set of live roots and returns their
//!   remapped ids. This is much simpler than per-node reference counts and
//!   entirely adequate for the workloads in this workspace (tens of
//!   thousands of live nodes).
//! * The unique table chains through the nodes themselves (each node
//!   carries a `next`-in-bucket arena index; see [`crate::table`]), so
//!   canonicity lookups touch the same cache lines `mk` is about to read.
//! * Operation results are cached (`ite`, quantification, composition) in
//!   direct-mapped tables with generation-tag invalidation. The caches are
//!   invalidated on garbage collection and on level swaps — after a swap a
//!   cached result may no longer be in canonical variable order — but an
//!   invalidation is a single generation bump, not a sweep.

use crate::budget::{Budget, Error};
use crate::hasher::FastMap;
use crate::table::{ComputedTable, EngineStats, Node, ScratchMap, UniqueTable, NIL};
use std::fmt;

/// A Boolean variable, identified by a stable index.
///
/// Variable ids never change; the *level* (position in the current variable
/// order) of a variable can change through reordering. Use
/// [`BddManager::level_of`] to translate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a BDD node inside a [`BddManager`].
///
/// A `NodeId` is only meaningful together with the manager that allocated
/// it. Equal ids denote identical functions (the manager maintains a strong
/// canonical form).
///
/// With the `check` feature enabled each id additionally carries a *brand*:
/// the epoch of the manager generation that minted it. Manager accessors
/// verify the brand on every dereference, so using an id against a foreign
/// manager — or after the owning manager's [`gc`](BddManager::gc)
/// invalidated it — panics immediately instead of silently denoting the
/// wrong function. The brand never participates in equality, ordering, or
/// hashing, and release builds carry no second field at all.
#[derive(Clone, Copy)]
pub struct NodeId(
    pub(crate) u32,
    /// Epoch of the minting manager generation; 0 = unbranded (terminals,
    /// wire-format ids), accepted by every manager.
    #[cfg(feature = "check")]
    pub(crate) u32,
);

impl PartialEq for NodeId {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for NodeId {}

impl PartialOrd for NodeId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for NodeId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl NodeId {
    /// The raw arena index, for wire formats and diagnostics. Only
    /// meaningful together with the manager that allocated the id.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from a raw arena index, e.g. while decoding a
    /// snapshot. The index is *not* checked here; callers must validate it
    /// against the arena of the manager the id will be used with (a stale
    /// or forged id panics or denotes the wrong function at use sites).
    /// The result is unbranded: `check` builds accept it against any
    /// manager.
    pub fn from_raw(raw: u32) -> NodeId {
        Self::unbranded(raw)
    }

    /// An id with no brand (accepted by every manager in `check` builds).
    pub(crate) fn unbranded(raw: u32) -> NodeId {
        #[cfg(feature = "check")]
        return NodeId(raw, 0);
        #[cfg(not(feature = "check"))]
        NodeId(raw)
    }

    /// Test-only unbranded constructor for table unit tests.
    #[cfg(test)]
    pub(crate) fn test_raw(raw: u32) -> NodeId {
        Self::unbranded(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FALSE {
            write!(f, "n⊥")
        } else if *self == TRUE {
            write!(f, "n⊤")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// The constant-false terminal node.
#[cfg(not(feature = "check"))]
pub const FALSE: NodeId = NodeId(0);
/// The constant-false terminal node.
#[cfg(feature = "check")]
pub const FALSE: NodeId = NodeId(0, 0);
/// The constant-true terminal node.
#[cfg(not(feature = "check"))]
pub const TRUE: NodeId = NodeId(1);
/// The constant-true terminal node.
#[cfg(feature = "check")]
pub const TRUE: NodeId = NodeId(1, 0);

/// Source of manager epochs for `check`-build NodeId brands. Epoch 0 is
/// reserved for unbranded ids, so the counter starts at 1.
#[cfg(feature = "check")]
static NEXT_EPOCH: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(1);

/// A fresh, never-before-issued manager epoch.
#[cfg(feature = "check")]
fn fresh_epoch() -> u32 {
    NEXT_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Sentinel variable index used by terminal nodes.
const TERMINAL_VAR: u32 = u32::MAX;

/// Level reported for terminal nodes: below every variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// A shared ROBDD store.
///
/// All functions built by one manager share structure and may be combined
/// with each other. See the [crate documentation](crate) for an overview and
/// an example.
///
/// Cloning a manager snapshots the whole node store: node ids taken from
/// the original remain valid (and denote the same functions) in the clone,
/// which is how experiments fork one baseline into several independently
/// reduced variants.
#[derive(Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: UniqueTable,
    ite_cache: ComputedTable,
    exists_cache: ComputedTable,
    and_exists_cache: ComputedTable,
    compose_cache: ComputedTable,
    /// Largest `nodes.len()` this manager generation ever reached.
    peak_nodes: usize,
    /// Completed [`gc`](Self::gc) passes.
    gc_runs: u64,
    /// Wall-clock nanoseconds spent inside those passes.
    gc_pause_ns: u64,
    /// Reusable stamped memo for [`swap_adjacent`](Self::swap_adjacent)'s
    /// rebuild (reorder.rs): taken out for the duration of a swap, put
    /// back after, so repeated swaps never reallocate.
    swap_scratch: ScratchMap,
    /// Reusable stamped visit-set for width/cost traversals (width.rs).
    width_scratch: ScratchMap,
    /// Head of the per-variable node list: `var_heads[v]` is the arena
    /// index of one node labelled `v` (or `NIL`), and `var_next[i]` chains
    /// to the next node with the same label. The in-place adjacent swap
    /// (reorder.rs) enumerates the upper level of a swapped pair through
    /// these lists instead of scanning the arena. Maintained by every node
    /// append and rebuilt wholesale on [`gc`](Self::gc) and snapshot
    /// restore; entries for garbage nodes are allowed (readers skip them).
    var_heads: Vec<u32>,
    /// Per-node successor in the [`var_heads`](Self::var_heads) chains,
    /// parallel to `nodes` (terminal entries unused).
    var_next: Vec<u32>,
    /// Reusable buffer for the in-place swap's snapshot of the upper
    /// level's chain (reorder.rs), kept to avoid a per-swap allocation.
    swap_chain: Vec<u32>,
    var_at_level: Vec<Var>,
    level_of_var: Vec<u32>,
    budget: Budget,
    steps: u64,
    /// Forces [`poll_interrupts`](Self::poll_interrupts) on the next charged
    /// step, regardless of the 1024-step cadence. Armed whenever a budget is
    /// (re)installed, so an already-expired deadline or fired cancel token
    /// surfaces on the *first* cache-missing step of the next operation —
    /// deterministic for deadline tests, fail-fast for queue-expired
    /// service requests.
    poll_armed: bool,
    poisoned: bool,
    /// Long-lived roots registered via [`register_root`](Self::register_root):
    /// [`gc`](Self::gc) keeps them alive and remaps them in place, so ids
    /// stored in structures outside the call site survive compaction.
    registered_roots: Vec<NodeId>,
    /// Brand epoch for `check` builds: every id this manager generation
    /// mints carries it, and every dereference verifies it. A clone shares
    /// the epoch (its arena is a snapshot, so foreign ids stay valid);
    /// [`gc`](Self::gc) moves to a fresh epoch because it invalidates all
    /// unreturned ids.
    #[cfg(feature = "check")]
    epoch: u32,
    /// `check` builds: a snapshot-restored manager accepts ids of *any*
    /// brand — the wire format erases provenance while the documented
    /// contract keeps original ids valid in the restored arena. The first
    /// [`gc`](Self::gc) re-mints every surviving id under this manager's
    /// own epoch and closes the window.
    #[cfg(feature = "check")]
    open: bool,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars())
            .field("arena_len", &self.nodes.len())
            .finish()
    }
}

impl BddManager {
    /// Creates a manager with `num_vars` variables `Var(0) .. Var(num_vars-1)`,
    /// initially ordered by index (`Var(0)` on top).
    pub fn new(num_vars: usize) -> Self {
        let mut mgr = BddManager {
            nodes: Vec::with_capacity(1024),
            unique: UniqueTable::with_capacity_log2(UniqueTable::capacity_log2_for(0)),
            ite_cache: ComputedTable::default(),
            exists_cache: ComputedTable::default(),
            and_exists_cache: ComputedTable::default(),
            compose_cache: ComputedTable::default(),
            peak_nodes: 2,
            gc_runs: 0,
            gc_pause_ns: 0,
            swap_scratch: ScratchMap::default(),
            width_scratch: ScratchMap::default(),
            var_heads: vec![NIL; num_vars],
            var_next: vec![NIL; 2],
            swap_chain: Vec::new(),
            var_at_level: (0..num_vars as u32).map(Var).collect(),
            level_of_var: (0..num_vars as u32).collect(),
            budget: Budget::default(),
            steps: 0,
            poll_armed: false,
            poisoned: false,
            registered_roots: Vec::new(),
            #[cfg(feature = "check")]
            epoch: fresh_epoch(),
            #[cfg(feature = "check")]
            open: false,
        };
        mgr.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: FALSE,
            hi: FALSE,
            next: NIL,
        });
        mgr.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: TRUE,
            hi: TRUE,
            next: NIL,
        });
        mgr
    }

    /// Appends a fresh variable at the bottom of the current order.
    pub fn add_var(&mut self) -> Var {
        let v = Var(self.level_of_var.len() as u32);
        self.level_of_var.push(self.var_at_level.len() as u32);
        self.var_at_level.push(v);
        self.var_heads.push(NIL);
        v
    }

    /// Number of variables managed.
    pub fn num_vars(&self) -> usize {
        self.var_at_level.len()
    }

    /// Total number of nodes in the arena, live or garbage (terminals
    /// included). Useful for deciding when to [`gc`](Self::gc).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Takes the swap-rebuild scratch out of the manager, begun over the
    /// current arena. The caller must give it back via
    /// [`put_swap_scratch`](Self::put_swap_scratch) so the next swap
    /// reuses the allocation.
    pub(crate) fn take_swap_scratch(&mut self) -> ScratchMap {
        let mut scratch = std::mem::take(&mut self.swap_scratch);
        scratch.begin(self.nodes.len());
        scratch
    }

    /// Returns the swap-rebuild scratch taken by
    /// [`take_swap_scratch`](Self::take_swap_scratch).
    pub(crate) fn put_swap_scratch(&mut self, scratch: ScratchMap) {
        self.swap_scratch = scratch;
    }

    /// Takes the width-traversal scratch out of the manager, begun over
    /// the current arena. Counterpart of
    /// [`put_width_scratch`](Self::put_width_scratch).
    pub(crate) fn take_width_scratch(&mut self) -> ScratchMap {
        let mut scratch = std::mem::take(&mut self.width_scratch);
        scratch.begin(self.nodes.len());
        scratch
    }

    /// Returns the width-traversal scratch taken by
    /// [`take_width_scratch`](Self::take_width_scratch).
    pub(crate) fn put_width_scratch(&mut self, scratch: ScratchMap) {
        self.width_scratch = scratch;
    }

    // ---------------------------------------------------------------------
    // Per-variable node lists (in-place swap support, reorder.rs)
    // ---------------------------------------------------------------------

    /// Recomputes every per-variable chain from the arena in one ascending
    /// pass (push-front, so chains run in descending arena order —
    /// deterministic). Called after any wholesale arena rebuild.
    fn rebuild_var_lists(&mut self) {
        self.var_heads.clear();
        self.var_heads.resize(self.num_vars(), NIL);
        self.var_next.clear();
        self.var_next.resize(self.nodes.len(), NIL);
        for i in 2..self.nodes.len() {
            let var = self.nodes[i].var as usize;
            self.var_next[i] = self.var_heads[var];
            self.var_heads[var] = i as u32;
        }
    }

    /// First arena index of the chain of nodes labelled `var` (`NIL` when
    /// empty). The chain may contain garbage nodes; callers filter by
    /// tabled-ness.
    pub(crate) fn var_list_head(&self, var: Var) -> u32 {
        self.var_heads[var.0 as usize]
    }

    /// Successor of arena index `raw` in its per-variable chain.
    pub(crate) fn var_list_next(&self, raw: u32) -> u32 {
        self.var_next[raw as usize]
    }

    /// Empties the chain for `var` (the in-place swap re-threads it).
    pub(crate) fn var_list_reset(&mut self, var: Var) {
        self.var_heads[var.0 as usize] = NIL;
    }

    /// Pushes arena index `raw` onto the front of `var`'s chain. The
    /// caller guarantees `raw` is not already threaded anywhere.
    pub(crate) fn var_list_push(&mut self, var: Var, raw: u32) {
        self.var_next[raw as usize] = self.var_heads[var.0 as usize];
        self.var_heads[var.0 as usize] = raw;
    }

    /// Rewrites the node at `raw` to `(var, lo, hi)` without moving it.
    /// Unique-table linkage is the caller's job: the node must be unlinked
    /// before the rewrite and re-inserted (or deliberately left untabled)
    /// after.
    pub(crate) fn set_node_in_place(&mut self, raw: u32, var: Var, lo: NodeId, hi: NodeId) {
        self.check_brand(lo);
        self.check_brand(hi);
        self.nodes[raw as usize] = Node {
            var: var.0,
            lo,
            hi,
            next: NIL,
        };
    }

    /// Unlinks the node at `raw` from the unique table, reporting whether
    /// it was linked (see [`UniqueTable::unlink_checked`]).
    pub(crate) fn unique_unlink_checked(&mut self, raw: u32) -> bool {
        self.unique.unlink_checked(&mut self.nodes, raw)
    }

    /// Counter-free unique-table probe by raw key (in-place swap collision
    /// check).
    pub(crate) fn unique_find_raw(&self, var: Var, lo: u32, hi: u32) -> Option<u32> {
        self.unique.find_quiet(&self.nodes, var.0, lo, hi)
    }

    /// Links the (already rewritten) node at `raw` into the unique table.
    /// The caller guarantees its key is absent. Growth is not checked: the
    /// in-place swap only re-inserts nodes it just unlinked, so the load
    /// factor never rises across the call.
    pub(crate) fn unique_insert_raw(&mut self, raw: u32) {
        self.unique.insert(&mut self.nodes, raw);
    }

    /// Takes the reusable chain buffer for the in-place swap (cleared).
    pub(crate) fn take_swap_chain(&mut self) -> Vec<u32> {
        let mut chain = std::mem::take(&mut self.swap_chain);
        chain.clear();
        chain
    }

    /// Returns the chain buffer taken by
    /// [`take_swap_chain`](Self::take_swap_chain).
    pub(crate) fn put_swap_chain(&mut self, chain: Vec<u32>) {
        self.swap_chain = chain;
    }

    /// Whether the node at arena index `target` is reachable from `roots`.
    /// Used by the in-place swap's rare key-collision tie-break, where
    /// liveness decides which of two same-function nodes stays tabled.
    pub(crate) fn reaches(&mut self, roots: &[NodeId], target: u32) -> bool {
        let mut seen = self.take_width_scratch();
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            if seen.get(r.0).is_none() {
                seen.set(r.0, 0);
                stack.push(r.0);
            }
        }
        let mut found = false;
        while let Some(n) = stack.pop() {
            if n == target {
                found = true;
                break;
            }
            let node = self.nodes[n as usize];
            if node.var == TERMINAL_VAR {
                continue;
            }
            for child in [node.lo.0, node.hi.0] {
                if seen.get(child).is_none() {
                    seen.set(child, 0);
                    stack.push(child);
                }
            }
        }
        self.put_width_scratch(seen);
        found
    }

    /// Current level (position in the order, `0` = top) of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this manager.
    pub fn level_of(&self, var: Var) -> u32 {
        self.level_of_var[var.0 as usize]
    }

    /// The variable currently at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn var_at(&self, level: u32) -> Var {
        self.var_at_level[level as usize]
    }

    /// The current variable order, top to bottom.
    pub fn order(&self) -> &[Var] {
        &self.var_at_level
    }

    /// Installs a complete variable order (a permutation of all variables,
    /// top to bottom). Only affects *future* node constructions; existing
    /// nodes are not rebuilt, so this should be called before building
    /// functions, or via [`reorder`](crate::reorder) facilities otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of this manager's variables,
    /// or if any non-terminal node exists (rebuilding is the job of the
    /// reordering module). [`try_set_order`](Self::try_set_order) is the
    /// non-panicking variant.
    pub fn set_order(&mut self, order: &[Var]) {
        match self.try_set_order(order) {
            Ok(()) => {}
            Err(OrderError::WrongLength { .. }) => panic!("order must cover all variables"),
            Err(OrderError::DuplicateVar { var }) => {
                panic!("duplicate variable {var:?} in order")
            }
            Err(OrderError::NonEmptyManager { .. }) => {
                panic!("set_order may only be used on an empty manager; use reordering otherwise")
            }
        }
    }

    /// Fallible variant of [`set_order`](Self::set_order): validates the
    /// permutation and refuses to run on a non-empty manager (existing nodes
    /// would silently violate the level invariant — rebuilding under a new
    /// order is the job of the [`reorder`](crate::reorder) module). On
    /// `Err` the manager is unchanged.
    // xlint: allow(XL104): indices are range-checked by the short-circuit `>=` guard and the validation loop above each use
    pub fn try_set_order(&mut self, order: &[Var]) -> Result<(), OrderError> {
        if order.len() != self.num_vars() {
            return Err(OrderError::WrongLength {
                expected: self.num_vars(),
                got: order.len(),
            });
        }
        if self.nodes.len() != 2 {
            return Err(OrderError::NonEmptyManager {
                interior_nodes: self.nodes.len() - 2,
            });
        }
        let mut seen = vec![false; self.num_vars()];
        for &v in order {
            if (v.0 as usize) >= seen.len() || std::mem::replace(&mut seen[v.0 as usize], true) {
                return Err(OrderError::DuplicateVar { var: v });
            }
        }
        for (lvl, &v) in order.iter().enumerate() {
            self.level_of_var[v.0 as usize] = lvl as u32;
        }
        self.var_at_level.copy_from_slice(order);
        Ok(())
    }

    /// Crate-internal raw order update used by level swapping: assigns
    /// `level_a` to `a` and `level_b` to `b` without any rebuilding.
    pub(crate) fn set_levels_raw(&mut self, a: Var, level_a: u32, b: Var, level_b: u32) {
        self.level_of_var[a.0 as usize] = level_a;
        self.level_of_var[b.0 as usize] = level_b;
        self.var_at_level[level_a as usize] = a;
        self.var_at_level[level_b as usize] = b;
    }

    // ---------------------------------------------------------------------
    // Resource governance
    // ---------------------------------------------------------------------

    /// Installs a resource [`Budget`] and resets the step counter.
    ///
    /// The budget only constrains the fallible `try_*` operations; the
    /// infallible operations suspend it for their duration and keep their
    /// historical never-fails behavior. A `time_budget` allowance is
    /// converted to an absolute deadline at install time, read from the
    /// budget's [`Clock`](crate::clock::Clock) (the monotonic system clock
    /// unless a test or the serving layer injected one).
    pub fn set_budget(&mut self, mut budget: Budget) {
        if budget.deadline.is_none() {
            if let Some(allowance) = budget.time_budget {
                budget.deadline = Some(budget.now() + allowance);
            }
        }
        self.budget = budget;
        self.steps = 0;
        self.poll_armed = true;
    }

    /// The currently installed budget (unlimited by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Removes and returns the installed budget, leaving the manager
    /// unlimited. The step counter keeps running.
    pub fn take_budget(&mut self) -> Budget {
        std::mem::take(&mut self.budget)
    }

    /// Restores a budget previously removed with
    /// [`take_budget`](Self::take_budget), preserving the step counter and
    /// any already-derived deadline. Higher layers use this pair to suspend
    /// governance around an operation (e.g. to run an oracle or implement an
    /// infallible wrapper) without perturbing step accounting; use
    /// [`set_budget`](Self::set_budget) to install a *fresh* budget instead.
    pub fn resume_budget(&mut self, budget: Budget) {
        self.budget = budget;
        self.poll_armed = true;
    }

    /// Operation steps charged since the budget was last installed (or since
    /// construction). One step is one cache-missing recursive call of a
    /// budgeted operation — a deterministic, machine-independent measure of
    /// work used by the fault-injection harness to place reproducible
    /// faults.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Marks the manager as poisoned. Batch harnesses call this after a
    /// panic unwinds through an operation on this manager: the arena may be
    /// mid-construction, so every further budgeted operation refuses to run
    /// with [`Error::Poisoned`] rather than silently building on a possibly
    /// half-written state. Idempotent; there is no un-poisoning — rebuild
    /// from a snapshot (or from scratch) instead.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Has [`poison`](Self::poison) been called on this manager (directly,
    /// or via a snapshot restore of a poisoned manager)?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Charges one operation step against the budget. Called on every
    /// recursion of the `try_*` operations (after their terminal
    /// short-cuts). Cheap checks (step limit, deterministic cancel hook) run
    /// every step; the clock and the cancellation flag are polled every 1024
    /// steps to keep the hot path tight, plus once on the first charged step
    /// after any budget (re)install — so an operation starting past its
    /// deadline fails on its first cache-missing step, which makes
    /// queue-expired service requests fail fast and deadline tests
    /// deterministic.
    #[inline]
    fn charge(&mut self) -> Result<(), Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        self.steps += 1;
        if let Some(limit) = self.budget.step_limit {
            if self.steps > limit {
                return Err(Error::StepLimit { limit });
            }
        }
        if let Some(at) = self.budget.cancel_at_step {
            if self.steps >= at {
                if let Some(token) = &self.budget.cancel {
                    token.cancel();
                }
                return Err(Error::Cancelled);
            }
        }
        if self.poll_armed || self.steps & 0x3FF == 0 {
            self.poll_armed = false;
            self.poll_interrupts()?;
        }
        Ok(())
    }

    /// The slow-path half of [`charge`](Self::charge): cancellation flag and
    /// monotonic-clock deadline (via the budget's injectable
    /// [`Clock`](crate::clock::Clock)).
    #[cold]
    fn poll_interrupts(&self) -> Result<(), Error> {
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                return Err(Error::Cancelled);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.budget.now() >= deadline {
                return Err(Error::TimeBudget);
            }
        }
        Ok(())
    }

    /// Runs `op` with the budget suspended. This is how the infallible
    /// operations delegate to their `try_*` twins without ever observing a
    /// budget error.
    /// # Panics
    ///
    /// Panics if the manager is [poisoned](Self::poison): the infallible
    /// wrappers have no error channel, and continuing on a quarantined
    /// manager would defeat the quarantine.
    #[inline]
    fn unbudgeted<T>(&mut self, op: impl FnOnce(&mut Self) -> Result<T, Error>) -> T {
        let saved = std::mem::take(&mut self.budget);
        let result = op(self);
        self.budget = saved;
        // Re-arm the interrupt poll: the next charged step of a budgeted
        // operation re-checks deadline and cancellation, so an expiry that
        // happened while the budget was suspended is not missed for up to
        // 1024 steps.
        self.poll_armed = true;
        match result {
            Ok(value) => value,
            Err(e) => panic!("invariant: unbudgeted BDD operations cannot fail (got: {e})"),
        }
    }

    // ---------------------------------------------------------------------
    // Structural access
    // ---------------------------------------------------------------------

    /// Is `id` one of the two terminal nodes?
    pub fn is_const(&self, id: NodeId) -> bool {
        id == FALSE || id == TRUE
    }

    /// Brands a raw arena index with this manager's current epoch
    /// (`check` builds); a plain constructor otherwise.
    #[inline]
    pub(crate) fn brand(&self, raw: u32) -> NodeId {
        #[cfg(feature = "check")]
        return NodeId(raw, self.epoch);
        #[cfg(not(feature = "check"))]
        NodeId(raw)
    }

    /// Verifies (in `check` builds) that `id` was minted by this manager
    /// generation. Unbranded ids — terminals and wire-format ids — always
    /// pass; everything else must carry the current epoch.
    ///
    /// # Panics
    ///
    /// Panics on a brand mismatch: the id came from a different manager,
    /// or from this manager before its last [`gc`](Self::gc).
    #[inline]
    pub(crate) fn check_brand(&self, id: NodeId) {
        #[cfg(feature = "check")]
        assert!(
            self.open || id.1 == 0 || id.1 == self.epoch,
            "NodeId n{} (brand {}) used against a manager at epoch {}: the id was \
             minted by a different manager, or invalidated by this manager's gc",
            id.0,
            id.1,
            self.epoch,
        );
        #[cfg(not(feature = "check"))]
        let _ = id;
    }

    /// Top variable of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn var_of(&self, id: NodeId) -> Var {
        self.check_brand(id);
        assert!(!self.is_const(id), "terminals have no variable");
        Var(self.nodes[id.0 as usize].var)
    }

    /// 0-successor of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn lo(&self, id: NodeId) -> NodeId {
        self.check_brand(id);
        assert!(!self.is_const(id), "terminals have no successors");
        self.nodes[id.0 as usize].lo
    }

    /// 1-successor of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn hi(&self, id: NodeId) -> NodeId {
        self.check_brand(id);
        assert!(!self.is_const(id), "terminals have no successors");
        self.nodes[id.0 as usize].hi
    }

    /// Level of the node's top variable; `u32::MAX` for terminals.
    pub fn level_of_node(&self, id: NodeId) -> u32 {
        self.check_brand(id);
        let node = self.nodes[id.0 as usize];
        if node.var == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.level_of_var[node.var as usize]
        }
    }

    /// All distinct nodes reachable from `roots` (terminals excluded),
    /// in depth-first discovery order.
    pub fn descendants(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if self.is_const(n) || seen[n.0 as usize] {
                continue;
            }
            seen[n.0 as usize] = true;
            out.push(n);
            let node = self.nodes[n.0 as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        out
    }

    /// Number of distinct non-terminal nodes reachable from `root`.
    pub fn node_count(&self, root: NodeId) -> usize {
        self.descendants(&[root]).len()
    }

    /// Number of distinct non-terminal nodes shared among several roots.
    pub fn node_count_multi(&self, roots: &[NodeId]) -> usize {
        self.descendants(roots).len()
    }

    // ---------------------------------------------------------------------
    // Snapshot raw access (see the `snapshot` module for the wire format)
    // ---------------------------------------------------------------------

    /// Interior nodes as raw `(var, lo, hi)` triples in arena order
    /// (terminals excluded). Arena order places every child before its
    /// parent, which the snapshot reader relies on for one-pass validation.
    pub(crate) fn raw_nodes(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.nodes[2..].iter().map(|n| (n.var, n.lo.0, n.hi.0))
    }

    /// log2 of the unique table's bucket count — the geometry word of
    /// snapshot wire format v2.
    pub(crate) fn unique_capacity_log2(&self) -> u32 {
        self.unique.capacity_log2()
    }

    /// Rebuilds a manager from snapshot parts: a variable order and the
    /// interior-node triples in arena order. The unique table is
    /// reconstructed — chains are not serialized, only (in wire format v2)
    /// the bucket-array geometry, passed as `unique_capacity_log2`; `None`
    /// (v1 snapshots) falls back to the deterministic
    /// [`UniqueTable::capacity_log2_for`] geometry. Every triple is
    /// validated — variable in range, no redundant node, children strictly
    /// before their parent in the arena and strictly below in the level
    /// order, no duplicate `(var, lo, hi)` key. On failure, returns the
    /// index of the offending triple (`0` for a bad order) and a
    /// description, so the caller can translate it into a byte offset.
    pub(crate) fn from_snapshot_parts(
        order: &[Var],
        triples: &[(u32, u32, u32)],
        poisoned: bool,
        unique_capacity_log2: Option<u32>,
    ) -> Result<Self, (usize, String)> {
        let num_vars = order.len();
        let mut mgr = BddManager::new(num_vars);
        if let Err(e) = mgr.try_set_order(order) {
            return Err((0, format!("variable order is not a permutation: {e:?}")));
        }
        mgr.poisoned = poisoned;
        #[cfg(feature = "check")]
        {
            // Restored arenas honor the snapshot contract: ids from the
            // manager that produced the bytes stay valid here.
            mgr.open = true;
        }
        mgr.nodes.reserve(triples.len());
        for (i, &(var, lo, hi)) in triples.iter().enumerate() {
            let id = mgr.brand((i + 2) as u32);
            if var as usize >= num_vars {
                return Err((
                    i,
                    format!("node n{}: variable index {var} out of range", id.0),
                ));
            }
            if lo == hi {
                return Err((i, format!("node n{}: redundant node (lo == hi)", id.0)));
            }
            if lo >= id.0 || hi >= id.0 {
                return Err((
                    i,
                    format!("node n{}: child does not precede parent in the arena", id.0),
                ));
            }
            let (lo, hi) = (mgr.brand(lo), mgr.brand(hi));
            let level = mgr.level_of_var[var as usize];
            if level >= mgr.level_of_node(lo) || level >= mgr.level_of_node(hi) {
                return Err((
                    i,
                    format!(
                        "node n{}: variable not above its children in the order",
                        id.0
                    ),
                ));
            }
            if mgr.unique.find_quiet(&mgr.nodes, var, lo.0, hi.0).is_some() {
                return Err((i, format!("node n{}: duplicate of an earlier node", id.0)));
            }
            if mgr.unique.should_grow() {
                mgr.unique.grow(&mut mgr.nodes);
            }
            mgr.nodes.push(Node {
                var,
                lo,
                hi,
                next: NIL,
            });
            mgr.unique.insert(&mut mgr.nodes, id.0);
        }
        // Wire format v2 records the bucket geometry; honoring it keeps a
        // restored manager byte-identical to the one that wrote the bytes.
        let cap = unique_capacity_log2
            .unwrap_or_else(|| UniqueTable::capacity_log2_for(mgr.unique.len()));
        if cap != mgr.unique.capacity_log2() {
            mgr.unique.rebuild(&mut mgr.nodes, cap);
        }
        mgr.rebuild_var_lists();
        mgr.peak_nodes = mgr.nodes.len();
        Ok(mgr)
    }

    // ---------------------------------------------------------------------
    // Construction
    // ---------------------------------------------------------------------

    /// The canonical node for `if var then hi else lo`.
    ///
    /// Applies the ROBDD reduction rules. `var` must lie strictly above both
    /// children in the current order (checked in debug builds).
    pub fn mk(&mut self, var: Var, lo: NodeId, hi: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_mk(var, lo, hi))
    }

    /// Budgeted variant of [`mk`](Self::mk): fails with
    /// [`Error::NodeLimit`] if a genuinely new node would push the arena
    /// past the quota. Reduction-rule and unique-table hits never fail.
    pub fn try_mk(&mut self, var: Var, lo: NodeId, hi: NodeId) -> Result<NodeId, Error> {
        self.check_brand(lo);
        self.check_brand(hi);
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        if lo == hi {
            return Ok(lo);
        }
        debug_assert!(
            self.level_of(var) < self.level_of_node(lo)
                && self.level_of(var) < self.level_of_node(hi),
            "mk: variable {var:?} (level {}) not above children (levels {}, {})",
            self.level_of(var),
            self.level_of_node(lo),
            self.level_of_node(hi),
        );
        if let Some(raw) = self.unique.find(&self.nodes, var.0, lo.0, hi.0) {
            return Ok(self.brand(raw));
        }
        if let Some(limit) = self.budget.node_limit {
            if self.nodes.len() >= limit {
                return Err(Error::NodeLimit { limit });
            }
        }
        assert!(self.nodes.len() < u32::MAX as usize, "node arena overflow");
        if self.unique.should_grow() {
            self.unique.grow(&mut self.nodes);
        }
        let raw = self.nodes.len() as u32;
        self.nodes.push(Node {
            var: var.0,
            lo,
            hi,
            next: NIL,
        });
        // xlint: allow(XL104): `var_heads` spans `num_vars` and `var` indexes the order permutation in `level_of` above — in range by the manager representation invariant
        self.var_next.push(self.var_heads[var.0 as usize]);
        // xlint: allow(XL104): same in-range `var` as the push above
        self.var_heads[var.0 as usize] = raw;
        self.unique.insert(&mut self.nodes, raw);
        if self.nodes.len() > self.peak_nodes {
            self.peak_nodes = self.nodes.len();
        }
        Ok(self.brand(raw))
    }

    /// The function `var` (a positive literal).
    pub fn var(&mut self, var: Var) -> NodeId {
        self.mk(var, FALSE, TRUE)
    }

    /// The function `¬var` (a negative literal).
    pub fn nvar(&mut self, var: Var) -> NodeId {
        self.mk(var, TRUE, FALSE)
    }

    /// The literal `var` if `positive`, else `¬var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> NodeId {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Budgeted variant of [`literal`](Self::literal).
    pub fn try_literal(&mut self, var: Var, positive: bool) -> Result<NodeId, Error> {
        if positive {
            self.try_mk(var, FALSE, TRUE)
        } else {
            self.try_mk(var, TRUE, FALSE)
        }
    }

    /// Conjunction of literals. An empty slice yields `TRUE`.
    ///
    /// Literals may be given in any order; duplicates are allowed but a
    /// variable must not appear with both polarities (that would be the
    /// constant false, which is returned in that case).
    pub fn cube(&mut self, literals: &[(Var, bool)]) -> NodeId {
        self.unbudgeted(|m| m.try_cube(literals))
    }

    /// Budgeted variant of [`cube`](Self::cube).
    // xlint: allow(XL104): `pair[0]`/`pair[1]` index `windows(2)` chunks, which always hold exactly two elements
    pub fn try_cube(&mut self, literals: &[(Var, bool)]) -> Result<NodeId, Error> {
        let mut lits: Vec<(u32, Var, bool)> = literals
            .iter()
            .map(|&(v, pos)| (self.level_of(v), v, pos))
            .collect();
        lits.sort_unstable();
        lits.dedup();
        // Detect contradictory literals (same var, both polarities).
        for pair in lits.windows(2) {
            if pair[0].1 == pair[1].1 {
                return Ok(FALSE);
            }
        }
        let mut acc = TRUE;
        for &(_, v, pos) in lits.iter().rev() {
            acc = if pos {
                self.try_mk(v, FALSE, acc)?
            } else {
                self.try_mk(v, acc, FALSE)?
            };
        }
        Ok(acc)
    }

    /// Builds the disjunction of a set of *minterms* over the given
    /// variables in time `O(k·n)` for `k` minterms over `n` variables.
    ///
    /// `minterms[i]` encodes one assignment: bit `j` (LSB = bit 0) is the
    /// value of `vars[j]`. Duplicate minterms are tolerated.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty while `minterms` is not, if `vars` holds
    /// more than 64 variables, or if a minterm sets bits outside
    /// `vars.len()`.
    pub fn from_minterms(&mut self, vars: &[Var], minterms: &[u64]) -> NodeId {
        self.unbudgeted(|m| m.try_from_minterms(vars, minterms))
    }

    /// Budgeted variant of [`from_minterms`](Self::from_minterms); the
    /// documented panics on malformed input apply unchanged.
    // xlint: allow(XL104): `vars[j]` uses `j` drawn from an enumeration of `vars`' own indices
    pub fn try_from_minterms(&mut self, vars: &[Var], minterms: &[u64]) -> Result<NodeId, Error> {
        if minterms.is_empty() {
            return Ok(FALSE);
        }
        assert!(!vars.is_empty(), "minterms over an empty variable set");
        assert!(
            vars.len() <= 64,
            "from_minterms supports at most 64 variables"
        );
        let width = vars.len();
        if width < 64 {
            for &m in minterms {
                assert!(
                    m >> width == 0,
                    "minterm {m:#x} sets bits outside the {width} given variables"
                );
            }
        }
        // Order variables by current level (top first) and remap minterm bits
        // so that the most significant comparison bit is the top variable.
        let mut by_level: Vec<(u32, usize)> = vars
            .iter()
            .enumerate()
            .map(|(j, &v)| (self.level_of(v), j))
            .collect();
        by_level.sort_unstable();
        let mut remapped: Vec<u64> = minterms
            .iter()
            .map(|&m| {
                let mut r = 0u64;
                for (rank, &(_, j)) in by_level.iter().enumerate() {
                    if m >> j & 1 == 1 {
                        // top variable -> most significant bit
                        r |= 1 << (width - 1 - rank);
                    }
                }
                r
            })
            .collect();
        remapped.sort_unstable();
        remapped.dedup();
        let sorted_vars: Vec<Var> = by_level.iter().map(|&(_, j)| vars[j]).collect();
        self.build_sorted_minterms(&sorted_vars, &remapped, 0)
    }

    fn build_sorted_minterms(
        &mut self,
        vars: &[Var],
        minterms: &[u64],
        depth: usize,
    ) -> Result<NodeId, Error> {
        if minterms.is_empty() {
            return Ok(FALSE);
        }
        if depth == vars.len() {
            return Ok(TRUE);
        }
        self.charge()?;
        let bit = vars.len() - 1 - depth;
        let split = minterms.partition_point(|&m| m >> bit & 1 == 0);
        let lo = self.build_sorted_minterms(vars, &minterms[..split], depth + 1)?;
        let hi = self.build_sorted_minterms(vars, &minterms[split..], depth + 1)?;
        self.try_mk(vars[depth], lo, hi)
    }

    // ---------------------------------------------------------------------
    // Boolean operations
    // ---------------------------------------------------------------------

    /// If-then-else: `f·g ∨ ¬f·h`. The workhorse all binary operations are
    /// built on.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_ite(f, g, h))
    }

    /// Budgeted variant of [`ite`](Self::ite): charges one step per
    /// cache-missing recursion and respects the node quota.
    pub fn try_ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> Result<NodeId, Error> {
        // Terminal short-cuts.
        if f == TRUE {
            return Ok(g);
        }
        if f == FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == TRUE && h == FALSE {
            return Ok(f);
        }
        if let Some(r) = self.ite_cache.get(f.0, g.0, h.0) {
            return Ok(self.brand(r));
        }
        self.charge()?;
        let top = self
            .level_of_node(f)
            .min(self.level_of_node(g))
            .min(self.level_of_node(h));
        let var = self.var_at(top);
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.try_ite(f0, g0, h0)?;
        let hi = self.try_ite(f1, g1, h1)?;
        let r = self.try_mk(var, lo, hi)?;
        self.ite_cache.put(f.0, g.0, h.0, r.0);
        Ok(r)
    }

    #[inline]
    fn cofactors_at(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        if self.level_of_node(f) == level {
            let n = self.nodes[f.0 as usize];
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, FALSE, TRUE)
    }

    /// Budgeted variant of [`not`](Self::not).
    pub fn try_not(&mut self, f: NodeId) -> Result<NodeId, Error> {
        self.try_ite(f, FALSE, TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, FALSE)
    }

    /// Budgeted variant of [`and`](Self::and).
    pub fn try_and(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, Error> {
        self.try_ite(f, g, FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, TRUE, g)
    }

    /// Budgeted variant of [`or`](Self::or).
    pub fn try_or(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, Error> {
        self.try_ite(f, TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_xor(f, g))
    }

    /// Budgeted variant of [`xor`](Self::xor).
    pub fn try_xor(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, Error> {
        let ng = self.try_not(g)?;
        self.try_ite(f, ng, g)
    }

    /// Equivalence (`f ≡ g`, i.e. XNOR).
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_iff(f, g))
    }

    /// Budgeted variant of [`iff`](Self::iff).
    pub fn try_iff(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, Error> {
        let ng = self.try_not(g)?;
        self.try_ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, TRUE)
    }

    /// Budgeted variant of [`implies`](Self::implies).
    pub fn try_implies(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, Error> {
        self.try_ite(f, g, TRUE)
    }

    /// Applies a binary Boolean connective. Equivalent to the dedicated
    /// methods ([`and`](Self::and), [`or`](Self::or), …); useful when the
    /// connective is data.
    pub fn apply(&mut self, op: BinOp, f: NodeId, g: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_apply(op, f, g))
    }

    /// Budgeted variant of [`apply`](Self::apply).
    pub fn try_apply(&mut self, op: BinOp, f: NodeId, g: NodeId) -> Result<NodeId, Error> {
        match op {
            BinOp::And => self.try_and(f, g),
            BinOp::Or => self.try_or(f, g),
            BinOp::Xor => self.try_xor(f, g),
            BinOp::Iff => self.try_iff(f, g),
            BinOp::Implies => self.try_implies(f, g),
        }
    }

    /// Conjunction of many operands (TRUE for an empty slice).
    pub fn and_many(&mut self, fs: &[NodeId]) -> NodeId {
        self.unbudgeted(|m| m.try_and_many(fs))
    }

    /// Budgeted variant of [`and_many`](Self::and_many).
    pub fn try_and_many(&mut self, fs: &[NodeId]) -> Result<NodeId, Error> {
        let mut acc = TRUE;
        for &f in fs {
            acc = self.try_and(acc, f)?;
            if acc == FALSE {
                break;
            }
        }
        Ok(acc)
    }

    /// Disjunction of many operands (FALSE for an empty slice).
    pub fn or_many(&mut self, fs: &[NodeId]) -> NodeId {
        self.unbudgeted(|m| m.try_or_many(fs))
    }

    /// Budgeted variant of [`or_many`](Self::or_many).
    pub fn try_or_many(&mut self, fs: &[NodeId]) -> Result<NodeId, Error> {
        let mut acc = FALSE;
        for &f in fs {
            acc = self.try_or(acc, f)?;
            if acc == TRUE {
                break;
            }
        }
        Ok(acc)
    }

    // ---------------------------------------------------------------------
    // Cofactors, composition, quantification
    // ---------------------------------------------------------------------

    /// The cofactor `f|var=value`.
    pub fn restrict(&mut self, f: NodeId, var: Var, value: bool) -> NodeId {
        self.unbudgeted(|m| m.try_restrict(f, var, value))
    }

    /// Budgeted variant of [`restrict`](Self::restrict).
    pub fn try_restrict(&mut self, f: NodeId, var: Var, value: bool) -> Result<NodeId, Error> {
        let lit = self.try_literal(var, value)?;
        self.restrict_rec(f, var, value, self.level_of(var), lit)
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: Var,
        value: bool,
        var_level: u32,
        lit: NodeId,
    ) -> Result<NodeId, Error> {
        let level = self.level_of_node(f);
        if level > var_level {
            return Ok(f);
        }
        if level == var_level {
            let n = self.nodes[f.0 as usize];
            return Ok(if value { n.hi } else { n.lo });
        }
        // Reuse the compose cache: restrict(f, v, c) = compose(f, v, const c).
        if let Some(r) = self.compose_cache.get(f.0, var.0, lit.0) {
            return Ok(self.brand(r));
        }
        self.charge()?;
        let n = self.nodes[f.0 as usize];
        let lo = self.restrict_rec(n.lo, var, value, var_level, lit)?;
        let hi = self.restrict_rec(n.hi, var, value, var_level, lit)?;
        let r = self.try_mk(Var(n.var), lo, hi)?;
        self.compose_cache.put(f.0, var.0, lit.0, r.0);
        Ok(r)
    }

    /// Simultaneous cofactor by a (partial) assignment given as literals.
    pub fn restrict_cube(&mut self, f: NodeId, assignment: &[(Var, bool)]) -> NodeId {
        self.unbudgeted(|m| m.try_restrict_cube(f, assignment))
    }

    /// Budgeted variant of [`restrict_cube`](Self::restrict_cube).
    pub fn try_restrict_cube(
        &mut self,
        f: NodeId,
        assignment: &[(Var, bool)],
    ) -> Result<NodeId, Error> {
        let mut acc = f;
        for &(v, val) in assignment {
            acc = self.try_restrict(acc, v, val)?;
        }
        Ok(acc)
    }

    /// Functional composition `f[var := g]`.
    pub fn compose(&mut self, f: NodeId, var: Var, g: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_compose(f, var, g))
    }

    /// Budgeted variant of [`compose`](Self::compose).
    pub fn try_compose(&mut self, f: NodeId, var: Var, g: NodeId) -> Result<NodeId, Error> {
        let var_level = self.level_of(var);
        self.compose_rec(f, var, var_level, g)
    }

    fn compose_rec(
        &mut self,
        f: NodeId,
        var: Var,
        var_level: u32,
        g: NodeId,
    ) -> Result<NodeId, Error> {
        let level = self.level_of_node(f);
        if level > var_level {
            return Ok(f); // f cannot depend on var
        }
        if level == var_level {
            let n = self.nodes[f.0 as usize];
            return self.try_ite(g, n.hi, n.lo);
        }
        if let Some(r) = self.compose_cache.get(f.0, var.0, g.0) {
            return Ok(self.brand(r));
        }
        self.charge()?;
        let n = self.nodes[f.0 as usize];
        let lo = self.compose_rec(n.lo, var, var_level, g)?;
        let hi = self.compose_rec(n.hi, var, var_level, g)?;
        // lo/hi may now depend on variables above n.var, so rebuild with ite.
        let v = self.try_mk(Var(n.var), FALSE, TRUE)?;
        let r = self.try_ite(v, hi, lo)?;
        self.compose_cache.put(f.0, var.0, g.0, r.0);
        Ok(r)
    }

    /// Existential quantification `∃ vars. f`.
    pub fn exists(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        self.unbudgeted(|m| m.try_exists(f, vars))
    }

    /// Budgeted variant of [`exists`](Self::exists).
    pub fn try_exists(&mut self, f: NodeId, vars: &[Var]) -> Result<NodeId, Error> {
        let lits: Vec<(Var, bool)> = vars.iter().map(|&v| (v, true)).collect();
        let cube = self.try_cube(&lits)?;
        self.try_exists_cube(f, cube)
    }

    /// Existential quantification where the variable set is given as a
    /// positive cube (conjunction of the variables to eliminate).
    pub fn exists_cube(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_exists_cube(f, cube))
    }

    /// Budgeted variant of [`exists_cube`](Self::exists_cube).
    // xlint: allow(XL104): `nodes[f.0]` is the manager representation invariant: every reachable NodeId indexes the arena
    pub fn try_exists_cube(&mut self, f: NodeId, cube: NodeId) -> Result<NodeId, Error> {
        if self.is_const(f) || cube == TRUE {
            return Ok(f);
        }
        debug_assert!(cube != FALSE, "quantification cube must be a positive cube");
        if let Some(r) = self.exists_cache.get(f.0, cube.0, NIL) {
            return Ok(self.brand(r));
        }
        self.charge()?;
        let fl = self.level_of_node(f);
        let cl = self.level_of_node(cube);
        let r = if cl < fl {
            // Quantified variable above f's top variable: f is independent.
            let next = self.hi(cube);
            self.try_exists_cube(f, next)?
        } else if cl == fl {
            let n = self.nodes[f.0 as usize];
            let next = self.hi(cube);
            let lo = self.try_exists_cube(n.lo, next)?;
            let hi = self.try_exists_cube(n.hi, next)?;
            self.try_or(lo, hi)?
        } else {
            let n = self.nodes[f.0 as usize];
            let lo = self.try_exists_cube(n.lo, cube)?;
            let hi = self.try_exists_cube(n.hi, cube)?;
            self.try_mk(Var(n.var), lo, hi)?
        };
        self.exists_cache.put(f.0, cube.0, NIL, r.0);
        Ok(r)
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        self.unbudgeted(|m| m.try_forall(f, vars))
    }

    /// Budgeted variant of [`forall`](Self::forall).
    pub fn try_forall(&mut self, f: NodeId, vars: &[Var]) -> Result<NodeId, Error> {
        let nf = self.try_not(f)?;
        let e = self.try_exists(nf, vars)?;
        self.try_not(e)
    }

    /// Relational product `∃ cube. (f ∧ g)` without materializing the full
    /// conjunction — the workhorse of compatibility checking, where the
    /// conjunction can be much larger than its projection.
    ///
    /// `cube` must be a positive cube as in [`BddManager::exists_cube`].
    pub fn and_exists(&mut self, f: NodeId, g: NodeId, cube: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_and_exists(f, g, cube))
    }

    /// Budgeted variant of [`and_exists`](Self::and_exists).
    pub fn try_and_exists(&mut self, f: NodeId, g: NodeId, cube: NodeId) -> Result<NodeId, Error> {
        if f == FALSE || g == FALSE {
            return Ok(FALSE);
        }
        if f == TRUE && g == TRUE {
            return Ok(TRUE);
        }
        if cube == TRUE {
            return self.try_and(f, g);
        }
        let (ka, kb) = (f.min(g).0, f.max(g).0);
        if let Some(r) = self.and_exists_cache.get(ka, kb, cube.0) {
            return Ok(self.brand(r));
        }
        self.charge()?;
        let lf = self.level_of_node(f);
        let lg = self.level_of_node(g);
        let top = lf.min(lg);
        // Skip quantified variables above both operands.
        let mut c = cube;
        while c != TRUE && self.level_of_node(c) < top {
            c = self.hi(c);
        }
        let r = if c == TRUE {
            self.try_and(f, g)?
        } else {
            let (f0, f1) = self.cofactors_at(f, top);
            let (g0, g1) = self.cofactors_at(g, top);
            if self.level_of_node(c) == top {
                let next = self.hi(c);
                let lo = self.try_and_exists(f0, g0, next)?;
                if lo == TRUE {
                    TRUE
                } else {
                    let hi = self.try_and_exists(f1, g1, next)?;
                    self.try_or(lo, hi)?
                }
            } else {
                let var = self.var_at(top);
                let lo = self.try_and_exists(f0, g0, c)?;
                let hi = self.try_and_exists(f1, g1, c)?;
                self.try_mk(var, lo, hi)?
            }
        };
        self.and_exists_cache.put(ka, kb, cube.0, r.0);
        Ok(r)
    }

    /// The Coudert–Madre *restrict* operator: returns a function that
    /// agrees with `f` on the care set `care` and is (heuristically) a
    /// smaller BDD — the classic single-function don't-care minimization
    /// the literature builds on ([Coudert & Madre 1990], the basis of
    /// Shiple et al.'s heuristics).
    ///
    /// Guarantees `restrict_care(f, care) ∧ care = f ∧ care`; outside the
    /// care set the result is arbitrary.
    pub fn restrict_care(&mut self, f: NodeId, care: NodeId) -> NodeId {
        self.unbudgeted(|m| m.try_restrict_care(f, care))
    }

    /// Budgeted variant of [`restrict_care`](Self::restrict_care).
    pub fn try_restrict_care(&mut self, f: NodeId, care: NodeId) -> Result<NodeId, Error> {
        if care == FALSE {
            return Ok(FALSE); // everything is don't care
        }
        let mut memo: FastMap<(NodeId, NodeId), NodeId> = FastMap::default();
        self.restrict_care_rec(f, care, &mut memo)
    }

    fn restrict_care_rec(
        &mut self,
        f: NodeId,
        care: NodeId,
        memo: &mut FastMap<(NodeId, NodeId), NodeId>,
    ) -> Result<NodeId, Error> {
        if care == TRUE || self.is_const(f) {
            return Ok(f);
        }
        let key = (f, care);
        if let Some(&r) = memo.get(&key) {
            return Ok(r);
        }
        self.charge()?;
        let lf = self.level_of_node(f);
        let lc = self.level_of_node(care);
        let r = if lc < lf {
            // The care set's top variable does not constrain f's top:
            // widen the care set by quantifying it away.
            let c0 = self.lo(care);
            let c1 = self.hi(care);
            let widened = self.try_or(c0, c1)?;
            self.restrict_care_rec(f, widened, memo)?
        } else {
            let (f0, f1) = self.cofactors_at(f, lf);
            let (c0, c1) = self.cofactors_at(care, lf);
            if c0 == FALSE {
                self.restrict_care_rec(f1, c1, memo)?
            } else if c1 == FALSE {
                self.restrict_care_rec(f0, c0, memo)?
            } else {
                let var = self.var_at(lf);
                let lo = self.restrict_care_rec(f0, c0, memo)?;
                let hi = self.restrict_care_rec(f1, c1, memo)?;
                self.try_mk(var, lo, hi)?
            }
        };
        memo.insert(key, r);
        Ok(r)
    }

    // ---------------------------------------------------------------------
    // Analysis
    // ---------------------------------------------------------------------

    /// The set of variables `f` depends on, sorted by current level.
    pub fn support(&self, f: NodeId) -> Vec<Var> {
        let mut present = vec![false; self.num_vars()];
        for n in self.descendants(&[f]) {
            present[self.nodes[n.0 as usize].var as usize] = true;
        }
        let mut vars: Vec<Var> = present
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.then_some(Var(i as u32)))
            .collect();
        vars.sort_unstable_by_key(|&v| self.level_of(v));
        vars
    }

    /// Union of the supports of several functions, sorted by current level.
    pub fn support_multi(&self, fs: &[NodeId]) -> Vec<Var> {
        let mut present = vec![false; self.num_vars()];
        for n in self.descendants(fs) {
            present[self.nodes[n.0 as usize].var as usize] = true;
        }
        let mut vars: Vec<Var> = present
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.then_some(Var(i as u32)))
            .collect();
        vars.sort_unstable_by_key(|&v| self.level_of(v));
        vars
    }

    /// Exact number of satisfying assignments over *all* variables of the
    /// manager.
    ///
    /// # Panics
    ///
    /// Panics if the manager has more than 127 variables (the count would
    /// overflow `u128`).
    pub fn sat_count(&self, f: NodeId) -> u128 {
        let t = self.num_vars() as u32;
        assert!(t < 128, "sat_count overflows u128 beyond 127 variables");
        let mut memo: FastMap<NodeId, u128> = FastMap::default();
        let below_root = self.sat_count_rec(f, &mut memo, t);
        below_root << self.level_of_node(f).min(t)
    }

    fn sat_count_rec(&self, f: NodeId, memo: &mut FastMap<NodeId, u128>, t: u32) -> u128 {
        if f == FALSE {
            return 0;
        }
        if f == TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.nodes[f.0 as usize];
        let level = self.level_of_var[n.var as usize];
        let ll = self.level_of_node(n.lo).min(t);
        let lh = self.level_of_node(n.hi).min(t);
        let c = (self.sat_count_rec(n.lo, memo, t) << (ll - level - 1))
            + (self.sat_count_rec(n.hi, memo, t) << (lh - level - 1));
        memo.insert(f, c);
        c
    }

    /// Evaluates `f` under a total assignment indexed by variable id.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the number of variables.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars(),
            "assignment must cover all {} variables",
            self.num_vars()
        );
        let mut cur = f;
        while !self.is_const(cur) {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == TRUE
    }

    /// One satisfying partial assignment (variables not mentioned are
    /// irrelevant on that path), or `None` if `f` is unsatisfiable.
    pub fn one_sat(&self, f: NodeId) -> Option<Vec<(Var, bool)>> {
        if f == FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !self.is_const(cur) {
            let n = self.nodes[cur.0 as usize];
            if n.lo != FALSE {
                path.push((Var(n.var), false));
                cur = n.lo;
            } else {
                path.push((Var(n.var), true));
                cur = n.hi;
            }
        }
        debug_assert_eq!(cur, TRUE);
        Some(path)
    }

    // ---------------------------------------------------------------------
    // Garbage collection & cache control
    // ---------------------------------------------------------------------

    /// Drops all cached operation results. Required after level swaps (done
    /// automatically by the reordering module).
    ///
    /// This is a generation-tag bump per cache — O(1), no slot is touched
    /// — which is what makes per-swap invalidation during sifting free.
    pub fn clear_caches(&mut self) {
        self.ite_cache.invalidate();
        self.exists_cache.invalidate();
        self.and_exists_cache.invalidate();
        self.compose_cache.invalidate();
    }

    /// Total number of entries across all four operation caches. Mostly
    /// useful to *prove* cache invalidation: after
    /// [`clear_caches`](Self::clear_caches) or [`gc`](Self::gc) this is
    /// zero, so no stale pre-compaction result can ever be served.
    pub fn cache_entry_count(&self) -> usize {
        self.ite_cache.live()
            + self.exists_cache.live()
            + self.and_exists_cache.live()
            + self.compose_cache.live()
    }

    /// Engine-health snapshot: arena peaks, unique-table probe counters,
    /// per-operation cache hit/miss/eviction counters, and GC figures.
    /// Counters are monotone over this manager generation; cloning a
    /// manager clones its counters.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            peak_nodes: self.peak_nodes as u64,
            peak_arena_bytes: (self.peak_nodes * std::mem::size_of::<Node>()) as u64,
            unique_len: self.unique.len() as u64,
            unique_capacity: self.unique.capacity() as u64,
            unique_lookups: self.unique.lookups(),
            unique_probes: self.unique.probes(),
            ite: self.ite_cache.stats(),
            exists: self.exists_cache.stats(),
            and_exists: self.and_exists_cache.stats(),
            compose: self.compose_cache.stats(),
            gc_runs: self.gc_runs,
            gc_pause_ns: self.gc_pause_ns,
        }
    }

    /// Mark-and-rebuild garbage collection.
    ///
    /// Keeps exactly the nodes reachable from `roots` (plus every root
    /// registered via [`register_root`](Self::register_root), which is
    /// remapped in place), compacts the arena, and returns the ids of the
    /// roots in the new arena (same order as the input). All previously
    /// held [`NodeId`]s — other than the returned ones, the re-registered
    /// ones, and the terminals — are invalidated. In `check` builds the
    /// manager moves to a fresh brand epoch, so dereferencing a stale
    /// pre-gc id panics instead of denoting the wrong function.
    pub fn gc(&mut self, roots: &[NodeId]) -> Vec<NodeId> {
        let pause = std::time::Instant::now();
        for &r in roots {
            self.check_brand(r);
        }
        let registered = std::mem::take(&mut self.registered_roots);
        #[cfg(feature = "check")]
        {
            self.epoch = fresh_epoch();
            // Everything surviving this gc is re-minted under the new
            // epoch, so even a snapshot-restored manager is strict now.
            self.open = false;
        }
        let brand_new = {
            #[cfg(feature = "check")]
            {
                let epoch = self.epoch;
                move |raw: u32| NodeId(raw, epoch)
            }
            #[cfg(not(feature = "check"))]
            {
                NodeId
            }
        };
        // Old-arena index → new-arena index; dense, so the remap is one
        // flat array instead of a hash map on the collection hot path.
        const UNMAPPED: u32 = u32::MAX;
        let mut remap: Vec<u32> = vec![UNMAPPED; self.nodes.len()];
        remap[FALSE.0 as usize] = FALSE.0;
        remap[TRUE.0 as usize] = TRUE.0;
        let mut new_nodes: Vec<Node> = Vec::with_capacity(2 + roots.len());
        new_nodes.push(self.nodes[0]);
        new_nodes.push(self.nodes[1]);
        let mut new_unique = UniqueTable::with_capacity_log2(UniqueTable::capacity_log2_for(0));

        // Iterative post-order copy, registered roots after the explicit
        // ones so they can be split back off the shared result vector.
        let mut result = Vec::with_capacity(roots.len() + registered.len());
        for &root in roots.iter().chain(registered.iter()) {
            let mut stack = vec![(root.0, false)];
            while let Some((n, expanded)) = stack.pop() {
                if remap[n as usize] != UNMAPPED {
                    continue;
                }
                let node = self.nodes[n as usize];
                if expanded {
                    let lo = brand_new(remap[node.lo.0 as usize]);
                    let hi = brand_new(remap[node.hi.0 as usize]);
                    let id = match new_unique.find_quiet(&new_nodes, node.var, lo.0, hi.0) {
                        Some(id) => id,
                        None => {
                            if new_unique.should_grow() {
                                new_unique.grow(&mut new_nodes);
                            }
                            let id = new_nodes.len() as u32;
                            new_nodes.push(Node {
                                var: node.var,
                                lo,
                                hi,
                                next: NIL,
                            });
                            new_unique.insert(&mut new_nodes, id);
                            id
                        }
                    };
                    remap[n as usize] = id;
                } else {
                    stack.push((n, true));
                    stack.push((node.lo.0, false));
                    stack.push((node.hi.0, false));
                }
            }
            result.push(brand_new(remap[root.0 as usize]));
        }
        // Post-compaction geometry is the deterministic function of the
        // live count, so an uninterrupted run and a snapshot-restored one
        // end up with bit-identical tables.
        let cap = UniqueTable::capacity_log2_for(new_unique.len());
        if cap != new_unique.capacity_log2() {
            new_unique.rebuild(&mut new_nodes, cap);
        }
        self.nodes = new_nodes;
        self.unique = new_unique;
        self.rebuild_var_lists();
        self.clear_caches();
        self.registered_roots = result.split_off(roots.len());
        self.gc_runs += 1;
        self.gc_pause_ns += pause.elapsed().as_nanos() as u64;
        result
    }

    /// Registers `id` as a long-lived root: every future
    /// [`gc`](Self::gc) keeps it alive and remaps the registered entry in
    /// place, so the current value (see
    /// [`registered_roots`](Self::registered_roots)) stays valid across
    /// compactions. Stored ids that are *not* re-read after gc still go
    /// stale — registration protects the node, not old copies of the id.
    /// Duplicate registrations are ignored.
    pub fn register_root(&mut self, id: NodeId) {
        self.check_brand(id);
        if !self.is_const(id) && !self.registered_roots.contains(&id) {
            self.registered_roots.push(id);
        }
    }

    /// Removes `id` from the registered-root set (a no-op if absent).
    pub fn unregister_root(&mut self, id: NodeId) {
        self.registered_roots.retain(|&r| r != id);
    }

    /// The currently registered long-lived roots, remapped by every
    /// [`gc`](Self::gc), in registration order.
    pub fn registered_roots(&self) -> &[NodeId] {
        &self.registered_roots
    }

    // ---------------------------------------------------------------------
    // Integrity audit
    // ---------------------------------------------------------------------

    /// Audits the whole manager against its structural invariants.
    ///
    /// Checks, in order:
    ///
    /// 1. the two terminal slots are well-formed and no interior node uses
    ///    the terminal sentinel variable;
    /// 2. the `Var` ↔ level permutation tables are mutually inverse
    ///    bijections;
    /// 3. every interior node has in-arena children, a strict reduction
    ///    (`lo != hi`), a valid variable index, and children strictly below
    ///    it under the *current* level permutation;
    /// 4. the unique table and the interior arena are in bijection (each
    ///    node registered under exactly its `(var, lo, hi)` key — the
    ///    canonicity that makes `NodeId` equality mean function equality);
    /// 5. every operation-cache entry references only in-arena nodes and
    ///    in-range variables (caches are cleared on [`BddManager::gc`] and
    ///    level swaps, so anything cached must point into the live arena).
    ///
    /// Returns all violations found, or `Ok(())`. Runs in `O(nodes +
    /// cache entries)`; intended for debug assertions and the workspace
    /// `bddcf check` analysis pass, not per-operation use.
    pub fn check_integrity(&self) -> Result<(), Vec<IntegrityViolation>> {
        use IntegrityViolation as V;
        let mut out = Vec::new();
        let len = self.nodes.len();
        let num_vars = self.num_vars() as u32;

        // 1. Terminals.
        if len < 2 {
            out.push(V::MalformedTerminal { id: FALSE });
            return Err(out);
        }
        for id in [FALSE, TRUE] {
            if self.nodes[id.0 as usize].var != TERMINAL_VAR {
                out.push(V::MalformedTerminal { id });
            }
        }

        // 2. Permutation tables.
        if self.var_at_level.len() != self.level_of_var.len() {
            out.push(V::BrokenPermutation { level: 0 });
        } else {
            for (lvl, &v) in self.var_at_level.iter().enumerate() {
                if v.0 >= num_vars || self.level_of_var[v.0 as usize] != lvl as u32 {
                    out.push(V::BrokenPermutation { level: lvl as u32 });
                }
            }
        }

        // 3. Interior nodes.
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            let id = self.brand(i as u32);
            if node.var == TERMINAL_VAR {
                out.push(V::MalformedTerminal { id });
                continue;
            }
            if node.var >= num_vars {
                out.push(V::InvalidVariable { id, var: node.var });
                continue;
            }
            let mut dangling = false;
            for child in [node.lo, node.hi] {
                if child.0 as usize >= len {
                    out.push(V::DanglingChild { id, child });
                    dangling = true;
                }
            }
            if dangling {
                continue;
            }
            if node.lo == node.hi {
                out.push(V::RedundantNode { id });
            }
            let level = self.level_of_var[node.var as usize];
            for child in [node.lo, node.hi] {
                if self.level_of_node(child) <= level {
                    out.push(V::LevelInversion { id, child });
                }
            }
        }

        // 4. Unique table ↔ arena bijection.
        //
        // Forward: every well-formed interior node must be found under its
        // own `(var, lo, hi)` key (`find_quiet` tolerates corrupted chains
        // — a defect there reads as "not found" and is reported by the
        // reverse walk below).
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            let id = self.brand(i as u32);
            if node.var == TERMINAL_VAR || node.lo.0 as usize >= len || node.hi.0 as usize >= len {
                continue; // already reported above
            }
            match self
                .unique
                .find_quiet(&self.nodes, node.var, node.lo.0, node.hi.0)
            {
                Some(mapped) if mapped as usize == i => {}
                Some(mapped) => out.push(V::DuplicateNode {
                    id,
                    canonical: self.brand(mapped),
                }),
                None => out.push(V::UnregisteredNode { id }),
            }
        }
        // Reverse: walk every bucket chain. Each link must be a distinct
        // in-arena interior node sitting in its key's home bucket, and
        // chains must terminate — an out-of-range link, a terminal, a
        // revisit, or a cycle is a stale entry.
        let mut chained = vec![false; len];
        for (bucket, head) in self.unique.bucket_heads() {
            let mut cur = head;
            let mut steps = 0usize;
            while cur != NIL {
                if (cur as usize) >= len || cur < 2 || steps > len {
                    out.push(V::StaleUniqueEntry {
                        id: NodeId::unbranded(cur),
                    });
                    break;
                }
                let node = &self.nodes[cur as usize];
                if chained[cur as usize]
                    || self.unique.home_bucket(node.var, node.lo.0, node.hi.0) != bucket
                {
                    out.push(V::StaleUniqueEntry {
                        id: self.brand(cur),
                    });
                    break;
                }
                chained[cur as usize] = true;
                cur = node.next;
                steps += 1;
            }
        }

        // 5. Operation caches reference only live nodes (only entries of
        // the current generation are observable; anything older is dead by
        // construction).
        let live = |raw: u32| (raw as usize) < len;
        for (f, g, h, r) in self.ite_cache.live_entries() {
            if ![f, g, h, r].into_iter().all(live) {
                out.push(V::StaleCacheEntry { cache: "ite" });
            }
        }
        for (f, c, _nil, r) in self.exists_cache.live_entries() {
            if ![f, c, r].into_iter().all(live) {
                out.push(V::StaleCacheEntry { cache: "exists" });
            }
        }
        for (f, g, c, r) in self.and_exists_cache.live_entries() {
            if ![f, g, c, r].into_iter().all(live) {
                out.push(V::StaleCacheEntry {
                    cache: "and_exists",
                });
            }
        }
        for (f, var, g, r) in self.compose_cache.live_entries() {
            if ![f, g, r].into_iter().all(live) || var >= num_vars {
                out.push(V::StaleCacheEntry { cache: "compose" });
            }
        }

        if out.is_empty() {
            Ok(())
        } else {
            Err(out)
        }
    }

    /// Deliberately violates one manager invariant. Test-only hook used to
    /// prove that [`BddManager::check_integrity`] (and the `bddcf check`
    /// pass built on it) actually detects corruption; never call this
    /// outside tests.
    #[doc(hidden)]
    pub fn corrupt_for_testing(&mut self, kind: TestCorruption) {
        match kind {
            TestCorruption::RedundantNode => {
                let i = self.nodes.len() - 1;
                assert!(i >= 2, "corrupting needs at least one interior node");
                self.nodes[i].hi = self.nodes[i].lo;
            }
            TestCorruption::UnregisterNode => {
                assert!(self.nodes.len() > 2, "corrupting needs an interior node");
                let last = (self.nodes.len() - 1) as u32;
                self.unique.unlink(&mut self.nodes, last);
            }
            TestCorruption::DanglingCacheEntry => {
                let dangling = self.nodes.len() as u32;
                self.ite_cache.put(FALSE.0, TRUE.0, FALSE.0, dangling);
            }
            TestCorruption::DanglingExistsEntry => {
                let dangling = self.nodes.len() as u32;
                self.exists_cache.put(FALSE.0, TRUE.0, NIL, dangling);
            }
            TestCorruption::DanglingAndExistsEntry => {
                let dangling = self.nodes.len() as u32;
                self.and_exists_cache.put(FALSE.0, TRUE.0, TRUE.0, dangling);
            }
            TestCorruption::DanglingComposeEntry => {
                let dangling = self.nodes.len() as u32;
                self.compose_cache.put(FALSE.0, 0, TRUE.0, dangling);
            }
            TestCorruption::StaleUniqueEntry => {
                let dangling = self.nodes.len() as u32;
                self.unique
                    .corrupt_chain_for_testing(&mut self.nodes, dangling);
            }
            TestCorruption::PermutationClash => {
                assert!(self.num_vars() >= 2, "corrupting needs two variables");
                self.level_of_var[0] = self.level_of_var[1];
            }
        }
    }
}

/// A binary Boolean connective, for [`BddManager::apply`] /
/// [`BddManager::try_apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Equivalence (XNOR).
    Iff,
    /// Implication.
    Implies,
}

/// Why [`BddManager::try_set_order`] rejected an order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderError {
    /// The order does not list exactly the manager's variables.
    WrongLength {
        /// Number of variables the manager has.
        expected: usize,
        /// Number of entries in the rejected order.
        got: usize,
    },
    /// A variable appears twice (or is out of range).
    DuplicateVar {
        /// The offending variable.
        var: Var,
    },
    /// The manager already holds interior nodes; installing a new order
    /// would silently break their level invariant.
    NonEmptyManager {
        /// How many interior nodes exist.
        interior_nodes: usize,
    },
}

impl fmt::Display for OrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OrderError::WrongLength { expected, got } => {
                write!(f, "order lists {got} variables, manager has {expected}")
            }
            OrderError::DuplicateVar { var } => {
                write!(f, "duplicate or out-of-range variable {var:?} in order")
            }
            OrderError::NonEmptyManager { interior_nodes } => write!(
                f,
                "cannot re-order a manager holding {interior_nodes} interior nodes; \
                 use the reorder module"
            ),
        }
    }
}

impl std::error::Error for OrderError {}

/// Which invariant [`BddManager::corrupt_for_testing`] should break.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestCorruption {
    /// Make the newest interior node unreduced (`lo == hi`).
    RedundantNode,
    /// Drop the newest interior node's unique-table registration.
    UnregisterNode,
    /// Insert an `ite`-cache entry whose result id is out of the arena.
    DanglingCacheEntry,
    /// Insert an `exists`-cache entry whose result id is out of the arena.
    DanglingExistsEntry,
    /// Insert an `and_exists`-cache entry whose result id is out of the
    /// arena.
    DanglingAndExistsEntry,
    /// Insert a `compose`-cache entry whose result id is out of the arena.
    DanglingComposeEntry,
    /// Insert a unique-table entry that maps to an out-of-arena node.
    StaleUniqueEntry,
    /// Make two variables claim the same level.
    PermutationClash,
}

/// One structural-invariant violation found by
/// [`BddManager::check_integrity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityViolation {
    /// A terminal slot is malformed, or an interior node uses the terminal
    /// sentinel variable.
    MalformedTerminal {
        /// The offending node.
        id: NodeId,
    },
    /// `var_at_level` and `level_of_var` disagree at this level.
    BrokenPermutation {
        /// The level at which the tables disagree.
        level: u32,
    },
    /// An interior node's variable index is out of range.
    InvalidVariable {
        /// The offending node.
        id: NodeId,
        /// Its out-of-range variable index.
        var: u32,
    },
    /// A child id points outside the arena.
    DanglingChild {
        /// The parent node.
        id: NodeId,
        /// The out-of-arena child id.
        child: NodeId,
    },
    /// An interior node with `lo == hi` (the reduction rule forbids these).
    RedundantNode {
        /// The offending node.
        id: NodeId,
    },
    /// A child's level is not strictly below its parent's under the current
    /// variable order.
    LevelInversion {
        /// The parent node.
        id: NodeId,
        /// The child whose level is not strictly below the parent's.
        child: NodeId,
    },
    /// Two arena nodes share one `(var, lo, hi)` triple; `canonical` is the
    /// one the unique table maps the key to.
    DuplicateNode {
        /// The non-canonical duplicate.
        id: NodeId,
        /// The node the unique table considers canonical.
        canonical: NodeId,
    },
    /// An interior node missing from the unique table.
    UnregisteredNode {
        /// The offending node.
        id: NodeId,
    },
    /// A unique-table entry pointing at a nonexistent or mismatched node.
    StaleUniqueEntry {
        /// The target of the stale entry.
        id: NodeId,
    },
    /// An operation-cache entry referencing an out-of-arena node.
    StaleCacheEntry {
        /// Which cache (`"ite"`, `"exists"`, `"and_exists"`, `"compose"`).
        cache: &'static str,
    },
}

impl fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use IntegrityViolation as V;
        match *self {
            V::MalformedTerminal { id } => write!(f, "malformed terminal slot {id:?}"),
            V::BrokenPermutation { level } => {
                write!(f, "var/level permutation tables disagree at level {level}")
            }
            V::InvalidVariable { id, var } => {
                write!(f, "node {id:?} has out-of-range variable x{var}")
            }
            V::DanglingChild { id, child } => {
                write!(f, "node {id:?} has out-of-arena child {child:?}")
            }
            V::RedundantNode { id } => write!(f, "node {id:?} is unreduced (lo == hi)"),
            V::LevelInversion { id, child } => {
                write!(f, "child {child:?} of {id:?} is not strictly below it")
            }
            V::DuplicateNode { id, canonical } => {
                write!(f, "node {id:?} duplicates canonical node {canonical:?}")
            }
            V::UnregisteredNode { id } => {
                write!(f, "node {id:?} is missing from the unique table")
            }
            V::StaleUniqueEntry { id } => {
                write!(f, "unique-table entry maps to stale node {id:?}")
            }
            V::StaleCacheEntry { cache } => {
                write!(f, "{cache} cache entry references a non-live node")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::CancelToken;

    fn setup3() -> (BddManager, NodeId, NodeId, NodeId) {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let c = mgr.var(Var(2));
        (mgr, a, b, c)
    }

    #[test]
    fn terminals_are_fixed() {
        let mgr = BddManager::new(2);
        assert!(mgr.is_const(FALSE));
        assert!(mgr.is_const(TRUE));
        assert_ne!(FALSE, TRUE);
        assert_eq!(mgr.level_of_node(TRUE), TERMINAL_LEVEL);
    }

    #[test]
    fn mk_is_canonical() {
        let (mut mgr, _, _, _) = setup3();
        let n1 = mgr.mk(Var(1), FALSE, TRUE);
        let n2 = mgr.mk(Var(1), FALSE, TRUE);
        assert_eq!(n1, n2);
        assert_eq!(mgr.mk(Var(0), n1, n1), n1, "redundant test is removed");
    }

    #[test]
    fn basic_boolean_algebra() {
        let (mut mgr, a, b, _) = setup3();
        let ab = mgr.and(a, b);
        let ba = mgr.and(b, a);
        assert_eq!(ab, ba, "AND is commutative by canonicity");
        let na = mgr.not(a);
        assert_eq!(mgr.and(a, na), FALSE);
        assert_eq!(mgr.or(a, na), TRUE);
        let nn = mgr.not(na);
        assert_eq!(nn, a, "double negation");
    }

    #[test]
    fn xor_iff_implies() {
        let (mut mgr, a, b, _) = setup3();
        let x = mgr.xor(a, b);
        let e = mgr.iff(a, b);
        let nx = mgr.not(x);
        assert_eq!(e, nx);
        let imp = mgr.implies(a, b);
        let na = mgr.not(a);
        let alt = mgr.or(na, b);
        assert_eq!(imp, alt);
    }

    #[test]
    fn de_morgan() {
        let (mut mgr, a, b, c) = setup3();
        let abc = mgr.and_many(&[a, b, c]);
        let left = mgr.not(abc);
        let na = mgr.not(a);
        let nb = mgr.not(b);
        let nc = mgr.not(c);
        let right = mgr.or_many(&[na, nb, nc]);
        assert_eq!(left, right);
    }

    #[test]
    fn eval_walks_by_variable_id() {
        let (mut mgr, a, b, c) = setup3();
        let f = {
            let t = mgr.and(a, b);
            mgr.or(t, c)
        };
        assert!(mgr.eval(f, &[true, true, false]));
        assert!(mgr.eval(f, &[false, false, true]));
        assert!(!mgr.eval(f, &[true, false, false]));
    }

    #[test]
    fn sat_count_matches_truth_table() {
        let (mut mgr, a, b, c) = setup3();
        let t = mgr.and(a, b);
        let f = mgr.or(t, c);
        // Brute force.
        let mut count = 0u128;
        for bits in 0..8u32 {
            let assignment = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            if mgr.eval(f, &assignment) {
                count += 1;
            }
        }
        assert_eq!(mgr.sat_count(f), count);
        assert_eq!(mgr.sat_count(TRUE), 8);
        assert_eq!(mgr.sat_count(FALSE), 0);
    }

    #[test]
    fn sat_count_of_single_literal() {
        let (mut mgr, a, _, _) = setup3();
        assert_eq!(mgr.sat_count(a), 4);
        let na = mgr.not(a);
        assert_eq!(mgr.sat_count(na), 4);
    }

    #[test]
    fn cube_builds_conjunction() {
        let (mut mgr, a, b, _) = setup3();
        let cube = mgr.cube(&[(Var(1), true), (Var(0), true)]);
        let ab = mgr.and(a, b);
        assert_eq!(cube, ab);
        assert_eq!(mgr.cube(&[]), TRUE);
        assert_eq!(
            mgr.cube(&[(Var(0), true), (Var(0), false)]),
            FALSE,
            "contradictory cube"
        );
    }

    #[test]
    fn restrict_cofactors() {
        let (mut mgr, a, b, c) = setup3();
        let t = mgr.and(a, b);
        let f = mgr.or(t, c);
        let f_a1 = mgr.restrict(f, Var(0), true);
        let expect = mgr.or(b, c);
        assert_eq!(f_a1, expect);
        let f_a0 = mgr.restrict(f, Var(0), false);
        assert_eq!(f_a0, c);
        // Restricting a variable not in support is identity.
        let g = mgr.and(a, b);
        assert_eq!(mgr.restrict(g, Var(2), true), g);
    }

    #[test]
    fn restrict_cube_applies_all() {
        let (mut mgr, a, b, c) = setup3();
        let t = mgr.and(a, b);
        let f = mgr.or(t, c);
        let r = mgr.restrict_cube(f, &[(Var(0), true), (Var(1), true)]);
        assert_eq!(r, TRUE);
    }

    #[test]
    fn compose_substitutes() {
        let (mut mgr, a, b, c) = setup3();
        // f = a XOR b; f[b := c] = a XOR c
        let f = mgr.xor(a, b);
        let composed = mgr.compose(f, Var(1), c);
        let expect = mgr.xor(a, c);
        assert_eq!(composed, expect);
        // Compose with a function above in the order.
        let g = mgr.xor(b, c);
        let composed = mgr.compose(g, Var(2), a);
        let expect = mgr.xor(b, a);
        assert_eq!(composed, expect);
    }

    #[test]
    fn exists_and_forall() {
        let (mut mgr, a, b, c) = setup3();
        let t = mgr.and(a, b);
        let f = mgr.or(t, c);
        let e = mgr.exists(f, &[Var(2)]);
        assert_eq!(e, TRUE, "∃c. (ab ∨ c) = 1");
        let u = mgr.forall(f, &[Var(2)]);
        assert_eq!(u, t, "∀c. (ab ∨ c) = ab");
        let e2 = mgr.exists(f, &[Var(0), Var(2)]);
        assert_eq!(e2, TRUE);
        // Quantifying a variable outside the support is identity.
        let g = mgr.and(a, b);
        assert_eq!(mgr.exists(g, &[Var(2)]), g);
    }

    #[test]
    fn restrict_care_agrees_on_the_care_set() {
        let (mut mgr, a, b, c) = setup3();
        let candidates = [a, b, mgr.xor(a, c), mgr.and(b, c), mgr.or(a, b)];
        let cares = [TRUE, a, mgr.or(b, c), mgr.xor(a, b), mgr.and(a, c)];
        for &f in &candidates {
            for &care in &cares {
                let r = mgr.restrict_care(f, care);
                let lhs = mgr.and(r, care);
                let rhs = mgr.and(f, care);
                assert_eq!(lhs, rhs, "restrict_care must agree on the care set");
            }
        }
    }

    #[test]
    fn restrict_care_can_shrink() {
        let (mut mgr, a, b, c) = setup3();
        // f = a XOR b XOR c (3 internal nodes per level, 7 total);
        // care = a: on the care set f|a=1 = ¬(b XOR c).
        let ab = mgr.xor(a, b);
        let f = mgr.xor(ab, c);
        let r = mgr.restrict_care(f, a);
        assert!(
            mgr.node_count(r) < mgr.node_count(f),
            "restrict should drop the a-level test"
        );
        assert_eq!(mgr.restrict_care(f, FALSE), FALSE);
        assert_eq!(mgr.restrict_care(f, TRUE), f);
    }

    #[test]
    fn and_exists_equals_and_then_exists() {
        let (mut mgr, a, b, c) = setup3();
        let candidates = [
            a,
            b,
            c,
            mgr.xor(a, b),
            mgr.and(b, c),
            mgr.or(a, c),
            TRUE,
            FALSE,
        ];
        let cube_bc = mgr.cube(&[(Var(1), true), (Var(2), true)]);
        let cube_a = mgr.cube(&[(Var(0), true)]);
        for &f in &candidates {
            for &g in &candidates {
                for &cube in &[cube_bc, cube_a, TRUE] {
                    let fused = mgr.and_exists(f, g, cube);
                    let conj = mgr.and(f, g);
                    let plain = mgr.exists_cube(conj, cube);
                    assert_eq!(fused, plain, "f={f:?} g={g:?} cube={cube:?}");
                }
            }
        }
    }

    #[test]
    fn support_is_sorted_by_level() {
        let (mut mgr, a, _, c) = setup3();
        let f = mgr.xor(a, c);
        assert_eq!(mgr.support(f), vec![Var(0), Var(2)]);
        assert_eq!(mgr.support(TRUE), vec![]);
    }

    #[test]
    fn from_minterms_small() {
        let mut mgr = BddManager::new(3);
        // Majority of (v0, v1, v2): minterms 3,5,6,7 with bit j = value of vars[j].
        let f = mgr.from_minterms(&[Var(0), Var(1), Var(2)], &[0b011, 0b101, 0b110, 0b111]);
        for bits in 0..8u32 {
            let assignment = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expect = assignment.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(mgr.eval(f, &assignment), expect, "bits={bits:03b}");
        }
        assert_eq!(mgr.from_minterms(&[Var(0)], &[]), FALSE);
    }

    #[test]
    fn from_minterms_matches_cube_or() {
        let mut mgr = BddManager::new(5);
        let vars = [Var(0), Var(1), Var(2), Var(3), Var(4)];
        let minterms = [0b00001u64, 0b10101, 0b11111, 0b01110];
        let fast = mgr.from_minterms(&vars, &minterms);
        let mut slow = FALSE;
        for &m in &minterms {
            let lits: Vec<(Var, bool)> = (0..5).map(|j| (vars[j], m >> j & 1 == 1)).collect();
            let cube = mgr.cube(&lits);
            slow = mgr.or(slow, cube);
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn one_sat_finds_model() {
        let (mut mgr, a, b, _) = setup3();
        let nb = mgr.not(b);
        let f = mgr.and(a, nb);
        let model = mgr.one_sat(f).unwrap();
        let mut assignment = [false; 3];
        for (v, val) in model {
            assignment[v.0 as usize] = val;
        }
        assert!(mgr.eval(f, &assignment));
        assert!(mgr.one_sat(FALSE).is_none());
    }

    #[test]
    fn gc_preserves_functions_and_compacts() {
        let (mut mgr, a, b, c) = setup3();
        let keep = {
            let t = mgr.xor(a, b);
            mgr.or(t, c)
        };
        // Create garbage.
        for _ in 0..10 {
            let g = mgr.and(a, c);
            let _ = mgr.xor(g, b);
        }
        let before_eval: Vec<bool> = (0..8u32)
            .map(|bits| mgr.eval(keep, &[(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0]))
            .collect();
        let arena_before = mgr.arena_len();
        let roots = mgr.gc(&[keep]);
        assert!(mgr.arena_len() <= arena_before);
        let after_eval: Vec<bool> = (0..8u32)
            .map(|bits| {
                mgr.eval(
                    roots[0],
                    &[(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0],
                )
            })
            .collect();
        assert_eq!(before_eval, after_eval);
    }

    #[test]
    fn gc_keeps_shared_structure_shared() {
        let (mut mgr, a, b, c) = setup3();
        let f = mgr.and(b, c);
        let g = mgr.or(a, f);
        let roots = mgr.gc(&[f, g]);
        // f is a sub-function of g; after gc the shared node count must not
        // exceed the sum of individual counts and f must still be g's child.
        assert_eq!(
            mgr.node_count_multi(&roots),
            mgr.node_count(roots[1]),
            "f shares all nodes with g"
        );
    }

    #[test]
    fn node_count_counts_distinct_nonterminals() {
        let (mut mgr, a, b, _) = setup3();
        assert_eq!(mgr.node_count(a), 1);
        let f = mgr.xor(a, b);
        assert_eq!(mgr.node_count(f), 3); // one v0 node, two v1 nodes
        assert_eq!(mgr.node_count(TRUE), 0);
    }

    #[test]
    fn add_var_extends_order_at_bottom() {
        let mut mgr = BddManager::new(1);
        let v1 = mgr.add_var();
        assert_eq!(v1, Var(1));
        assert_eq!(mgr.level_of(v1), 1);
        assert_eq!(mgr.num_vars(), 2);
        let x0 = mgr.var(Var(0));
        let x1 = mgr.var(v1);
        let f = mgr.and(x0, x1);
        assert_eq!(mgr.sat_count(f), 1);
    }

    #[test]
    fn set_order_affects_structure() {
        let mut mgr = BddManager::new(4);
        mgr.set_order(&[Var(3), Var(1), Var(2), Var(0)]);
        assert_eq!(mgr.level_of(Var(3)), 0);
        assert_eq!(mgr.var_at(3), Var(0));
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(3));
        let f = mgr.and(a, b);
        // Top variable of f must be Var(3) under the new order.
        assert_eq!(mgr.var_of(f), Var(3));
    }

    #[test]
    #[should_panic(expected = "order must cover all variables")]
    fn set_order_rejects_wrong_length() {
        let mut mgr = BddManager::new(3);
        mgr.set_order(&[Var(0), Var(1)]);
    }

    #[test]
    fn descendants_excludes_terminals() {
        let (mut mgr, a, b, _) = setup3();
        let f = mgr.or(a, b);
        let d = mgr.descendants(&[f]);
        assert_eq!(d.len(), 2);
        assert!(!d.contains(&TRUE));
    }

    fn busy_manager() -> (BddManager, NodeId) {
        let (mut mgr, a, b, c) = setup3();
        let ab = mgr.and(a, b);
        let f = mgr.xor(ab, c);
        let g = mgr.exists(f, &[Var(1)]);
        let h = mgr.or(f, g);
        (mgr, h)
    }

    #[test]
    fn node_limit_fails_cleanly_and_preserves_integrity() {
        let mut mgr = BddManager::new(8);
        let vars: Vec<NodeId> = (0..8).map(|i| mgr.var(Var(i))).collect();
        let quota = mgr.arena_len(); // no room for any new node
        mgr.set_budget(Budget::default().with_node_limit(quota));
        let mut acc = Ok(TRUE);
        for &v in &vars {
            acc = mgr.try_and(acc.unwrap_or(TRUE), v);
            if acc.is_err() {
                break;
            }
        }
        assert_eq!(acc, Err(Error::NodeLimit { limit: quota }));
        mgr.check_integrity()
            .expect("budget failure leaves the manager sound");
        // Infallible ops still succeed with the budget installed.
        let all = mgr.and_many(&vars);
        assert_ne!(all, FALSE);
        // And after removing the budget the same try-op succeeds.
        let _ = mgr.take_budget();
        let all2 = mgr.try_and_many(&vars).expect("unlimited again");
        assert_eq!(all, all2);
    }

    #[test]
    fn step_limit_trips_and_counter_is_deterministic() {
        let build = |limit: Option<u64>| {
            let mut mgr = BddManager::new(12);
            if let Some(l) = limit {
                mgr.set_budget(Budget::default().with_step_limit(l));
            }
            let vars: Vec<NodeId> = (0..12).map(|i| mgr.var(Var(i))).collect();
            let mut acc = TRUE;
            for pair in vars.chunks(2) {
                let x = match mgr.try_xor(pair[0], pair[1]) {
                    Ok(x) => x,
                    Err(e) => return (mgr.steps(), Err(e)),
                };
                acc = match mgr.try_and(acc, x) {
                    Ok(a) => a,
                    Err(e) => return (mgr.steps(), Err(e)),
                };
            }
            (mgr.steps(), Ok(acc))
        };
        let (total, full) = build(None);
        assert!(full.is_ok());
        assert!(total > 4, "workload must charge steps");
        let limit = total / 2;
        let (_, limited) = build(Some(limit));
        assert_eq!(limited, Err(Error::StepLimit { limit }));
        // Determinism: the unlimited run charges the same count every time.
        assert_eq!(build(None).0, total);
    }

    #[test]
    fn cancel_at_step_mimics_token_cancellation() {
        let token = CancelToken::new();
        let mut mgr = BddManager::new(10);
        mgr.set_budget(
            Budget::default()
                .with_cancel(token.clone())
                .with_cancel_at_step(5),
        );
        let vars: Vec<NodeId> = (0..10).map(|i| mgr.var(Var(i))).collect();
        let r = vars.iter().try_fold(TRUE, |acc, &v| mgr.try_and(acc, v));
        assert_eq!(r, Err(Error::Cancelled));
        assert!(token.is_cancelled(), "hook fires the shared token");
        mgr.check_integrity()
            .expect("cancellation leaves no damage");
    }

    #[test]
    fn try_set_order_rejects_bad_orders_without_change() {
        let mut mgr = BddManager::new(3);
        assert_eq!(
            mgr.try_set_order(&[Var(0), Var(1)]),
            Err(OrderError::WrongLength {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            mgr.try_set_order(&[Var(0), Var(1), Var(1)]),
            Err(OrderError::DuplicateVar { var: Var(1) })
        );
        let _ = mgr.var(Var(0));
        assert_eq!(
            mgr.try_set_order(&[Var(2), Var(1), Var(0)]),
            Err(OrderError::NonEmptyManager { interior_nodes: 1 })
        );
        // Original order untouched by the failed attempts.
        assert_eq!(mgr.order(), &[Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn gc_empties_every_operation_cache() {
        let (mut mgr, h) = busy_manager();
        let _ = mgr.compose(h, Var(0), h);
        let cube = mgr.cube(&[(Var(1), true)]);
        let _ = mgr.and_exists(h, h, cube);
        assert!(mgr.cache_entry_count() > 0, "workload must populate caches");
        let _ = mgr.gc(&[h]);
        assert_eq!(
            mgr.cache_entry_count(),
            0,
            "gc must drop all four op caches"
        );
        mgr.check_integrity().expect("post-gc manager is sound");
    }

    #[test]
    fn apply_matches_dedicated_ops() {
        let (mut mgr, a, b, _) = setup3();
        for (op, expect) in [
            (BinOp::And, mgr.and(a, b)),
            (BinOp::Or, mgr.or(a, b)),
            (BinOp::Xor, mgr.xor(a, b)),
            (BinOp::Iff, mgr.iff(a, b)),
            (BinOp::Implies, mgr.implies(a, b)),
        ] {
            assert_eq!(mgr.apply(op, a, b), expect, "{op:?}");
        }
    }

    #[test]
    fn integrity_passes_on_healthy_manager() {
        let (mgr, _) = busy_manager();
        mgr.check_integrity().expect("fresh manager is sound");
    }

    #[test]
    fn integrity_passes_after_gc_and_reorder() {
        let (mut mgr, h) = busy_manager();
        let roots = mgr.gc(&[h]);
        mgr.check_integrity().expect("post-gc manager is sound");
        let roots = mgr.swap_adjacent(0, &roots);
        mgr.check_integrity().expect("post-swap manager is sound");
        let not_h = mgr.not(roots[0]);
        assert_ne!(not_h, roots[0]);
        mgr.check_integrity()
            .expect("post-reorder manager is sound");
    }

    #[test]
    fn integrity_detects_each_seeded_corruption() {
        for kind in [
            TestCorruption::RedundantNode,
            TestCorruption::UnregisterNode,
            TestCorruption::DanglingCacheEntry,
            TestCorruption::DanglingExistsEntry,
            TestCorruption::DanglingAndExistsEntry,
            TestCorruption::DanglingComposeEntry,
            TestCorruption::StaleUniqueEntry,
            TestCorruption::PermutationClash,
        ] {
            let (mut mgr, _) = busy_manager();
            mgr.corrupt_for_testing(kind);
            let violations = mgr
                .check_integrity()
                .expect_err("corruption must be detected");
            assert!(!violations.is_empty(), "{kind:?} produced no violations");
            let matched = violations.iter().any(|v| {
                matches!(
                    (kind, v),
                    (
                        TestCorruption::RedundantNode,
                        IntegrityViolation::RedundantNode { .. }
                    ) | (
                        TestCorruption::UnregisterNode,
                        IntegrityViolation::UnregisteredNode { .. }
                    ) | (
                        TestCorruption::DanglingCacheEntry,
                        IntegrityViolation::StaleCacheEntry { cache: "ite" }
                    ) | (
                        TestCorruption::DanglingExistsEntry,
                        IntegrityViolation::StaleCacheEntry { cache: "exists" }
                    ) | (
                        TestCorruption::DanglingAndExistsEntry,
                        IntegrityViolation::StaleCacheEntry {
                            cache: "and_exists"
                        }
                    ) | (
                        TestCorruption::DanglingComposeEntry,
                        IntegrityViolation::StaleCacheEntry { cache: "compose" }
                    ) | (
                        TestCorruption::StaleUniqueEntry,
                        IntegrityViolation::StaleUniqueEntry { .. }
                    ) | (
                        TestCorruption::PermutationClash,
                        IntegrityViolation::BrokenPermutation { .. }
                    )
                )
            });
            assert!(matched, "{kind:?} not matched in {violations:?}");
        }
    }

    #[test]
    fn registered_roots_survive_gc_and_are_remapped() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let keep = mgr.and(a, b);
        mgr.register_root(keep);
        // Garbage that would otherwise pin `keep`'s old arena position.
        let c = mgr.var(Var(2));
        let _junk = mgr.xor(a, c);
        let explicit = mgr.gc(&[]);
        assert!(explicit.is_empty());
        let &[kept] = mgr.registered_roots() else {
            panic!("exactly one registered root expected");
        };
        // The remapped root still denotes a ∧ b.
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        assert_eq!(mgr.and(a, b), kept);
        mgr.unregister_root(kept);
        assert!(mgr.registered_roots().is_empty());
    }

    #[test]
    fn register_root_ignores_terminals_and_duplicates() {
        let mut mgr = BddManager::new(1);
        mgr.register_root(TRUE);
        mgr.register_root(FALSE);
        let v = mgr.var(Var(0));
        mgr.register_root(v);
        mgr.register_root(v);
        assert_eq!(mgr.registered_roots(), &[v]);
    }

    #[cfg(feature = "check")]
    #[test]
    #[should_panic(expected = "minted by a different manager")]
    fn brand_check_catches_cross_manager_misuse() {
        let mut a = BddManager::new(2);
        let mut b = BddManager::new(2);
        let in_a = a.var(Var(0));
        let _in_b = b.var(Var(1)); // b's arena is non-trivial too
        let _ = b.lo(in_a); // `in_a` means nothing to `b`
    }

    #[cfg(feature = "check")]
    #[test]
    #[should_panic(expected = "minted by a different manager")]
    fn brand_check_catches_stale_post_gc_id() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let stale = mgr.and(a, b);
        let _ = mgr.gc(&[]); // drops everything; `stale` now dangles
        let _ = mgr.var_of(stale);
    }

    #[cfg(feature = "check")]
    #[test]
    fn brand_check_accepts_clones_and_wire_ids() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        // Clone snapshots the arena: original ids stay valid in the clone.
        let clone = mgr.clone();
        assert_eq!(clone.var_of(a), Var(0));
        // Wire-format ids are unbranded and accepted.
        let wire = NodeId::from_raw(a.raw());
        assert_eq!(mgr.var_of(wire), Var(0));
    }
}
