//! Injectable monotonic time sources for budget deadlines.
//!
//! [`Budget`](crate::Budget) time quotas used to read the wall clock
//! directly, which made every deadline test a race against the scheduler.
//! A [`Clock`] abstracts "what time is it" behind a trait: production code
//! uses [`MonotonicClock`] (a thin wrapper over [`Instant::now`]), while
//! tests and the serving layer's deterministic chaos harness install a
//! [`FakeClock`] they advance by hand — a deadline then expires exactly
//! when the test says it does, never earlier, never later.
//!
//! Clocks are shared (`Arc<dyn Clock>`), cheap to clone, and `Send + Sync`
//! so one clock can govern every worker of a thread pool.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source consulted by budget deadline checks.
///
/// Implementations must be monotonic: successive `now()` calls never go
/// backwards. [`Instant`] (rather than `SystemTime`) is the currency so a
/// wall-clock adjustment mid-run can never fire or extend a deadline.
pub trait Clock: fmt::Debug + Send + Sync {
    /// The current monotonic time.
    fn now(&self) -> Instant;
}

/// The production clock: [`Instant::now`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A deterministic, manually advanced clock for tests.
///
/// Clones share the same offset: advancing any handle advances every
/// observer, which is how a test expires a deadline inside a running
/// worker thread without sleeping.
#[derive(Clone, Debug)]
pub struct FakeClock {
    base: Instant,
    offset_nanos: Arc<AtomicU64>,
}

impl FakeClock {
    /// A fresh clock frozen at an arbitrary base instant.
    pub fn new() -> Self {
        FakeClock {
            base: Instant::now(),
            offset_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Moves the clock forward by `d`. Saturates at `u64::MAX` nanoseconds
    /// (~584 years), far beyond any meaningful deadline.
    pub fn advance(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.offset_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(nanos))
            })
            .expect("invariant: fetch_update closure always returns Some");
    }

    /// Total time this clock has been advanced since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.offset_nanos.load(Ordering::Relaxed))
    }
}

impl Default for FakeClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for FakeClock {
    fn now(&self) -> Instant {
        self.base + self.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_is_shared_and_deterministic() {
        let c = FakeClock::new();
        let d = c.clone();
        let t0 = c.now();
        assert_eq!(t0, d.now(), "clones agree while frozen");
        c.advance(Duration::from_millis(250));
        assert_eq!(d.now() - t0, Duration::from_millis(250));
        d.advance(Duration::from_secs(1));
        assert_eq!(c.elapsed(), Duration::from_millis(1250));
    }
}
