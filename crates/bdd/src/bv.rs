//! Symbolic unsigned bit-vector arithmetic over BDDs.
//!
//! A bit-vector is a `Vec<NodeId>`, least-significant bit first; each bit is
//! a Boolean function of the manager's variables. This module provides the
//! adders, constant multipliers, comparators, and division/modulus by a
//! constant needed to construct the paper's arithmetic benchmark functions
//! (radix converters, residue-number-system converters, BCD adders and
//! multipliers) *symbolically*, without enumerating their truth tables —
//! the 4-digit decimal adder alone has 10⁸ care minterms.
//!
//! All operations are purely combinational and allocate nodes in the given
//! [`BddManager`].

#![allow(clippy::needless_range_loop)] // index loops mirror the bit-position arithmetic
use crate::manager::{BddManager, NodeId, FALSE, TRUE};

/// A symbolic unsigned integer: bit `i` of the value is `bits[i]`
/// (LSB first). The empty vector denotes the constant 0.
pub type BitVec = Vec<NodeId>;

/// The constant `value` as a bit-vector of exactly `width` bits.
///
/// # Panics
///
/// Panics if `value` does not fit in `width` bits.
pub fn constant(value: u64, width: usize) -> BitVec {
    assert!(
        width >= 64 || value >> width == 0,
        "constant {value} does not fit in {width} bits"
    );
    (0..width)
        .map(|i| if value >> i & 1 == 1 { TRUE } else { FALSE })
        .collect()
}

/// Minimum number of bits to represent `value` (at least 1).
pub fn bits_for(value: u64) -> usize {
    (64 - value.leading_zeros()).max(1) as usize
}

/// Zero-extends (or truncates, asserting the dropped bits are constant
/// false) to `width` bits.
pub fn resize(bv: &BitVec, width: usize) -> BitVec {
    let mut out = bv.clone();
    if out.len() > width {
        assert!(
            out[width..].iter().all(|&b| b == FALSE),
            "resize would truncate non-zero bits"
        );
        out.truncate(width);
    } else {
        out.resize(width, FALSE);
    }
    out
}

/// Left shift by `k` bits (multiply by 2^k).
pub fn shl(bv: &BitVec, k: usize) -> BitVec {
    let mut out = vec![FALSE; k];
    out.extend_from_slice(bv);
    out
}

/// Full addition: `a + b`, with one extra carry-out bit.
pub fn add(mgr: &mut BddManager, a: &BitVec, b: &BitVec) -> BitVec {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    let mut out = Vec::with_capacity(width + 1);
    let mut carry = FALSE;
    for i in 0..width {
        let axb = mgr.xor(a[i], b[i]);
        let sum = mgr.xor(axb, carry);
        let ab = mgr.and(a[i], b[i]);
        let cx = mgr.and(axb, carry);
        carry = mgr.or(ab, cx);
        out.push(sum);
    }
    out.push(carry);
    out
}

/// Adds the constant `c` to `a` (with carry-out).
pub fn add_const(mgr: &mut BddManager, a: &BitVec, c: u64) -> BitVec {
    let width = a.len().max(bits_for(c));
    add(mgr, a, &constant(c, width))
}

/// Subtraction `a - b`, assuming `a ≥ b` whenever `assume_ge` holds; the
/// final borrow bit is returned alongside (`TRUE` iff `a < b`).
pub fn sub(mgr: &mut BddManager, a: &BitVec, b: &BitVec) -> (BitVec, NodeId) {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    let mut out = Vec::with_capacity(width);
    let mut borrow = FALSE;
    for i in 0..width {
        let axb = mgr.xor(a[i], b[i]);
        let diff = mgr.xor(axb, borrow);
        // borrow' = ¬a·b ∨ borrow·¬(a⊕b)
        let na = mgr.not(a[i]);
        let nab = mgr.and(na, b[i]);
        let nx = mgr.not(axb);
        let bx = mgr.and(borrow, nx);
        borrow = mgr.or(nab, bx);
        out.push(diff);
    }
    (out, borrow)
}

/// Per-bit multiplexer: `if cond then a else b`.
pub fn select(mgr: &mut BddManager, cond: NodeId, a: &BitVec, b: &BitVec) -> BitVec {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    (0..width).map(|i| mgr.ite(cond, a[i], b[i])).collect()
}

/// Multiplication by a constant, via shift-and-add over the set bits of `c`.
pub fn mul_const(mgr: &mut BddManager, a: &BitVec, c: u64) -> BitVec {
    if c == 0 || a.is_empty() {
        return Vec::new();
    }
    let mut acc: BitVec = Vec::new();
    for bit in 0..64 {
        if c >> bit & 1 == 1 {
            let shifted = shl(a, bit);
            acc = add(mgr, &acc, &shifted);
        }
    }
    acc
}

/// General multiplication `a · b` via shift-and-add on `b`'s bits.
pub fn mul(mgr: &mut BddManager, a: &BitVec, b: &BitVec) -> BitVec {
    let mut acc: BitVec = Vec::new();
    for (bit, &bi) in b.iter().enumerate() {
        if bi == FALSE {
            continue;
        }
        let shifted = shl(a, bit);
        let gated: BitVec = shifted.iter().map(|&s| mgr.and(s, bi)).collect();
        acc = add(mgr, &acc, &gated);
    }
    acc
}

/// The predicate `a < c` for a constant `c`.
pub fn lt_const(mgr: &mut BddManager, a: &BitVec, c: u64) -> NodeId {
    // Compare from the most significant bit down.
    let mut result = FALSE; // equality so far falls through to "not less"
    for i in 0..a.len() {
        let cbit = c >> i & 1 == 1;
        result = if cbit {
            // a_i = 0 -> less; a_i = 1 -> defer to lower bits.
            mgr.ite(a[i], result, TRUE)
        } else {
            // a_i = 1 -> greater; a_i = 0 -> defer.
            mgr.ite(a[i], FALSE, result)
        };
    }
    // Bits of c above a's width: if any is 1, a < c whenever the prefix says
    // "equal", and the loop result already assumed those bits equal (0 in a).
    if a.len() < 64 && c >> a.len() != 0 {
        return TRUE;
    }
    result
}

/// The predicate `a ≥ c` for a constant `c`.
pub fn ge_const(mgr: &mut BddManager, a: &BitVec, c: u64) -> NodeId {
    let lt = lt_const(mgr, a, c);
    mgr.not(lt)
}

/// The predicate `a = c` for a constant `c`.
pub fn eq_const(mgr: &mut BddManager, a: &BitVec, c: u64) -> NodeId {
    if a.len() < 64 && c >> a.len() != 0 {
        return FALSE;
    }
    let mut acc = TRUE;
    for (i, &bit) in a.iter().enumerate() {
        let want = c >> i & 1 == 1;
        let lit = if want { bit } else { mgr.not(bit) };
        acc = mgr.and(acc, lit);
    }
    acc
}

/// The predicate `a = b` for two bit-vectors.
pub fn eq(mgr: &mut BddManager, a: &BitVec, b: &BitVec) -> NodeId {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    let mut acc = TRUE;
    for i in 0..width {
        let same = mgr.iff(a[i], b[i]);
        acc = mgr.and(acc, same);
    }
    acc
}

/// Quotient and remainder of `a / m` for a constant `m`, by symbolic
/// restoring division (conditional subtraction of `m · 2^j`).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn divmod_const(mgr: &mut BddManager, a: &BitVec, m: u64) -> (BitVec, BitVec) {
    assert!(m > 0, "division by zero");
    if a.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut rem = a.clone();
    let mbits = bits_for(m);
    if a.len() < mbits {
        return (vec![FALSE; 1], rem);
    }
    let top = a.len() - mbits;
    let mut quot = vec![FALSE; top + 1];
    for j in (0..=top).rev() {
        let shifted = shl(&constant(m, mbits), j); // the constant m·2^j
        let (diff, borrow) = sub(mgr, &rem, &shifted);
        let fits = mgr.not(borrow); // rem ≥ m·2^j
        rem = select(mgr, fits, &diff, &rem);
        quot[j] = fits;
    }
    // The remainder is < m, so it fits in mbits bits; the upper bits are
    // identically false but we keep the caller's width and let them resize.
    (quot, rem)
}

/// `a mod m` for a constant `m`.
pub fn mod_const(mgr: &mut BddManager, a: &BitVec, m: u64) -> BitVec {
    let (_, r) = divmod_const(mgr, a, m);
    resize(&r, bits_for(m.saturating_sub(1)).min(r.len().max(1)))
}

/// Evaluates a bit-vector under a total assignment, returning its numeric
/// value.
pub fn eval(mgr: &BddManager, bv: &BitVec, assignment: &[bool]) -> u64 {
    let mut v = 0u64;
    for (i, &bit) in bv.iter().enumerate() {
        if mgr.eval(bit, assignment) {
            v |= 1 << i;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Var;

    /// A 4-bit symbolic input over vars v0..v3 plus an exhaustive checker.
    fn with_nibble(
        check: impl Fn(&mut BddManager, &BitVec, &dyn Fn(&BddManager, &BitVec, u64) -> u64),
    ) {
        let mut mgr = BddManager::new(4);
        let x: BitVec = (0..4).map(|i| mgr.var(Var(i))).collect();
        let evaluate = |mgr: &BddManager, bv: &BitVec, input: u64| -> u64 {
            let assignment: Vec<bool> = (0..4).map(|i| input >> i & 1 == 1).collect();
            eval(mgr, bv, &assignment)
        };
        check(&mut mgr, &x, &evaluate);
    }

    #[test]
    fn constant_roundtrip() {
        let c = constant(13, 6);
        let mgr = BddManager::new(1);
        assert_eq!(eval(&mgr, &c, &[false]), 13);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn constant_too_wide_panics() {
        let _ = constant(16, 4);
    }

    #[test]
    fn add_is_correct_exhaustively() {
        with_nibble(|mgr, x, evaluate| {
            let s = add_const(mgr, x, 9);
            for input in 0..16 {
                assert_eq!(evaluate(mgr, &s, input), input + 9);
            }
        });
    }

    #[test]
    fn symbolic_plus_symbolic() {
        // Two independent 3-bit operands over 6 variables.
        let mut mgr = BddManager::new(6);
        let a: BitVec = (0..3).map(|i| mgr.var(Var(i))).collect();
        let b: BitVec = (3..6).map(|i| mgr.var(Var(i))).collect();
        let s = add(&mut mgr, &a, &b);
        for va in 0..8u64 {
            for vb in 0..8u64 {
                let assignment: Vec<bool> = (0..6)
                    .map(|i| {
                        if i < 3 {
                            va >> i & 1 == 1
                        } else {
                            vb >> (i - 3) & 1 == 1
                        }
                    })
                    .collect();
                assert_eq!(eval(&mgr, &s, &assignment), va + vb);
            }
        }
    }

    #[test]
    fn sub_reports_borrow() {
        with_nibble(|mgr, x, evaluate| {
            let seven = constant(7, 4);
            let (d, borrow) = sub(mgr, x, &seven);
            for input in 0..16i64 {
                let assignment: Vec<bool> = (0..4).map(|i| input >> i & 1 == 1).collect();
                let got_borrow = mgr.eval(borrow, &assignment);
                assert_eq!(got_borrow, input < 7, "borrow for {input}");
                if input >= 7 {
                    assert_eq!(evaluate(mgr, &d, input as u64) as i64, input - 7);
                }
            }
        });
    }

    #[test]
    fn mul_const_matches_arithmetic() {
        with_nibble(|mgr, x, evaluate| {
            let m = mul_const(mgr, x, 11);
            for input in 0..16 {
                assert_eq!(evaluate(mgr, &m, input), input * 11);
            }
            assert!(mul_const(mgr, x, 0).is_empty());
        });
    }

    #[test]
    fn general_mul_exhaustive() {
        let mut mgr = BddManager::new(6);
        let a: BitVec = (0..3).map(|i| mgr.var(Var(i))).collect();
        let b: BitVec = (3..6).map(|i| mgr.var(Var(i))).collect();
        let p = mul(&mut mgr, &a, &b);
        for va in 0..8u64 {
            for vb in 0..8u64 {
                let assignment: Vec<bool> = (0..6)
                    .map(|i| {
                        if i < 3 {
                            va >> i & 1 == 1
                        } else {
                            vb >> (i - 3) & 1 == 1
                        }
                    })
                    .collect();
                assert_eq!(eval(&mgr, &p, &assignment), va * vb);
            }
        }
    }

    #[test]
    fn comparisons_exhaustive() {
        with_nibble(|mgr, x, _| {
            for c in 0..20u64 {
                let lt = lt_const(mgr, x, c);
                let ge = ge_const(mgr, x, c);
                let eqc = eq_const(mgr, x, c);
                for input in 0..16u64 {
                    let assignment: Vec<bool> = (0..4).map(|i| input >> i & 1 == 1).collect();
                    assert_eq!(mgr.eval(lt, &assignment), input < c, "{input} < {c}");
                    assert_eq!(mgr.eval(ge, &assignment), input >= c);
                    assert_eq!(mgr.eval(eqc, &assignment), input == c);
                }
            }
        });
    }

    #[test]
    fn divmod_exhaustive() {
        with_nibble(|mgr, x, evaluate| {
            for m in 1..=13u64 {
                let (q, r) = divmod_const(mgr, x, m);
                for input in 0..16 {
                    assert_eq!(evaluate(mgr, &q, input), input / m, "{input} / {m}");
                    assert_eq!(evaluate(mgr, &r, input), input % m, "{input} % {m}");
                }
            }
        });
    }

    #[test]
    fn mod_const_narrow_width() {
        with_nibble(|mgr, x, evaluate| {
            let r = mod_const(mgr, x, 3);
            assert!(r.len() <= 2, "mod 3 needs at most 2 bits, got {}", r.len());
            for input in 0..16 {
                assert_eq!(evaluate(mgr, &r, input), input % 3);
            }
        });
    }

    #[test]
    fn select_muxes() {
        let mut mgr = BddManager::new(1);
        let cond = mgr.var(Var(0));
        let a = constant(5, 4);
        let b = constant(10, 4);
        let s = select(&mut mgr, cond, &a, &b);
        assert_eq!(eval(&mgr, &s, &[true]), 5);
        assert_eq!(eval(&mgr, &s, &[false]), 10);
    }

    #[test]
    fn eq_of_vectors() {
        let mut mgr = BddManager::new(2);
        let a = vec![mgr.var(Var(0))];
        let b = vec![mgr.var(Var(1))];
        let e = eq(&mut mgr, &a, &b);
        assert!(mgr.eval(e, &[true, true]));
        assert!(mgr.eval(e, &[false, false]));
        assert!(!mgr.eval(e, &[true, false]));
    }

    #[test]
    fn resize_pads_and_checks() {
        let c = constant(3, 2);
        let r = resize(&c, 5);
        assert_eq!(r.len(), 5);
        let mgr = BddManager::new(1);
        assert_eq!(eval(&mgr, &r, &[false]), 3);
        let back = resize(&r, 2);
        assert_eq!(back.len(), 2);
    }

    #[test]
    #[should_panic(expected = "truncate")]
    fn resize_refuses_losing_bits() {
        let c = constant(9, 4);
        let _ = resize(&c, 2);
    }
}
