//! Multi-terminal BDDs (MTBDDs) over `u64` terminal values.
//!
//! The paper motivates the BDD_for_CF by comparing it against the MTBDD of
//! the same multiple-output function: "BDD_for_CFs usually require fewer
//! nodes than corresponding MTBDDs, and the widths of the BDD_for_CFs tend
//! to be smaller". This module provides exactly enough MTBDD machinery to
//! make that comparison: construction from a vector of per-output BDDs,
//! evaluation, node counts, and width profiles.
//!
//! An MTBDD node branches on input variables only; each terminal holds the
//! packed output word (bit `i` = value of output `i`).

use crate::hasher::FastMap;
use crate::manager::{BddManager, NodeId, Var, TRUE};
use std::fmt;

/// Index of an MTBDD node inside an [`MtbddManager`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MtNodeId(u32);

impl fmt::Debug for MtNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[derive(Clone, Copy, Debug)]
enum MtNode {
    Terminal(u64),
    Internal {
        var: u32,
        lo: MtNodeId,
        hi: MtNodeId,
    },
}

/// A reduced ordered multi-terminal BDD store.
///
/// The variable order is fixed at construction (copied from the
/// [`BddManager`] the MTBDD is built from); MTBDDs here are analysis
/// artifacts, not a mutable working representation.
pub struct MtbddManager {
    nodes: Vec<MtNode>,
    unique_internal: FastMap<(u32, MtNodeId, MtNodeId), MtNodeId>,
    unique_terminal: FastMap<u64, MtNodeId>,
    level_of_var: Vec<u32>,
    var_at_level: Vec<Var>,
    num_vars: usize,
}

impl fmt::Debug for MtbddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MtbddManager")
            .field("num_vars", &self.num_vars)
            .field("arena_len", &self.nodes.len())
            .finish()
    }
}

impl MtbddManager {
    /// Creates an empty MTBDD manager with the same variables and order as
    /// `source`.
    pub fn with_order_of(source: &BddManager) -> Self {
        MtbddManager {
            nodes: Vec::new(),
            unique_internal: FastMap::default(),
            unique_terminal: FastMap::default(),
            level_of_var: (0..source.num_vars() as u32)
                .map(|v| source.level_of(Var(v)))
                .collect(),
            var_at_level: (0..source.num_vars() as u32)
                .map(|l| source.var_at(l))
                .collect(),
            num_vars: source.num_vars(),
        }
    }

    /// The canonical terminal node for `value`.
    pub fn terminal(&mut self, value: u64) -> MtNodeId {
        if let Some(&id) = self.unique_terminal.get(&value) {
            return id;
        }
        let id = MtNodeId(self.nodes.len() as u32);
        self.nodes.push(MtNode::Terminal(value));
        self.unique_terminal.insert(value, id);
        id
    }

    /// The canonical internal node `if var then hi else lo`.
    pub fn mk(&mut self, var: Var, lo: MtNodeId, hi: MtNodeId) -> MtNodeId {
        if lo == hi {
            return lo;
        }
        let key = (var.0, lo, hi);
        if let Some(&id) = self.unique_internal.get(&key) {
            return id;
        }
        let id = MtNodeId(self.nodes.len() as u32);
        self.nodes.push(MtNode::Internal { var: var.0, lo, hi });
        self.unique_internal.insert(key, id);
        id
    }

    fn level_of_node(&self, id: MtNodeId) -> u32 {
        match self.nodes[id.0 as usize] {
            MtNode::Terminal(_) => u32::MAX,
            MtNode::Internal { var, .. } => self.level_of_var[var as usize],
        }
    }

    /// Builds the MTBDD of the multiple-output function whose output `i`
    /// is the BDD `outputs[i]` in `mgr`; the terminal value packs the
    /// output bits (`bit i = fᵢ`).
    ///
    /// Implemented as a balanced tree of pairwise terminal-packing
    /// combinations, whose `(a, b)`-keyed caches stay small — the naive
    /// simultaneous walk keyed on output-vectors explodes for functions
    /// with many outputs.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 outputs are given or the orders diverge
    /// (i.e. `self` was not created by [`MtbddManager::with_order_of`] on
    /// `mgr`, or `mgr` was reordered since).
    #[allow(clippy::wrong_self_convention)] // reads naturally: the store builds *from* BDDs
    pub fn from_bdds(&mut self, mgr: &BddManager, outputs: &[NodeId]) -> MtNodeId {
        assert!(
            outputs.len() <= 64,
            "terminal packing supports at most 64 outputs"
        );
        assert_eq!(
            self.num_vars,
            mgr.num_vars(),
            "MTBDD manager built for a different variable count"
        );
        if outputs.is_empty() {
            return self.terminal(0);
        }
        // Convert each output to a 1-bit MTBDD, then tree-reduce.
        let mut parts: Vec<(MtNodeId, usize)> = outputs
            .iter()
            .map(|&f| {
                let mut memo = FastMap::default();
                (self.lift(mgr, f, &mut memo), 1)
            })
            .collect();
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut iter = parts.into_iter();
            while let Some((a, wa)) = iter.next() {
                match iter.next() {
                    Some((b, wb)) => {
                        let mut memo = FastMap::default();
                        next.push((self.pack(a, b, wa as u32, &mut memo), wa + wb));
                    }
                    None => next.push((a, wa)),
                }
            }
            parts = next;
        }
        parts[0].0
    }

    /// Converts a single BDD into a 0/1-terminal MTBDD.
    fn lift(
        &mut self,
        mgr: &BddManager,
        f: NodeId,
        memo: &mut FastMap<NodeId, MtNodeId>,
    ) -> MtNodeId {
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if mgr.is_const(f) {
            self.terminal(u64::from(f == TRUE))
        } else {
            let var = mgr.var_of(f);
            let lo = self.lift(mgr, mgr.lo(f), memo);
            let hi = self.lift(mgr, mgr.hi(f), memo);
            self.mk(var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Combines two MTBDDs into one whose terminals are
    /// `word(a) | word(b) << shift`.
    fn pack(
        &mut self,
        a: MtNodeId,
        b: MtNodeId,
        shift: u32,
        memo: &mut FastMap<(MtNodeId, MtNodeId), MtNodeId>,
    ) -> MtNodeId {
        if let Some(&r) = memo.get(&(a, b)) {
            return r;
        }
        let la = self.level_of_node(a);
        let lb = self.level_of_node(b);
        let r = if la == u32::MAX && lb == u32::MAX {
            let (MtNode::Terminal(wa), MtNode::Terminal(wb)) =
                (self.nodes[a.0 as usize], self.nodes[b.0 as usize])
            else {
                unreachable!("terminal levels imply terminal nodes")
            };
            self.terminal(wa | wb << shift)
        } else {
            let top = la.min(lb);
            let var = self.var_at_level[top as usize];
            let (a0, a1) = match self.nodes[a.0 as usize] {
                MtNode::Internal { var: w, lo, hi } if self.level_of_var[w as usize] == top => {
                    (lo, hi)
                }
                _ => (a, a),
            };
            let (b0, b1) = match self.nodes[b.0 as usize] {
                MtNode::Internal { var: w, lo, hi } if self.level_of_var[w as usize] == top => {
                    (lo, hi)
                }
                _ => (b, b),
            };
            let lo = self.pack(a0, b0, shift, memo);
            let hi = self.pack(a1, b1, shift, memo);
            self.mk(var, lo, hi)
        };
        memo.insert((a, b), r);
        r
    }

    /// Evaluates the MTBDD under a total assignment indexed by variable id.
    pub fn eval(&self, root: MtNodeId, assignment: &[bool]) -> u64 {
        let mut cur = root;
        loop {
            match self.nodes[cur.0 as usize] {
                MtNode::Terminal(v) => return v,
                MtNode::Internal { var, lo, hi } => {
                    cur = if assignment[var as usize] { hi } else { lo };
                }
            }
        }
    }

    /// All distinct nodes reachable from `root`, terminals included.
    fn reachable(&self, root: MtNodeId) -> Vec<MtNodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if seen[n.0 as usize] {
                continue;
            }
            seen[n.0 as usize] = true;
            out.push(n);
            if let MtNode::Internal { lo, hi, .. } = self.nodes[n.0 as usize] {
                stack.push(lo);
                stack.push(hi);
            }
        }
        out
    }

    /// Number of distinct *internal* nodes reachable from `root`.
    pub fn node_count(&self, root: MtNodeId) -> usize {
        self.reachable(root)
            .iter()
            .filter(|&&n| matches!(self.nodes[n.0 as usize], MtNode::Internal { .. }))
            .count()
    }

    /// Number of distinct terminal values reachable from `root`.
    pub fn terminal_count(&self, root: MtNodeId) -> usize {
        self.reachable(root)
            .iter()
            .filter(|&&n| matches!(self.nodes[n.0 as usize], MtNode::Terminal(_)))
            .count()
    }

    /// Width profile analogous to [`BddManager::width_profile`]: `cuts[c]`
    /// is the number of distinct nodes (terminals included — MTBDD column
    /// patterns are terminal values) hanging below cut `c`.
    pub fn width_profile(&self, root: MtNodeId) -> Vec<usize> {
        let t = self.num_vars;
        let mut crossing: Vec<crate::hasher::FastSet<MtNodeId>> =
            vec![crate::hasher::FastSet::default(); t + 1];
        let record = |from: i64,
                      to: MtNodeId,
                      to_level: u32,
                      crossing: &mut Vec<crate::hasher::FastSet<MtNodeId>>| {
            let topmost = (from + 1).max(0) as usize;
            let bottom = (to_level as usize).min(t);
            for set in crossing.iter_mut().take(bottom + 1).skip(topmost) {
                set.insert(to);
            }
        };
        record(-1, root, self.level_of_node(root), &mut crossing);
        for n in self.reachable(root) {
            if let MtNode::Internal { lo, hi, .. } = self.nodes[n.0 as usize] {
                let level = i64::from(self.level_of_node(n));
                record(level, lo, self.level_of_node(lo), &mut crossing);
                record(level, hi, self.level_of_node(hi), &mut crossing);
            }
        }
        crossing.into_iter().map(|s| s.len().max(1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Half adder: sum = a XOR b, carry = a AND b.
    fn half_adder() -> (BddManager, Vec<NodeId>) {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let sum = mgr.xor(a, b);
        let carry = mgr.and(a, b);
        (mgr, vec![sum, carry])
    }

    #[test]
    fn from_bdds_matches_eval() {
        let (mgr, outs) = half_adder();
        let mut mt = MtbddManager::with_order_of(&mgr);
        let root = mt.from_bdds(&mgr, &outs);
        for bits in 0..4u64 {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let expect = (u64::from(a ^ b)) | (u64::from(a && b) << 1);
            assert_eq!(mt.eval(root, &[a, b]), expect);
        }
    }

    #[test]
    fn terminals_are_shared() {
        let (mgr, outs) = half_adder();
        let mut mt = MtbddManager::with_order_of(&mgr);
        let root = mt.from_bdds(&mgr, &outs);
        // Values 00, 01, 10 appear; 11 never (sum and carry never both 1).
        assert_eq!(mt.terminal_count(root), 3);
        let t1 = mt.terminal(7);
        let t2 = mt.terminal(7);
        assert_eq!(t1, t2);
    }

    #[test]
    fn constant_function_collapses() {
        let mgr = BddManager::new(3);
        let mut mt = MtbddManager::with_order_of(&mgr);
        let root = mt.from_bdds(&mgr, &[TRUE, TRUE]);
        assert_eq!(mt.node_count(root), 0);
        assert_eq!(mt.eval(root, &[false, false, false]), 0b11);
    }

    #[test]
    fn width_profile_counts_terminal_classes() {
        let (mgr, outs) = half_adder();
        let mut mt = MtbddManager::with_order_of(&mgr);
        let root = mt.from_bdds(&mgr, &outs);
        let widths = mt.width_profile(root);
        assert_eq!(widths.len(), 3);
        assert_eq!(widths[0], 1, "root only");
        // Below v0: two distinct v1-branches (cofactors differ).
        assert_eq!(widths[1], 2);
        // Below v1: three terminal values.
        assert_eq!(widths[2], 3);
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mgr = BddManager::new(2);
        let mut mt = MtbddManager::with_order_of(&mgr);
        let t5 = mt.terminal(5);
        assert_eq!(mt.mk(Var(0), t5, t5), t5);
    }
}
