//! Resource governance for BDD operations: node quotas, step and time
//! budgets, and cooperative cancellation.
//!
//! A [`Budget`] is installed on a [`BddManager`](crate::BddManager) with
//! [`set_budget`](crate::BddManager::set_budget). While a budget is active,
//! the fallible operation variants (`try_ite`, `try_apply`, `try_and_many`,
//! `try_exists`, …) return an [`Error`] instead of growing the arena
//! unboundedly. The infallible variants (`ite`, `and`, …) are thin wrappers
//! that temporarily suspend the budget and therefore keep their historical
//! never-fails behavior.
//!
//! Budgets are *cooperative*: they are checked at operation-recursion
//! boundaries, so an exhausted budget surfaces within a bounded number of
//! node allocations, not instantaneously. A budget never corrupts the
//! manager: when a `try_*` operation fails, every node built so far is a
//! well-formed (if unreferenced) ROBDD node, reclaimable by
//! [`gc`](crate::BddManager::gc).

use crate::clock::Clock;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted (`try_*`) BDD operation gave up.
///
/// The manager is always left structurally sound when one of these is
/// returned; see the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// The arena reached the configured node quota and the operation needed
    /// a node that is not already in the unique table.
    NodeLimit {
        /// The configured quota (total arena slots, terminals included).
        limit: usize,
    },
    /// The operation-step budget ran out.
    StepLimit {
        /// The configured number of charged operation steps.
        limit: u64,
    },
    /// The wall-clock deadline passed.
    TimeBudget,
    /// The [`CancelToken`] was fired (or the deterministic
    /// [`cancel_at_step`](Budget::with_cancel_at_step) hook tripped).
    Cancelled,
    /// The manager was [poisoned](crate::BddManager::poison) after a panic
    /// unwound through one of its operations. A poisoned manager refuses
    /// every further budgeted operation: its arena may hold a half-built
    /// (if still structurally sound) intermediate state, and batch
    /// harnesses quarantine it instead of reusing it.
    Poisoned,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Error::NodeLimit { limit } => write!(f, "node quota exhausted (limit {limit})"),
            Error::StepLimit { limit } => write!(f, "step budget exhausted (limit {limit})"),
            Error::TimeBudget => write!(f, "time budget exhausted"),
            Error::Cancelled => write!(f, "operation cancelled"),
            Error::Poisoned => write!(f, "manager poisoned by an earlier panic"),
        }
    }
}

impl std::error::Error for Error {}

/// A cloneable, thread-safe cancellation flag.
///
/// Clones share one flag: firing any clone cancels every operation that
/// observes the token. Checking is a relaxed atomic load, cheap enough for
/// the operation hot path.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Idempotent; cannot be unfired.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the token been fired?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for budgeted BDD operations.
///
/// The default budget is unlimited; builder methods add individual limits:
///
/// ```
/// use bddcf_bdd::{BddManager, Budget, Var};
/// use std::time::Duration;
///
/// let mut mgr = BddManager::new(8);
/// mgr.set_budget(
///     Budget::default()
///         .with_node_limit(10_000)
///         .with_time_budget(Duration::from_secs(5)),
/// );
/// let a = mgr.var(Var(0)); // infallible ops still never fail
/// let b = mgr.var(Var(1));
/// let ab = mgr.try_and(a, b).expect("tiny BDD fits any quota");
/// # let _ = ab;
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum arena size (total node slots, terminals included) that
    /// budgeted operations may grow the manager to.
    pub node_limit: Option<usize>,
    /// Maximum number of charged operation steps (recursive op calls) since
    /// the budget was installed.
    pub step_limit: Option<u64>,
    /// Wall-clock allowance; converted to a deadline when the budget is
    /// installed on a manager.
    pub time_budget: Option<Duration>,
    /// Deadline in absolute time. Set automatically from `time_budget` by
    /// [`set_budget`](crate::BddManager::set_budget); may also be supplied
    /// directly.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked periodically.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection hook: behave as if the cancel token
    /// fired once the manager's step counter reaches this value. Used by the
    /// seeded fault-injection harness; reproducible, unlike wall-clock or
    /// thread-based cancellation.
    pub cancel_at_step: Option<u64>,
    /// The time source deadline checks consult. `None` means the monotonic
    /// system clock ([`MonotonicClock`](crate::clock::MonotonicClock));
    /// tests and the serving layer install a shared
    /// [`FakeClock`](crate::clock::FakeClock) here so deadline expiry is
    /// deterministic instead of a race against the scheduler.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Budget {
    /// An explicitly unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the arena at `limit` total node slots.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Caps charged operation steps at `limit`.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = Some(limit);
        self
    }

    /// Grants `allowance` of wall-clock time, starting when the budget is
    /// installed on a manager.
    pub fn with_time_budget(mut self, allowance: Duration) -> Self {
        self.time_budget = Some(allowance);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms the deterministic cancellation hook at the given step count.
    pub fn with_cancel_at_step(mut self, step: u64) -> Self {
        self.cancel_at_step = Some(step);
        self
    }

    /// Installs the time source consulted by deadline checks (the
    /// monotonic system clock when unset).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The current time according to this budget's clock (the monotonic
    /// system clock when none was installed).
    pub fn now(&self) -> Instant {
        match &self.clock {
            Some(clock) => clock.now(),
            None => Instant::now(),
        }
    }

    /// Does this budget impose no limit at all?
    pub fn is_unlimited(&self) -> bool {
        self.node_limit.is_none()
            && self.step_limit.is_none()
            && self.time_budget.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
            && self.cancel_at_step.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn builder_composes_limits() {
        let b = Budget::unlimited()
            .with_node_limit(100)
            .with_step_limit(7)
            .with_time_budget(Duration::from_millis(1));
        assert_eq!(b.node_limit, Some(100));
        assert_eq!(b.step_limit, Some(7));
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn fake_clock_deadline_is_deterministic() {
        use crate::clock::FakeClock;
        use crate::{BddManager, Var};

        let clock = FakeClock::new();
        let mut mgr = BddManager::new(10);
        mgr.set_budget(
            Budget::default()
                .with_time_budget(Duration::from_millis(100))
                .with_clock(Arc::new(clock.clone())),
        );
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let ab = mgr.try_and(a, b).expect("deadline not reached");
        // Expire the deadline without sleeping: the next charging
        // operation must fail on its first cache-missing step.
        clock.advance(Duration::from_millis(101));
        let c = mgr.var(Var(2));
        assert_eq!(mgr.try_and(ab, c), Err(Error::TimeBudget));
    }

    #[test]
    fn real_clock_deadline_still_enforced() {
        use crate::{BddManager, Var};

        let mut mgr = BddManager::new(10);
        // A deadline that has already passed when the budget is installed.
        mgr.set_budget(Budget::default().with_time_budget(Duration::from_nanos(0)));
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        assert_eq!(mgr.try_and(a, b), Err(Error::TimeBudget));
    }

    #[test]
    fn error_messages_name_the_limit() {
        assert_eq!(
            Error::NodeLimit { limit: 42 }.to_string(),
            "node quota exhausted (limit 42)"
        );
        assert_eq!(Error::Cancelled.to_string(), "operation cancelled");
    }
}
