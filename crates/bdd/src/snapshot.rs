//! Versioned, checksummed, endian-stable binary snapshots of a
//! [`BddManager`].
//!
//! A snapshot captures everything needed to reconstruct an equivalent
//! manager: the variable permutation, the interior-node arena, and the
//! poisoned flag. The unique table's *chains* are deliberately not
//! serialized — they are a derived index, rebuilt (with full validation)
//! on load — but format v2 records the table's bucket *geometry*, so a
//! restored manager is bit-identical to the one that wrote the bytes
//! (which is what keeps checkpoint resume byte-stable across the
//! arena-table engine core). Operation caches, the installed
//! [`Budget`](crate::Budget), and the step counter are transient and are
//! not part of the wire format.
//!
//! # Wire format (version 2)
//!
//! All integers are little-endian.
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `b"BDDCFSNP"` |
//! | 8      | 4    | format version (`u32`, currently 2) |
//! | 12     | 4    | flags (`u32`; bit 0 = poisoned) |
//! | 16     | 4    | `num_vars` (`u32`) |
//! | 20     | 4    | `interior_count` (`u32`, arena length minus terminals) |
//! | 24     | 4    | `unique_capacity_log2` (`u32`, log2 of the unique-table bucket count) |
//! | 28     | 4·`num_vars` | variable order, top to bottom (`u32` var ids) |
//! | …      | 12·`interior_count` | interior nodes in arena order: `(var, lo, hi)` as three `u32`s |
//! | end−8  | 8    | FNV-1a 64 checksum of every preceding byte (`u64`) |
//!
//! Version 1 — identical except the `unique_capacity_log2` word is absent
//! — is still read (the geometry then defaults to the deterministic
//! post-GC shape); [`BddManager::snapshot_bytes_v1`] keeps the legacy
//! writer available for migration tests.
//!
//! Arena order guarantees every child precedes its parent, so the reader
//! validates structure (variable ranges, redundancy, level order,
//! duplicates) in one pass while rebuilding the unique table. Any defect
//! yields a typed [`SnapshotError`] carrying the byte offset of the
//! offending field — snapshots from untrusted storage can never panic the
//! loader, and the geometry word is plausibility-checked before it sizes
//! an allocation.

use crate::manager::{BddManager, Var};
use crate::table::UniqueTable;
use std::fmt;
use std::io;

/// Magic bytes opening every manager snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BDDCFSNP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The legacy (pre-geometry) snapshot version, still accepted by the
/// reader.
pub const SNAPSHOT_VERSION_V1: u32 = 1;

/// Why a snapshot (or a container embedding one, such as a pipeline
/// checkpoint) failed to decode. Every variant that concerns file contents
/// carries the byte offset where decoding stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before a required field.
    Truncated {
        /// Offset at which the missing field begins.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// The leading magic bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The trailing checksum does not match the contents.
    ChecksumMismatch {
        /// Checksum recomputed from the payload.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// The bytes decoded but describe an invalid structure.
    Malformed {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { offset, needed } => {
                write!(
                    f,
                    "truncated at offset {offset}: {needed} more byte(s) needed"
                )
            }
            SnapshotError::BadMagic => write!(f, "bad magic: not a bddcf snapshot"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {supported})"
                )
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: computed {expected:#018x}, file says {found:#018x}"
            ),
            SnapshotError::Malformed { offset, message } => {
                write!(f, "malformed at offset {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash, the checksum used by the snapshot and checkpoint
/// wire formats. Not cryptographic — it detects corruption, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Appends a little-endian `u32` to a wire buffer.
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64` to a wire buffer.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// An offset-tracking cursor over wire-format bytes.
///
/// Every failed read reports the *absolute* offset (the cursor can be based
/// at a non-zero offset when decoding an embedded section), which is how
/// [`SnapshotError`]s carry positions without threading them by hand.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor over `buf`, reporting offsets relative to its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self::with_base(buf, 0)
    }

    /// A cursor over `buf` whose reported offsets are shifted by `base`
    /// (for decoding a section embedded inside a larger file).
    pub fn with_base(buf: &'a [u8], base: usize) -> Self {
        ByteReader { buf, pos: 0, base }
    }

    /// Absolute offset of the next unread byte.
    pub fn pos(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or reports where they were missing.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                offset: self.pos(),
                needed: n - self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl BddManager {
    /// Serializes this manager into the versioned snapshot format described
    /// in the [module docs](self).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_bytes_versioned(SNAPSHOT_VERSION)
    }

    /// Serializes this manager as a **version 1** snapshot (no geometry
    /// word). Kept so migration tests can fabricate genuine legacy bytes;
    /// new code should use [`snapshot_bytes`](Self::snapshot_bytes).
    pub fn snapshot_bytes_v1(&self) -> Vec<u8> {
        self.snapshot_bytes_versioned(SNAPSHOT_VERSION_V1)
    }

    fn snapshot_bytes_versioned(&self, version: u32) -> Vec<u8> {
        let interior: Vec<(u32, u32, u32)> = self.raw_nodes().collect();
        let mut buf = Vec::with_capacity(36 + 4 * self.num_vars() + 12 * interior.len());
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut buf, version);
        put_u32(&mut buf, u32::from(self.is_poisoned()));
        put_u32(&mut buf, self.num_vars() as u32);
        put_u32(&mut buf, interior.len() as u32);
        if version >= 2 {
            put_u32(&mut buf, self.unique_capacity_log2());
        }
        for &v in self.order() {
            put_u32(&mut buf, v.0);
        }
        for (var, lo, hi) in interior {
            put_u32(&mut buf, var);
            put_u32(&mut buf, lo);
            put_u32(&mut buf, hi);
        }
        let checksum = fnv1a64(&buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Streams [`snapshot_bytes`](Self::snapshot_bytes) into a writer.
    pub fn write_snapshot<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.snapshot_bytes())
    }

    /// Atomically publishes a snapshot as `dir/name` through a
    /// [`Vfs`](crate::vfs::Vfs): tmp file → fsync → rename →
    /// parent-directory fsync. Once this returns, the snapshot survives
    /// power loss.
    pub fn save_snapshot(
        &self,
        vfs: &dyn crate::vfs::Vfs,
        dir: &std::path::Path,
        name: &str,
    ) -> io::Result<()> {
        crate::vfs::write_atomic(vfs, dir, name, &self.snapshot_bytes())
    }

    /// Reads and reconstructs a snapshot file through a
    /// [`Vfs`](crate::vfs::Vfs). Decode failures come back as
    /// [`io::ErrorKind::InvalidData`] wrapping the typed
    /// [`SnapshotError`] (recoverable by downcast).
    pub fn load_snapshot(vfs: &dyn crate::vfs::Vfs, path: &std::path::Path) -> io::Result<Self> {
        let bytes = vfs.read(path)?;
        Self::from_snapshot_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Reconstructs a manager from snapshot bytes, rebuilding the unique
    /// table and validating every node. Never panics on bad input: all
    /// defects come back as a typed, offset-carrying [`SnapshotError`].
    ///
    /// The restored manager has empty operation caches, an unlimited
    /// budget, and a zeroed step counter — only durable state travels
    /// through the wire format.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut header = ByteReader::new(bytes);
        let magic = header.take(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = header.u32()?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_V1 {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if bytes.len() < header.pos() + 8 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
                needed: header.pos() + 8 - bytes.len(),
            });
        }
        let payload_len = bytes.len() - 8;
        let expected = fnv1a64(&bytes[..payload_len]);
        let mut tail = ByteReader::with_base(&bytes[payload_len..], payload_len);
        let found = tail.u64()?;
        if expected != found {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }

        let mut r = ByteReader::with_base(&bytes[header.pos()..payload_len], header.pos());
        let flags = r.u32()?;
        let num_vars = r.u32()? as usize;
        let interior_count = r.u32()? as usize;
        let unique_capacity_log2 = if version >= 2 {
            let geometry_offset = r.pos();
            let cap = r.u32()?;
            // Plausibility bound before the word sizes an allocation: the
            // writer never leaves the table below the floor geometry or
            // more than 4× the deterministic post-GC shape.
            let ceiling = UniqueTable::capacity_log2_for(interior_count) + 2;
            if cap < UniqueTable::capacity_log2_for(0) || cap > ceiling {
                return Err(SnapshotError::Malformed {
                    offset: geometry_offset,
                    message: format!(
                        "implausible unique-table geometry 2^{cap} for {interior_count} node(s)"
                    ),
                });
            }
            Some(cap)
        } else {
            None
        };
        let order_offset = r.pos();
        let mut order = Vec::with_capacity(num_vars);
        for _ in 0..num_vars {
            order.push(Var(r.u32()?));
        }
        let triples_offset = r.pos();
        let mut triples = Vec::with_capacity(interior_count);
        for _ in 0..interior_count {
            let var = r.u32()?;
            let lo = r.u32()?;
            let hi = r.u32()?;
            triples.push((var, lo, hi));
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed {
                offset: r.pos(),
                message: format!("{} trailing byte(s) after the node section", r.remaining()),
            });
        }
        BddManager::from_snapshot_parts(&order, &triples, flags & 1 != 0, unique_capacity_log2)
            .map_err(|(index, message)| SnapshotError::Malformed {
                offset: if message.starts_with("variable order") {
                    order_offset
                } else {
                    triples_offset + 12 * index
                },
                message,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Var, FALSE, TRUE};

    fn sample_manager() -> BddManager {
        let mut mgr = BddManager::new(4);
        mgr.set_order(&[Var(2), Var(0), Var(3), Var(1)]);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let c = mgr.var(Var(2));
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let _ = mgr.xor(f, a);
        mgr
    }

    #[test]
    fn round_trip_preserves_arena_and_order() {
        let mgr = sample_manager();
        let bytes = mgr.snapshot_bytes();
        let back = BddManager::from_snapshot_bytes(&bytes).expect("round trip");
        assert_eq!(back.num_vars(), mgr.num_vars());
        assert_eq!(back.order(), mgr.order());
        assert_eq!(back.arena_len(), mgr.arena_len());
        assert!(back.check_integrity().is_ok());
        assert!(!back.is_poisoned());
        // Byte-stability: re-serializing produces identical bytes.
        assert_eq!(back.snapshot_bytes(), bytes);
    }

    #[test]
    fn poisoned_flag_travels() {
        let mut mgr = sample_manager();
        mgr.poison();
        let back = BddManager::from_snapshot_bytes(&mgr.snapshot_bytes()).expect("round trip");
        assert!(back.is_poisoned());
        assert_eq!(
            back.clone().try_mk(Var(0), FALSE, TRUE),
            Err(crate::Error::Poisoned)
        );
    }

    #[test]
    fn empty_manager_round_trips() {
        let mgr = BddManager::new(0);
        let back = BddManager::from_snapshot_bytes(&mgr.snapshot_bytes()).expect("round trip");
        assert_eq!(back.arena_len(), 2);
        assert_eq!(back.num_vars(), 0);
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut bytes = sample_manager().snapshot_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            BddManager::from_snapshot_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_skew_is_reported() {
        let mut bytes = sample_manager().snapshot_bytes();
        bytes[8] = 99; // version field, little-endian low byte
        match BddManager::from_snapshot_bytes(&bytes) {
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut bytes = sample_manager().snapshot_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            BddManager::from_snapshot_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn v1_snapshots_still_load_and_reserialize_as_v2() {
        let mgr = sample_manager();
        let v1 = mgr.snapshot_bytes_v1();
        assert_eq!(u32::from_le_bytes([v1[8], v1[9], v1[10], v1[11]]), 1);
        let back = BddManager::from_snapshot_bytes(&v1).expect("v1 load");
        assert_eq!(back.arena_len(), mgr.arena_len());
        assert_eq!(back.order(), mgr.order());
        assert!(back.check_integrity().is_ok());
        let v2 = back.snapshot_bytes();
        assert_eq!(u32::from_le_bytes([v2[8], v2[9], v2[10], v2[11]]), 2);
        assert_eq!(v2.len(), v1.len() + 4, "v2 adds exactly the geometry word");
        let again = BddManager::from_snapshot_bytes(&v2).expect("v2 reload");
        assert_eq!(again.snapshot_bytes(), v2, "byte-stable after migration");
    }

    #[test]
    fn implausible_geometry_word_is_rejected_before_allocating() {
        let mut bytes = sample_manager().snapshot_bytes();
        bytes[24] = 31; // unique_capacity_log2: 2^31 buckets for a tiny arena
        let payload = bytes.len() - 8;
        let fixed = fnv1a64(&bytes[..payload]);
        bytes[payload..].copy_from_slice(&fixed.to_le_bytes());
        match BddManager::from_snapshot_bytes(&bytes) {
            Err(SnapshotError::Malformed { offset, message }) => {
                assert_eq!(offset, 24);
                assert!(message.contains("implausible"), "got: {message}");
            }
            other => panic!("expected malformed geometry, got {other:?}"),
        }
    }

    #[test]
    fn fnv_vector() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn terminals_only_semantics_survive() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(Var(0));
        let nx = mgr.not(x);
        let mut back = BddManager::from_snapshot_bytes(&mgr.snapshot_bytes()).expect("round trip");
        // Same ids denote the same functions in the restored manager.
        assert_eq!(back.and(x, nx), FALSE);
        assert_eq!(back.or(x, nx), TRUE);
    }
}
