//! Dynamic variable reordering: adjacent level swaps and Rudell-style
//! sifting with precedence constraints.
//!
//! The paper optimises BDD_for_CF variable orders "by sifting algorithm
//! \[12\], where the sum of the widths is used as the cost function". A
//! BDD_for_CF additionally requires each output variable to stay *below*
//! every support variable of its function (Definition 2.4); the
//! [`SiftConstraints`] type expresses such precedence requirements and the
//! sifter never visits a violating position.
//!
//! # Implementation
//!
//! Two swap strategies coexist:
//!
//! * The public [`BddManager::swap_adjacent`] is *functional*: it rebuilds
//!   the affected nodes bottom-up and returns remapped roots. Nodes whose
//!   shape does not change keep their identity, but the rebuild still walks
//!   every ancestor of the swapped level, so a swap costs O(above-cut
//!   region). The arena stays in children-precede-parents order throughout,
//!   which keeps every public invariant (snapshots included) intact at any
//!   point.
//!
//! * The sifter uses an *in-place* swap (`swap_adjacent_in_place`,
//!   crate-private): nodes at the upper level are rewritten where they sit,
//!   threaded through the manager's per-variable chains, so ancestors and
//!   roots keep their ids and a swap costs O(nodes at the swapped level).
//!   The arena is temporarily *staged* — rewritten nodes point at
//!   higher-indexed children and displaced garbage lingers — until the next
//!   [`BddManager::gc`] recompacts it; the sifter always collects before
//!   returning, so public callers never observe a staged arena.
//!
//! Old nodes become garbage that a later [`BddManager::gc`] reclaims; the
//! sifter collects after each variable.
//!
//! All operation caches are cleared on a swap: the entries stay
//! function-correct, but clearing is an O(1) generation bump and keeps
//! every cached id accountable to the live arena.

use crate::manager::{BddManager, NodeId, Var};
use crate::table::{ScratchMap, NIL};

/// Cost function minimised by [`BddManager::sift`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReorderCost {
    /// Total number of distinct nodes reachable from the roots.
    NodeCount,
    /// Sum of the cut widths (the paper's choice for BDD_for_CF sifting).
    SumOfWidths,
}

/// Precedence constraints for sifting: pairs `(above, below)` meaning
/// `above` must stay at a strictly smaller level than `below`.
#[derive(Clone, Debug, Default)]
pub struct SiftConstraints {
    pairs: Vec<(Var, Var)>,
}

impl SiftConstraints {
    /// No constraints: every permutation is allowed.
    pub fn none() -> Self {
        Self::default()
    }

    /// Requires `above` to stay above (smaller level than) `below`.
    pub fn require_above(&mut self, above: Var, below: Var) -> &mut Self {
        self.pairs.push((above, below));
        self
    }

    /// All constraint pairs `(above, below)`.
    pub fn pairs(&self) -> &[(Var, Var)] {
        &self.pairs
    }

    /// The allowed level window `[min, max]` for `var` given the current
    /// positions of all other variables in `mgr`.
    fn window(&self, mgr: &BddManager, var: Var) -> (u32, u32) {
        let mut min = 0u32;
        let mut max = mgr.num_vars() as u32 - 1;
        for &(a, b) in &self.pairs {
            if b == var {
                min = min.max(mgr.level_of(a) + 1);
            }
            if a == var {
                max = max.min(mgr.level_of(b).saturating_sub(1));
            }
        }
        (min, max)
    }

    /// Checks that the current order of `mgr` satisfies every constraint.
    pub fn check(&self, mgr: &BddManager) -> bool {
        self.pairs
            .iter()
            .all(|&(a, b)| mgr.level_of(a) < mgr.level_of(b))
    }
}

impl BddManager {
    /// Swaps the variables at `level` and `level + 1` and rebuilds the BDDs
    /// rooted at `roots`, returning the remapped roots (same order).
    ///
    /// Roots must cover *every* function the caller wants to keep valid:
    /// nodes not reachable from `roots` are not rebuilt and must not be used
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub fn swap_adjacent(&mut self, level: u32, roots: &[NodeId]) -> Vec<NodeId> {
        let t = self.num_vars() as u32;
        assert!(level + 1 < t, "swap_adjacent: level {level} out of range");
        let u = self.var_at(level);
        let v = self.var_at(level + 1);
        // Install the new order first so mk() builds valid nodes.
        self.swap_order_entries(u, v);
        self.clear_caches();
        // The memo is a stamped arena-indexed map owned by the manager:
        // keys are pre-swap node ids (all below the arena length at take
        // time), so repeated swaps reuse one allocation and never hash.
        let mut memo = self.take_swap_scratch();
        let result = roots
            .iter()
            .map(|&r| self.swap_rebuild(r, u, v, level, &mut memo))
            .collect();
        self.put_swap_scratch(memo);
        self.clear_caches();
        result
    }

    /// Swaps the variables at `level` and `level + 1` **in place**: nodes
    /// labelled with the upper variable that interact with the lower one
    /// are rewritten where they sit, so every ancestor — including every
    /// entry of `roots` — keeps both its id and its function, and the swap
    /// costs O(nodes at the swapped level) instead of O(everything above
    /// it). This is what makes sifting affordable: a sift walk is almost
    /// entirely swaps, and the functional [`swap_adjacent`]
    /// (Self::swap_adjacent) rebuilds the whole above-cut region per swap.
    ///
    /// The price is a *staged* arena: rewritten nodes point at children
    /// with larger indices, and displaced nodes linger as garbage (some
    /// untabled, some with stale shapes), until the next [`gc`]
    /// (Self::gc) restores the children-precede-parents layout. Callers
    /// must therefore collect before handing the manager back to code that
    /// relies on arena order (snapshots) or full-arena integrity; the
    /// sifter does so before returning. `roots` is consulted only by the
    /// rare key-collision tie-break (see below) — the ids themselves are
    /// never remapped.
    ///
    /// Per upper-level node `X = (u, f0, f1)` threaded on `u`'s chain:
    ///
    /// 1. No `v`-labelled child → `X` merely slides down one level;
    ///    untouched.
    /// 2. Cofactor frontier not strictly below the pair → `X` is stale
    ///    garbage from an earlier in-place swap (a live node's two-level
    ///    frontier always clears the pair); it is untabled so `mk` can
    ///    never resurrect it, and skipped.
    /// 3. `X` absent from the unique table → garbage displaced by an
    ///    earlier collision; skipped.
    /// 4. Otherwise `X` is unlinked *first* (so the `mk`s cannot find it
    ///    under its old key), its swapped cofactors `G0 = mk(u, f00, f10)`
    ///    and `G1 = mk(u, f01, f11)` are built, and `X` is rewritten to
    ///    `(v, G0, G1)`. If that key is already tabled by some `H`, the two
    ///    denote the same function, so at most one is live: reachability
    ///    from `roots` decides which stays tabled (the loser becomes
    ///    untabled garbage).
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub(crate) fn swap_adjacent_in_place(&mut self, level: u32, roots: &[NodeId]) {
        let t = self.num_vars() as u32;
        assert!(
            level + 1 < t,
            "swap_adjacent_in_place: level {level} out of range"
        );
        let u = self.var_at(level);
        let v = self.var_at(level + 1);
        // Install the new order first so mk() builds valid nodes: u now
        // sits at `level + 1`, v at `level`.
        self.swap_order_entries(u, v);
        self.clear_caches();
        let cut = level + 1;
        // Snapshot u's chain and re-thread it from scratch: rewritten
        // nodes move to v's chain, everything else stays on u's. Fresh
        // nodes the mk()s mint below are u-labelled and thread themselves
        // onto the (already reset) chain as they are created.
        let mut chain = self.take_swap_chain();
        let mut cur = self.var_list_head(u);
        while cur != NIL {
            chain.push(cur);
            cur = self.var_list_next(cur);
        }
        self.var_list_reset(u);
        for &raw in &chain {
            let x = self.brand(raw);
            debug_assert_eq!(self.var_of(x), u);
            let lo = self.lo(x);
            let hi = self.hi(x);
            let lo_is_v = !self.is_const(lo) && self.var_of(lo) == v;
            let hi_is_v = !self.is_const(hi) && self.var_of(hi) == v;
            if !lo_is_v && !hi_is_v {
                // Case 1: no interaction; the node slides down one level.
                self.var_list_push(u, raw);
                continue;
            }
            let (f00, f01) = if lo_is_v {
                (self.lo(lo), self.hi(lo))
            } else {
                (lo, lo)
            };
            let (f10, f11) = if hi_is_v {
                (self.lo(hi), self.hi(hi))
            } else {
                (hi, hi)
            };
            if self.level_of_node(f00) <= cut
                || self.level_of_node(f01) <= cut
                || self.level_of_node(f10) <= cut
                || self.level_of_node(f11) <= cut
            {
                // Case 2: stale garbage; untable it for good.
                let _ = self.unique_unlink_checked(raw);
                self.var_list_push(u, raw);
                continue;
            }
            if !self.unique_unlink_checked(raw) {
                // Case 3: displaced garbage.
                self.var_list_push(u, raw);
                continue;
            }
            let g0 = self.mk(u, f00, f10);
            let g1 = self.mk(u, f01, f11);
            // X depends on v (a child is v-labelled), so its v-cofactors
            // differ: the rewritten node is never redundant.
            debug_assert_ne!(g0, g1);
            if let Some(h) = self.unique_find_raw(v, g0.0, g1.0) {
                debug_assert_ne!(h, raw);
                if self.reaches(roots, raw) {
                    // X is live, so the incumbent twin cannot be (one
                    // tabled representative per live function).
                    debug_assert!(!self.reaches(roots, h));
                    let unlinked = self.unique_unlink_checked(h);
                    debug_assert!(unlinked);
                    self.set_node_in_place(raw, v, g0, g1);
                    self.unique_insert_raw(raw);
                    self.var_list_push(v, raw);
                } else {
                    // X is garbage; leave it untabled with its old shape.
                    self.var_list_push(u, raw);
                }
            } else {
                self.set_node_in_place(raw, v, g0, g1);
                self.unique_insert_raw(raw);
                self.var_list_push(v, raw);
            }
        }
        self.put_swap_chain(chain);
        self.clear_caches();
    }

    fn swap_order_entries(&mut self, u: Var, v: Var) {
        let lu = self.level_of(u);
        let lv = self.level_of(v);
        self.set_levels_raw(u, lv, v, lu);
    }

    fn swap_rebuild(
        &mut self,
        n: NodeId,
        u: Var,
        v: Var,
        level: u32,
        memo: &mut ScratchMap,
    ) -> NodeId {
        if self.is_const(n) {
            return n;
        }
        if let Some(r) = memo.get(n.0) {
            return self.brand(r);
        }
        let w = self.var_of(n);
        let r = if w == v {
            // Previously below u; children were strictly below the pair and
            // remain so — the node is untouched.
            n
        } else if w == u {
            let lo = self.lo(n);
            let hi = self.hi(n);
            let lo_is_v = !self.is_const(lo) && self.var_of(lo) == v;
            let hi_is_v = !self.is_const(hi) && self.var_of(hi) == v;
            if !lo_is_v && !hi_is_v {
                // u does not interact with v here; moving u down one level
                // keeps the node valid.
                n
            } else {
                let (f00, f01) = if lo_is_v {
                    (self.lo(lo), self.hi(lo))
                } else {
                    (lo, lo)
                };
                let (f10, f11) = if hi_is_v {
                    (self.lo(hi), self.hi(hi))
                } else {
                    (hi, hi)
                };
                let new_lo = self.mk(u, f00, f10);
                let new_hi = self.mk(u, f01, f11);
                // The function depends on v (some child is v-rooted), so
                // the v-cofactors differ and the node never collapses.
                debug_assert_ne!(new_lo, new_hi);
                self.mk(v, new_lo, new_hi)
            }
        } else if self.level_of(w) > level + 1 {
            // Strictly below the swapped pair (w is neither u nor v, and its
            // level did not change): untouched.
            n
        } else {
            // Above the pair: rebuild children.
            let lo = self.lo(n);
            let hi = self.hi(n);
            let new_lo = self.swap_rebuild(lo, u, v, level, memo);
            let new_hi = self.swap_rebuild(hi, u, v, level, memo);
            if new_lo == lo && new_hi == hi {
                n
            } else {
                self.mk(w, new_lo, new_hi)
            }
        };
        memo.set(n.0, r.0);
        r
    }

    /// Moves `var` to `target_level` by repeated adjacent swaps, rebuilding
    /// `roots` along the way.
    pub fn move_var_to_level(
        &mut self,
        var: Var,
        target_level: u32,
        roots: &[NodeId],
    ) -> Vec<NodeId> {
        let mut roots = roots.to_vec();
        while self.level_of(var) < target_level {
            let l = self.level_of(var);
            roots = self.swap_adjacent(l, &roots);
        }
        while self.level_of(var) > target_level {
            let l = self.level_of(var);
            roots = self.swap_adjacent(l - 1, &roots);
        }
        roots
    }

    fn reorder_cost(&mut self, roots: &[NodeId], cost: ReorderCost) -> usize {
        match cost {
            ReorderCost::NodeCount => self.node_count_multi(roots),
            ReorderCost::SumOfWidths => self.width_sum(roots),
        }
    }

    /// One sifting pass: every variable is moved through its allowed window
    /// and parked at its best position. Returns the remapped roots.
    ///
    /// `constraints` restrict the positions each variable may take (pairs
    /// that must keep their relative order); the initial order must satisfy
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if the current order violates `constraints`.
    pub fn sift_pass(
        &mut self,
        roots: &[NodeId],
        constraints: &SiftConstraints,
        cost: ReorderCost,
    ) -> Vec<NodeId> {
        assert!(
            constraints.check(self),
            "initial variable order violates the sifting constraints"
        );
        let mut roots = roots.to_vec();
        // Sift variables in decreasing order of how many nodes they label —
        // Rudell's heuristic: fat levels first.
        let mut label_count = vec![0usize; self.num_vars()];
        for n in self.descendants(&roots) {
            label_count[self.var_of(n).0 as usize] += 1;
        }
        let mut vars: Vec<Var> = (0..self.num_vars() as u32).map(Var).collect();
        vars.sort_unstable_by_key(|v| std::cmp::Reverse(label_count[v.0 as usize]));

        for var in vars {
            if label_count[var.0 as usize] == 0 {
                continue;
            }
            roots = self.sift_one(var, &roots, constraints, cost);
            roots = self.gc(&roots);
        }
        roots
    }

    /// Rearranges the current order into the nearest one satisfying
    /// `constraints` (Kahn's topological sort, preferring variables that
    /// currently sit higher), rebuilding `roots` along the way. A no-op if
    /// the order is already legal.
    ///
    /// # Panics
    ///
    /// Panics if the constraints are cyclic.
    pub fn legalize_order(
        &mut self,
        roots: &[NodeId],
        constraints: &SiftConstraints,
    ) -> Vec<NodeId> {
        if constraints.check(self) {
            return roots.to_vec();
        }
        let t = self.num_vars();
        let mut blockers: Vec<Vec<Var>> = vec![Vec::new(); t]; // per var: must-be-above list
        let mut indegree = vec![0usize; t];
        for &(above, below) in constraints.pairs() {
            blockers[above.0 as usize].push(below);
            indegree[below.0 as usize] += 1;
        }
        // Kahn with a priority queue on current level (smaller = sooner).
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>> = (0..t)
            .filter(|&v| indegree[v] == 0)
            .map(|v| std::cmp::Reverse((self.level_of(Var(v as u32)), v as u32)))
            .collect();
        let mut target = Vec::with_capacity(t);
        while let Some(std::cmp::Reverse((_, v))) = ready.pop() {
            target.push(Var(v));
            for &below in &blockers[v as usize] {
                indegree[below.0 as usize] -= 1;
                if indegree[below.0 as usize] == 0 {
                    ready.push(std::cmp::Reverse((self.level_of(below), below.0)));
                }
            }
        }
        assert_eq!(target.len(), t, "cyclic order constraints");
        let mut roots = roots.to_vec();
        for (level, &var) in target.iter().enumerate() {
            roots = self.move_var_to_level(var, level as u32, &roots);
        }
        debug_assert!(constraints.check(self));
        self.gc(&roots)
    }

    /// Repeated sifting passes until the cost stops improving (at most
    /// `max_passes`). Returns the remapped roots. An initial order that
    /// violates `constraints` is legalized first
    /// ([`BddManager::legalize_order`]).
    pub fn sift(
        &mut self,
        roots: &[NodeId],
        constraints: &SiftConstraints,
        cost: ReorderCost,
        max_passes: usize,
    ) -> Vec<NodeId> {
        let mut roots = self.legalize_order(roots, constraints);
        let mut best = self.reorder_cost(&roots, cost);
        for _ in 0..max_passes {
            roots = self.sift_pass(&roots, constraints, cost);
            let now = self.reorder_cost(&roots, cost);
            if now >= best {
                break;
            }
            best = now;
        }
        roots
    }

    fn sift_one(
        &mut self,
        var: Var,
        roots: &[NodeId],
        constraints: &SiftConstraints,
        cost: ReorderCost,
    ) -> Vec<NodeId> {
        let (min_level, max_level) = constraints.window(self, var);
        let start = self.level_of(var);
        debug_assert!((min_level..=max_level).contains(&start));
        if min_level == max_level {
            return roots.to_vec();
        }
        let mut roots = roots.to_vec();
        let (mut tracker, mut best_cost) = SiftCostTracker::init(self, &roots, cost);
        let mut best_level = start;
        // Swap garbage accumulates during the walk and inflates every
        // traversal; collect whenever the arena heavily outgrows its
        // starting size. The factor trades arena bytes for pause time:
        // traversals skip garbage (they follow edges), so a larger factor
        // only costs memory and per-collection scan length.
        let gc_threshold = self.arena_len() * 4 + 65_536;

        // Visit the nearer end first to keep the walk short.
        let (first, second) = if start - min_level <= max_level - start {
            (min_level, max_level)
        } else {
            (max_level, min_level)
        };
        for target in [first, second] {
            let mut level = self.level_of(var);
            while level != target {
                let next = if target > level { level + 1 } else { level - 1 };
                let swapped = level.min(next);
                self.swap_adjacent_in_place(swapped, &roots);
                level = next;
                let c = tracker.after_swap(self, &roots, swapped);
                debug_assert_eq!(c, self.reorder_cost(&roots, cost));
                // Strictly-better keeps the first (closest) optimum.
                if c < best_cost {
                    best_cost = c;
                    best_level = level;
                }
                if self.arena_len() > gc_threshold {
                    roots = self.gc(&roots);
                }
            }
        }
        // Park at the best position, in place like the walk itself. The
        // arena stays staged until the caller (sift_pass) collects.
        let mut level = self.level_of(var);
        while level != best_level {
            let next = if best_level > level {
                level + 1
            } else {
                level - 1
            };
            self.swap_adjacent_in_place(level.min(next), &roots);
            level = next;
        }
        roots
    }
}

/// Incremental sifting cost: an adjacent swap at level `l` can only change
/// the width at cut `l + 1` — the width at any cut is the number of
/// distinct non-zero cofactors with respect to the *set* of variables
/// above it, and a swap leaves every above-cut set except `l + 1`'s
/// untouched. The tracker therefore recounts just that cut (a traversal
/// pruned at the cut) instead of rebuilding the whole profile after every
/// swap. Cut widths are function-of-order values, so a `gc` between swaps
/// does not invalidate them.
///
/// `NodeCount` has no such locality under this representation (node
/// identities change on rebuild), so it stays a full recount.
enum SiftCostTracker {
    NodeCount,
    Widths { cuts: Vec<i64> },
}

impl SiftCostTracker {
    /// Full cost evaluation; returns the tracker and the current cost.
    fn init(mgr: &mut BddManager, roots: &[NodeId], cost: ReorderCost) -> (Self, usize) {
        match cost {
            ReorderCost::NodeCount => {
                let count = mgr.node_count_multi(roots);
                (SiftCostTracker::NodeCount, count)
            }
            ReorderCost::SumOfWidths => {
                let cuts = mgr.width_cuts_raw(roots);
                let sum = clamped_sum(&cuts);
                (SiftCostTracker::Widths { cuts }, sum)
            }
        }
    }

    /// Cost after one adjacent swap at `swapped_level`: recounts the one
    /// cut the swap can change (a traversal pruned at the cut) and reuses
    /// the cached widths everywhere else.
    fn after_swap(&mut self, mgr: &mut BddManager, roots: &[NodeId], swapped_level: u32) -> usize {
        match self {
            SiftCostTracker::NodeCount => mgr.node_count_multi(roots),
            SiftCostTracker::Widths { cuts } => {
                let c = swapped_level + 1;
                cuts[c as usize] = mgr.width_at_cut(roots, c);
                clamped_sum(cuts)
            }
        }
    }
}

/// The paper's cost clamps every cut width to ≥ 1 (the width at height 0
/// is 1 by definition, and all-zero cuts count as 1).
fn clamped_sum(cuts: &[i64]) -> usize {
    cuts.iter().map(|&c| c.max(1) as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{FALSE, TRUE};

    /// Truth-vector of f over all assignments, in variable-id index space
    /// (independent of the order).
    fn truth_vector(mgr: &BddManager, f: NodeId) -> Vec<bool> {
        let n = mgr.num_vars();
        (0..1u32 << n)
            .map(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    fn interleaved_function(mgr: &mut BddManager) -> NodeId {
        // f = (v0 AND v2) OR (v1 AND v3): classic order-sensitive function.
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let c = mgr.var(Var(2));
        let d = mgr.var(Var(3));
        let ac = mgr.and(a, c);
        let bd = mgr.and(b, d);
        mgr.or(ac, bd)
    }

    #[test]
    fn swap_preserves_function() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before = truth_vector(&mgr, f);
        let roots = mgr.swap_adjacent(1, &[f]);
        assert_eq!(mgr.var_at(1), Var(2));
        assert_eq!(mgr.var_at(2), Var(1));
        assert_eq!(truth_vector(&mgr, roots[0]), before);
    }

    #[test]
    fn swap_twice_is_identity_on_order() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let order_before: Vec<Var> = mgr.order().to_vec();
        let r = mgr.swap_adjacent(0, &[f]);
        let r = mgr.swap_adjacent(0, &r);
        assert_eq!(mgr.order(), &order_before[..]);
        // Canonicity: same function, same order => same node count.
        assert_eq!(mgr.node_count(r[0]), mgr.node_count(f));
    }

    #[test]
    fn swap_handles_nodes_skipping_levels() {
        let mut mgr = BddManager::new(3);
        // f = v0 XOR v2 — no v1 node anywhere.
        let a = mgr.var(Var(0));
        let c = mgr.var(Var(2));
        let f = mgr.xor(a, c);
        let before = truth_vector(&mgr, f);
        let r = mgr.swap_adjacent(1, &[f]); // swap v1 (absent) and v2
        assert_eq!(truth_vector(&mgr, r[0]), before);
        let r = mgr.swap_adjacent(0, &r); // now swap v2 above v0
        assert_eq!(truth_vector(&mgr, r[0]), before);
    }

    #[test]
    fn move_var_walks_to_target() {
        let mut mgr = BddManager::new(5);
        let f = {
            let a = mgr.var(Var(0));
            let e = mgr.var(Var(4));
            mgr.and(a, e)
        };
        let before = truth_vector(&mgr, f);
        let r = mgr.move_var_to_level(Var(0), 4, &[f]);
        assert_eq!(mgr.level_of(Var(0)), 4);
        assert_eq!(truth_vector(&mgr, r[0]), before);
    }

    #[test]
    fn sifting_shrinks_interleaved_function() {
        // With order (v0 v1 v2 v3), f = v0v2 ∨ v1v3 needs more nodes than
        // with the order (v0 v2 v1 v3). Sifting must find an optimum.
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before_nodes = mgr.node_count(f);
        let before_truth = truth_vector(&mgr, f);
        let roots = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::NodeCount, 4);
        assert!(mgr.node_count(roots[0]) < before_nodes);
        assert_eq!(truth_vector(&mgr, roots[0]), before_truth);
    }

    #[test]
    fn sifting_with_width_cost_preserves_function() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before_truth = truth_vector(&mgr, f);
        let before_sum = mgr.width_profile(&[f]).sum();
        let roots = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::SumOfWidths, 4);
        assert!(mgr.width_profile(&[roots[0]]).sum() <= before_sum);
        assert_eq!(truth_vector(&mgr, roots[0]), before_truth);
    }

    #[test]
    fn constraints_are_respected() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let mut constraints = SiftConstraints::none();
        // Keep v3 below everything, and v0 above v1.
        constraints.require_above(Var(0), Var(1));
        constraints.require_above(Var(0), Var(3));
        constraints.require_above(Var(1), Var(3));
        constraints.require_above(Var(2), Var(3));
        let roots = mgr.sift(&[f], &constraints, ReorderCost::NodeCount, 4);
        assert!(constraints.check(&mgr));
        assert_eq!(mgr.level_of(Var(3)), 3);
        assert!(mgr.level_of(Var(0)) < mgr.level_of(Var(1)));
        let _ = roots;
    }

    #[test]
    fn multiple_roots_stay_consistent() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let g = {
            let b = mgr.var(Var(1));
            let c = mgr.var(Var(2));
            mgr.xor(b, c)
        };
        let tf = truth_vector(&mgr, f);
        let tg = truth_vector(&mgr, g);
        let roots = mgr.sift(&[f, g], &SiftConstraints::none(), ReorderCost::NodeCount, 3);
        assert_eq!(truth_vector(&mgr, roots[0]), tf);
        assert_eq!(truth_vector(&mgr, roots[1]), tg);
    }

    #[test]
    fn sifting_invalidates_caches_by_generation_only() {
        // Every adjacent swap clears all four op caches; the contract is
        // that this is a generation bump, never a physical sweep of the
        // slot arrays (a sweep would make sifting O(cache size) per swap).
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let _ = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::SumOfWidths, 2);
        let total = mgr.engine_stats().cache_total();
        assert!(total.invalidations > 0, "sifting must clear the op caches");
        assert_eq!(
            total.slots_swept, 0,
            "cache invalidation during sifting must never sweep slots"
        );
    }

    #[test]
    fn in_place_swap_preserves_ids_and_functions() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let g = {
            let b = mgr.var(Var(1));
            let c = mgr.var(Var(2));
            mgr.xor(b, c)
        };
        let tf = truth_vector(&mgr, f);
        let tg = truth_vector(&mgr, g);
        mgr.swap_adjacent_in_place(1, &[f, g]);
        assert_eq!(mgr.var_at(1), Var(2));
        assert_eq!(mgr.var_at(2), Var(1));
        // Roots keep their ids *and* their functions — the whole point.
        assert_eq!(truth_vector(&mgr, f), tf);
        assert_eq!(truth_vector(&mgr, g), tg);
        // The staged arena collects back into a fully consistent one.
        let roots = mgr.gc(&[f, g]);
        mgr.check_integrity()
            .expect("collected staged arena is sound");
        assert_eq!(truth_vector(&mgr, roots[0]), tf);
        assert_eq!(truth_vector(&mgr, roots[1]), tg);
    }

    #[test]
    fn in_place_swap_twice_restores_canonical_shape() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before_count = mgr.node_count(f);
        let order_before: Vec<Var> = mgr.order().to_vec();
        mgr.swap_adjacent_in_place(0, &[f]);
        mgr.swap_adjacent_in_place(0, &[f]);
        assert_eq!(mgr.order(), &order_before[..]);
        // Same function, same order: canonicity forces the same shape.
        assert_eq!(mgr.node_count(f), before_count);
        let roots = mgr.gc(&[f]);
        mgr.check_integrity()
            .expect("collected staged arena is sound");
        assert_eq!(mgr.node_count(roots[0]), before_count);
    }

    #[test]
    fn in_place_swap_handles_nodes_skipping_levels() {
        let mut mgr = BddManager::new(3);
        // f = v0 XOR v2 — no v1 node anywhere.
        let a = mgr.var(Var(0));
        let c = mgr.var(Var(2));
        let f = mgr.xor(a, c);
        let before = truth_vector(&mgr, f);
        mgr.swap_adjacent_in_place(1, &[f]); // swap v1 (absent) and v2
        assert_eq!(truth_vector(&mgr, f), before);
        mgr.swap_adjacent_in_place(0, &[f]); // now swap v2 above v0
        assert_eq!(truth_vector(&mgr, f), before);
        let roots = mgr.gc(&[f]);
        mgr.check_integrity()
            .expect("collected staged arena is sound");
        assert_eq!(truth_vector(&mgr, roots[0]), before);
    }

    #[test]
    fn in_place_swap_widths_match_full_recount() {
        let mut mgr = BddManager::new(5);
        let f = {
            let a = mgr.var(Var(0));
            let c = mgr.var(Var(2));
            let e = mgr.var(Var(4));
            let ac = mgr.and(a, c);
            mgr.or(ac, e)
        };
        let g = interleaved_function(&mut mgr);
        for level in [0u32, 1, 2, 3, 1, 0] {
            mgr.swap_adjacent_in_place(level, &[f, g]);
            let cuts = mgr.width_cuts_raw(&[f, g]);
            for c in 0..=5u32 {
                assert_eq!(
                    mgr.width_at_cut(&[f, g], c),
                    cuts[c as usize],
                    "cut {c} after swapping level {level}"
                );
            }
        }
    }

    #[test]
    fn swap_keeps_terminal_roots() {
        let mut mgr = BddManager::new(2);
        let r = mgr.swap_adjacent(0, &[TRUE, FALSE]);
        assert_eq!(r, vec![TRUE, FALSE]);
    }

    #[test]
    fn legalize_repairs_violated_orders() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let truth = truth_vector(&mgr, f);
        // Move v3 to the top, then demand v3 below everything.
        let roots = mgr.move_var_to_level(Var(3), 0, &[f]);
        let mut c = SiftConstraints::none();
        c.require_above(Var(0), Var(3));
        c.require_above(Var(1), Var(3));
        c.require_above(Var(2), Var(3));
        assert!(!c.check(&mgr));
        let roots = mgr.legalize_order(&roots, &c);
        assert!(c.check(&mgr));
        assert_eq!(mgr.level_of(Var(3)), 3);
        assert_eq!(truth_vector(&mgr, roots[0]), truth);
    }

    #[test]
    fn legalize_is_noop_on_valid_orders() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(Var(0));
        let c = mgr.var(Var(2));
        let f = mgr.and(a, c);
        let mut constraints = SiftConstraints::none();
        constraints.require_above(Var(0), Var(2));
        let order_before: Vec<Var> = mgr.order().to_vec();
        let roots = mgr.legalize_order(&[f], &constraints);
        assert_eq!(mgr.order(), &order_before[..]);
        assert_eq!(roots[0], f);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn legalize_rejects_cycles() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let _ = a;
        let mut c = SiftConstraints::none();
        c.require_above(Var(0), Var(1));
        c.require_above(Var(1), Var(0));
        // Force an illegal current order so legalization actually runs:
        // with the cycle, check() is false no matter what.
        let _ = mgr.legalize_order(&[a], &c);
    }

    #[test]
    fn window_respects_pair_constraints() {
        let mgr = BddManager::new(5);
        let _ = mgr; // order 0..4
        let mut c = SiftConstraints::none();
        c.require_above(Var(1), Var(3));
        let mgr = BddManager::new(5);
        let (min, max) = c.window(&mgr, Var(3));
        assert_eq!(min, 2); // must stay below Var(1) at level 1
        assert_eq!(max, 4);
        let (min, max) = c.window(&mgr, Var(1));
        assert_eq!(min, 0);
        assert_eq!(max, 2); // must stay above Var(3) at level 3
    }
}
