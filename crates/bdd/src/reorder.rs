//! Dynamic variable reordering: adjacent level swaps and Rudell-style
//! sifting with precedence constraints.
//!
//! The paper optimises BDD_for_CF variable orders "by sifting algorithm
//! \[12\], where the sum of the widths is used as the cost function". A
//! BDD_for_CF additionally requires each output variable to stay *below*
//! every support variable of its function (Definition 2.4); the
//! [`SiftConstraints`] type expresses such precedence requirements and the
//! sifter never visits a violating position.
//!
//! # Implementation
//!
//! Swaps are *functional*: instead of mutating nodes in place (which needs
//! reference counts), [`BddManager::swap_adjacent`] rebuilds the affected
//! nodes bottom-up and returns remapped roots. Nodes whose shape does not
//! change keep their identity, so the rebuild touches only the nodes at the
//! swapped level plus their ancestors. Old nodes become garbage that a later
//! [`BddManager::gc`] reclaims; the sifter collects after each variable.
//!
//! All operation caches are cleared on a swap: a cached result node may no
//! longer be in canonical order once levels move.

use crate::hasher::FastMap;
use crate::manager::{BddManager, NodeId, Var};

/// Cost function minimised by [`BddManager::sift`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReorderCost {
    /// Total number of distinct nodes reachable from the roots.
    NodeCount,
    /// Sum of the cut widths (the paper's choice for BDD_for_CF sifting).
    SumOfWidths,
}

/// Precedence constraints for sifting: pairs `(above, below)` meaning
/// `above` must stay at a strictly smaller level than `below`.
#[derive(Clone, Debug, Default)]
pub struct SiftConstraints {
    pairs: Vec<(Var, Var)>,
}

impl SiftConstraints {
    /// No constraints: every permutation is allowed.
    pub fn none() -> Self {
        Self::default()
    }

    /// Requires `above` to stay above (smaller level than) `below`.
    pub fn require_above(&mut self, above: Var, below: Var) -> &mut Self {
        self.pairs.push((above, below));
        self
    }

    /// All constraint pairs `(above, below)`.
    pub fn pairs(&self) -> &[(Var, Var)] {
        &self.pairs
    }

    /// The allowed level window `[min, max]` for `var` given the current
    /// positions of all other variables in `mgr`.
    fn window(&self, mgr: &BddManager, var: Var) -> (u32, u32) {
        let mut min = 0u32;
        let mut max = mgr.num_vars() as u32 - 1;
        for &(a, b) in &self.pairs {
            if b == var {
                min = min.max(mgr.level_of(a) + 1);
            }
            if a == var {
                max = max.min(mgr.level_of(b).saturating_sub(1));
            }
        }
        (min, max)
    }

    /// Checks that the current order of `mgr` satisfies every constraint.
    pub fn check(&self, mgr: &BddManager) -> bool {
        self.pairs
            .iter()
            .all(|&(a, b)| mgr.level_of(a) < mgr.level_of(b))
    }
}

impl BddManager {
    /// Swaps the variables at `level` and `level + 1` and rebuilds the BDDs
    /// rooted at `roots`, returning the remapped roots (same order).
    ///
    /// Roots must cover *every* function the caller wants to keep valid:
    /// nodes not reachable from `roots` are not rebuilt and must not be used
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub fn swap_adjacent(&mut self, level: u32, roots: &[NodeId]) -> Vec<NodeId> {
        let t = self.num_vars() as u32;
        assert!(level + 1 < t, "swap_adjacent: level {level} out of range");
        let u = self.var_at(level);
        let v = self.var_at(level + 1);
        // Install the new order first so mk() builds valid nodes.
        self.swap_order_entries(u, v);
        self.clear_caches();
        let mut memo: FastMap<NodeId, NodeId> = FastMap::default();
        let result = roots
            .iter()
            .map(|&r| self.swap_rebuild(r, u, v, level, &mut memo))
            .collect();
        self.clear_caches();
        result
    }

    fn swap_order_entries(&mut self, u: Var, v: Var) {
        let lu = self.level_of(u);
        let lv = self.level_of(v);
        self.set_levels_raw(u, lv, v, lu);
    }

    fn swap_rebuild(
        &mut self,
        n: NodeId,
        u: Var,
        v: Var,
        level: u32,
        memo: &mut FastMap<NodeId, NodeId>,
    ) -> NodeId {
        if self.is_const(n) {
            return n;
        }
        if let Some(&r) = memo.get(&n) {
            return r;
        }
        let w = self.var_of(n);
        let r = if w == v {
            // Previously below u; children were strictly below the pair and
            // remain so — the node is untouched.
            n
        } else if w == u {
            let lo = self.lo(n);
            let hi = self.hi(n);
            let lo_is_v = !self.is_const(lo) && self.var_of(lo) == v;
            let hi_is_v = !self.is_const(hi) && self.var_of(hi) == v;
            if !lo_is_v && !hi_is_v {
                // u does not interact with v here; moving u down one level
                // keeps the node valid.
                n
            } else {
                let (f00, f01) = if lo_is_v {
                    (self.lo(lo), self.hi(lo))
                } else {
                    (lo, lo)
                };
                let (f10, f11) = if hi_is_v {
                    (self.lo(hi), self.hi(hi))
                } else {
                    (hi, hi)
                };
                let new_lo = self.mk(u, f00, f10);
                let new_hi = self.mk(u, f01, f11);
                self.mk(v, new_lo, new_hi)
            }
        } else if self.level_of(w) > level + 1 {
            // Strictly below the swapped pair (w is neither u nor v, and its
            // level did not change): untouched.
            n
        } else {
            // Above the pair: rebuild children.
            let lo = self.lo(n);
            let hi = self.hi(n);
            let new_lo = self.swap_rebuild(lo, u, v, level, memo);
            let new_hi = self.swap_rebuild(hi, u, v, level, memo);
            if new_lo == lo && new_hi == hi {
                n
            } else {
                self.mk(w, new_lo, new_hi)
            }
        };
        memo.insert(n, r);
        r
    }

    /// Moves `var` to `target_level` by repeated adjacent swaps, rebuilding
    /// `roots` along the way.
    pub fn move_var_to_level(
        &mut self,
        var: Var,
        target_level: u32,
        roots: &[NodeId],
    ) -> Vec<NodeId> {
        let mut roots = roots.to_vec();
        while self.level_of(var) < target_level {
            let l = self.level_of(var);
            roots = self.swap_adjacent(l, &roots);
        }
        while self.level_of(var) > target_level {
            let l = self.level_of(var);
            roots = self.swap_adjacent(l - 1, &roots);
        }
        roots
    }

    fn reorder_cost(&self, roots: &[NodeId], cost: ReorderCost) -> usize {
        match cost {
            ReorderCost::NodeCount => self.node_count_multi(roots),
            ReorderCost::SumOfWidths => self.width_profile(roots).sum(),
        }
    }

    /// One sifting pass: every variable is moved through its allowed window
    /// and parked at its best position. Returns the remapped roots.
    ///
    /// `constraints` restrict the positions each variable may take (pairs
    /// that must keep their relative order); the initial order must satisfy
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if the current order violates `constraints`.
    pub fn sift_pass(
        &mut self,
        roots: &[NodeId],
        constraints: &SiftConstraints,
        cost: ReorderCost,
    ) -> Vec<NodeId> {
        assert!(
            constraints.check(self),
            "initial variable order violates the sifting constraints"
        );
        let mut roots = roots.to_vec();
        // Sift variables in decreasing order of how many nodes they label —
        // Rudell's heuristic: fat levels first.
        let mut label_count = vec![0usize; self.num_vars()];
        for n in self.descendants(&roots) {
            label_count[self.var_of(n).0 as usize] += 1;
        }
        let mut vars: Vec<Var> = (0..self.num_vars() as u32).map(Var).collect();
        vars.sort_unstable_by_key(|v| std::cmp::Reverse(label_count[v.0 as usize]));

        for var in vars {
            if label_count[var.0 as usize] == 0 {
                continue;
            }
            roots = self.sift_one(var, &roots, constraints, cost);
            roots = self.gc(&roots);
        }
        roots
    }

    /// Rearranges the current order into the nearest one satisfying
    /// `constraints` (Kahn's topological sort, preferring variables that
    /// currently sit higher), rebuilding `roots` along the way. A no-op if
    /// the order is already legal.
    ///
    /// # Panics
    ///
    /// Panics if the constraints are cyclic.
    pub fn legalize_order(
        &mut self,
        roots: &[NodeId],
        constraints: &SiftConstraints,
    ) -> Vec<NodeId> {
        if constraints.check(self) {
            return roots.to_vec();
        }
        let t = self.num_vars();
        let mut blockers: Vec<Vec<Var>> = vec![Vec::new(); t]; // per var: must-be-above list
        let mut indegree = vec![0usize; t];
        for &(above, below) in constraints.pairs() {
            blockers[above.0 as usize].push(below);
            indegree[below.0 as usize] += 1;
        }
        // Kahn with a priority queue on current level (smaller = sooner).
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>> = (0..t)
            .filter(|&v| indegree[v] == 0)
            .map(|v| std::cmp::Reverse((self.level_of(Var(v as u32)), v as u32)))
            .collect();
        let mut target = Vec::with_capacity(t);
        while let Some(std::cmp::Reverse((_, v))) = ready.pop() {
            target.push(Var(v));
            for &below in &blockers[v as usize] {
                indegree[below.0 as usize] -= 1;
                if indegree[below.0 as usize] == 0 {
                    ready.push(std::cmp::Reverse((self.level_of(below), below.0)));
                }
            }
        }
        assert_eq!(target.len(), t, "cyclic order constraints");
        let mut roots = roots.to_vec();
        for (level, &var) in target.iter().enumerate() {
            roots = self.move_var_to_level(var, level as u32, &roots);
        }
        debug_assert!(constraints.check(self));
        self.gc(&roots)
    }

    /// Repeated sifting passes until the cost stops improving (at most
    /// `max_passes`). Returns the remapped roots. An initial order that
    /// violates `constraints` is legalized first
    /// ([`BddManager::legalize_order`]).
    pub fn sift(
        &mut self,
        roots: &[NodeId],
        constraints: &SiftConstraints,
        cost: ReorderCost,
        max_passes: usize,
    ) -> Vec<NodeId> {
        let mut roots = self.legalize_order(roots, constraints);
        let mut best = self.reorder_cost(&roots, cost);
        for _ in 0..max_passes {
            roots = self.sift_pass(&roots, constraints, cost);
            let now = self.reorder_cost(&roots, cost);
            if now >= best {
                break;
            }
            best = now;
        }
        roots
    }

    fn sift_one(
        &mut self,
        var: Var,
        roots: &[NodeId],
        constraints: &SiftConstraints,
        cost: ReorderCost,
    ) -> Vec<NodeId> {
        let (min_level, max_level) = constraints.window(self, var);
        let start = self.level_of(var);
        debug_assert!((min_level..=max_level).contains(&start));
        if min_level == max_level {
            return roots.to_vec();
        }
        let mut roots = roots.to_vec();
        let mut best_cost = self.reorder_cost(&roots, cost);
        let mut best_level = start;
        // Swap garbage accumulates during the walk and inflates every
        // traversal; collect whenever the arena outgrows its starting size.
        let gc_threshold = self.arena_len() * 2 + 16_384;

        // Visit the nearer end first to keep the walk short.
        let (first, second) = if start - min_level <= max_level - start {
            (min_level, max_level)
        } else {
            (max_level, min_level)
        };
        for target in [first, second] {
            let mut level = self.level_of(var);
            while level != target {
                let next = if target > level { level + 1 } else { level - 1 };
                roots = self.move_var_to_level(var, next, &roots);
                level = next;
                let c = self.reorder_cost(&roots, cost);
                // Strictly-better keeps the first (closest) optimum.
                if c < best_cost {
                    best_cost = c;
                    best_level = level;
                }
                if self.arena_len() > gc_threshold {
                    roots = self.gc(&roots);
                }
            }
        }
        self.move_var_to_level(var, best_level, &roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{FALSE, TRUE};

    /// Truth-vector of f over all assignments, in variable-id index space
    /// (independent of the order).
    fn truth_vector(mgr: &BddManager, f: NodeId) -> Vec<bool> {
        let n = mgr.num_vars();
        (0..1u32 << n)
            .map(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect()
    }

    fn interleaved_function(mgr: &mut BddManager) -> NodeId {
        // f = (v0 AND v2) OR (v1 AND v3): classic order-sensitive function.
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let c = mgr.var(Var(2));
        let d = mgr.var(Var(3));
        let ac = mgr.and(a, c);
        let bd = mgr.and(b, d);
        mgr.or(ac, bd)
    }

    #[test]
    fn swap_preserves_function() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before = truth_vector(&mgr, f);
        let roots = mgr.swap_adjacent(1, &[f]);
        assert_eq!(mgr.var_at(1), Var(2));
        assert_eq!(mgr.var_at(2), Var(1));
        assert_eq!(truth_vector(&mgr, roots[0]), before);
    }

    #[test]
    fn swap_twice_is_identity_on_order() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let order_before: Vec<Var> = mgr.order().to_vec();
        let r = mgr.swap_adjacent(0, &[f]);
        let r = mgr.swap_adjacent(0, &r);
        assert_eq!(mgr.order(), &order_before[..]);
        // Canonicity: same function, same order => same node count.
        assert_eq!(mgr.node_count(r[0]), mgr.node_count(f));
    }

    #[test]
    fn swap_handles_nodes_skipping_levels() {
        let mut mgr = BddManager::new(3);
        // f = v0 XOR v2 — no v1 node anywhere.
        let a = mgr.var(Var(0));
        let c = mgr.var(Var(2));
        let f = mgr.xor(a, c);
        let before = truth_vector(&mgr, f);
        let r = mgr.swap_adjacent(1, &[f]); // swap v1 (absent) and v2
        assert_eq!(truth_vector(&mgr, r[0]), before);
        let r = mgr.swap_adjacent(0, &r); // now swap v2 above v0
        assert_eq!(truth_vector(&mgr, r[0]), before);
    }

    #[test]
    fn move_var_walks_to_target() {
        let mut mgr = BddManager::new(5);
        let f = {
            let a = mgr.var(Var(0));
            let e = mgr.var(Var(4));
            mgr.and(a, e)
        };
        let before = truth_vector(&mgr, f);
        let r = mgr.move_var_to_level(Var(0), 4, &[f]);
        assert_eq!(mgr.level_of(Var(0)), 4);
        assert_eq!(truth_vector(&mgr, r[0]), before);
    }

    #[test]
    fn sifting_shrinks_interleaved_function() {
        // With order (v0 v1 v2 v3), f = v0v2 ∨ v1v3 needs more nodes than
        // with the order (v0 v2 v1 v3). Sifting must find an optimum.
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before_nodes = mgr.node_count(f);
        let before_truth = truth_vector(&mgr, f);
        let roots = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::NodeCount, 4);
        assert!(mgr.node_count(roots[0]) < before_nodes);
        assert_eq!(truth_vector(&mgr, roots[0]), before_truth);
    }

    #[test]
    fn sifting_with_width_cost_preserves_function() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let before_truth = truth_vector(&mgr, f);
        let before_sum = mgr.width_profile(&[f]).sum();
        let roots = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::SumOfWidths, 4);
        assert!(mgr.width_profile(&[roots[0]]).sum() <= before_sum);
        assert_eq!(truth_vector(&mgr, roots[0]), before_truth);
    }

    #[test]
    fn constraints_are_respected() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let mut constraints = SiftConstraints::none();
        // Keep v3 below everything, and v0 above v1.
        constraints.require_above(Var(0), Var(1));
        constraints.require_above(Var(0), Var(3));
        constraints.require_above(Var(1), Var(3));
        constraints.require_above(Var(2), Var(3));
        let roots = mgr.sift(&[f], &constraints, ReorderCost::NodeCount, 4);
        assert!(constraints.check(&mgr));
        assert_eq!(mgr.level_of(Var(3)), 3);
        assert!(mgr.level_of(Var(0)) < mgr.level_of(Var(1)));
        let _ = roots;
    }

    #[test]
    fn multiple_roots_stay_consistent() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let g = {
            let b = mgr.var(Var(1));
            let c = mgr.var(Var(2));
            mgr.xor(b, c)
        };
        let tf = truth_vector(&mgr, f);
        let tg = truth_vector(&mgr, g);
        let roots = mgr.sift(&[f, g], &SiftConstraints::none(), ReorderCost::NodeCount, 3);
        assert_eq!(truth_vector(&mgr, roots[0]), tf);
        assert_eq!(truth_vector(&mgr, roots[1]), tg);
    }

    #[test]
    fn swap_keeps_terminal_roots() {
        let mut mgr = BddManager::new(2);
        let r = mgr.swap_adjacent(0, &[TRUE, FALSE]);
        assert_eq!(r, vec![TRUE, FALSE]);
    }

    #[test]
    fn legalize_repairs_violated_orders() {
        let mut mgr = BddManager::new(4);
        let f = interleaved_function(&mut mgr);
        let truth = truth_vector(&mgr, f);
        // Move v3 to the top, then demand v3 below everything.
        let roots = mgr.move_var_to_level(Var(3), 0, &[f]);
        let mut c = SiftConstraints::none();
        c.require_above(Var(0), Var(3));
        c.require_above(Var(1), Var(3));
        c.require_above(Var(2), Var(3));
        assert!(!c.check(&mgr));
        let roots = mgr.legalize_order(&roots, &c);
        assert!(c.check(&mgr));
        assert_eq!(mgr.level_of(Var(3)), 3);
        assert_eq!(truth_vector(&mgr, roots[0]), truth);
    }

    #[test]
    fn legalize_is_noop_on_valid_orders() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(Var(0));
        let c = mgr.var(Var(2));
        let f = mgr.and(a, c);
        let mut constraints = SiftConstraints::none();
        constraints.require_above(Var(0), Var(2));
        let order_before: Vec<Var> = mgr.order().to_vec();
        let roots = mgr.legalize_order(&[f], &constraints);
        assert_eq!(mgr.order(), &order_before[..]);
        assert_eq!(roots[0], f);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn legalize_rejects_cycles() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let _ = a;
        let mut c = SiftConstraints::none();
        c.require_above(Var(0), Var(1));
        c.require_above(Var(1), Var(0));
        // Force an illegal current order so legalization actually runs:
        // with the cycle, check() is false no matter what.
        let _ = mgr.legalize_order(&[a], &c);
    }

    #[test]
    fn window_respects_pair_constraints() {
        let mgr = BddManager::new(5);
        let _ = mgr; // order 0..4
        let mut c = SiftConstraints::none();
        c.require_above(Var(1), Var(3));
        let mgr = BddManager::new(5);
        let (min, max) = c.window(&mgr, Var(3));
        assert_eq!(min, 2); // must stay below Var(1) at level 1
        assert_eq!(max, 4);
        let (min, max) = c.window(&mgr, Var(1));
        assert_eq!(min, 0);
        assert_eq!(max, 2); // must stay above Var(3) at level 3
    }
}
