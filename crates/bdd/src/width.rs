//! BDD width profiles (Definition 3.5 of the paper).
//!
//! The *width* of a BDD at height `k` is the number of edges crossing the
//! horizontal section between the variables at heights `k` and `k+1`, where
//!
//! * edges incident to the same node are counted once (so the width is the
//!   number of *distinct* nodes hanging below the cut),
//! * edges pointing to the constant 0 are not counted (this also implements
//!   the paper's footnote that all-zero columns are ignored, and Theorem
//!   3.1's rule that output-variable edges into constant 0 are ignored), and
//! * the width at height 0 is 1 by definition.
//!
//! Heights count from the bottom: the constant nodes have height 0 and the
//! root variable of a BDD over `t` variables has height `t`. The equivalent
//! *cut index* counts from the top: cut `c` lies just above the variable at
//! level `c` (so cut `0` is above the root variable and cut `t` is below the
//! bottom variable). `height k ⇔ cut t−k`.

use crate::manager::{BddManager, NodeId, FALSE};

/// The widths of a (multi-rooted) BDD at every cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WidthProfile {
    /// `cuts[c]` is the width at cut `c` (see module docs), `0 ≤ c ≤ t`.
    cuts: Vec<usize>,
}

impl WidthProfile {
    /// Width at cut `c` (counted from the top; see module docs).
    ///
    /// # Panics
    ///
    /// Panics if `c > t`.
    pub fn at_cut(&self, c: usize) -> usize {
        self.cuts[c]
    }

    /// Width at height `k` (counted from the bottom, Definition 3.5).
    ///
    /// `at_height(0)` is 1 by definition.
    ///
    /// # Panics
    ///
    /// Panics if `k > t`.
    pub fn at_height(&self, k: usize) -> usize {
        if k == 0 {
            1
        } else {
            self.cuts[self.cuts.len() - 1 - k]
        }
    }

    /// Number of cuts, `t + 1` for a manager with `t` variables.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// True when the profile covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.cuts.len() <= 1
    }

    /// The maximum width over all cuts — the quantity the paper's Table 4
    /// reports as "maximum width".
    pub fn max(&self) -> usize {
        self.cuts.iter().copied().max().unwrap_or(1)
    }

    /// Sum of widths over all cuts — the cost function the paper uses for
    /// sifting ("the sum of the widths is used as the cost function").
    pub fn sum(&self) -> usize {
        self.cuts.iter().sum()
    }

    /// All cut widths, top to bottom.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }
}

impl BddManager {
    /// Computes the width profile of the (shared) BDD rooted at `roots`.
    ///
    /// For a single root this is Definition 3.5. For several roots, the
    /// external pointers to each root count as edges from above the top cut,
    /// which matches how a shared multi-rooted BDD is drawn.
    pub fn width_profile(&self, roots: &[NodeId]) -> WidthProfile {
        let t = self.num_vars();
        // A node n hangs below cut c iff some edge from above c points to
        // it and it lies at or below c: c ∈ (min-parent-level(n), level(n)],
        // where external root pointers count as parents at level −1. Each
        // node therefore contributes one contiguous cut range, accumulated
        // in a difference array — O(nodes), no per-cut sets.
        const UNSEEN: i64 = i64::MAX;
        let mut parent_level = vec![UNSEEN; self.arena_len()];
        let mut stack: Vec<NodeId> = Vec::with_capacity(roots.len());
        for &root in roots {
            if root != FALSE && parent_level[root.0 as usize] == UNSEEN {
                parent_level[root.0 as usize] = -1;
                stack.push(root);
            } else if root != FALSE {
                parent_level[root.0 as usize] = -1;
            }
        }
        while let Some(n) = stack.pop() {
            if self.is_const(n) {
                continue;
            }
            let level = i64::from(self.level_of_node(n));
            for child in [self.lo(n), self.hi(n)] {
                if child == FALSE {
                    continue;
                }
                let slot = &mut parent_level[child.0 as usize];
                if *slot == UNSEEN {
                    *slot = level;
                    stack.push(child);
                } else if level < *slot {
                    *slot = level;
                }
            }
        }
        let mut delta = vec![0i64; t + 2];
        for (idx, &min_parent_level) in parent_level.iter().enumerate() {
            if min_parent_level == UNSEEN {
                continue;
            }
            let n = self.brand(idx as u32);
            let lo = (min_parent_level + 1).max(0) as usize;
            let hi = (self.level_of_node(n) as usize).min(t);
            if lo <= hi {
                delta[lo] += 1;
                delta[hi + 1] -= 1;
            }
        }
        let mut cuts = Vec::with_capacity(t + 1);
        let mut acc = 0i64;
        for d in delta.iter().take(t + 1) {
            acc += d;
            cuts.push((acc.max(1)) as usize);
        }
        WidthProfile { cuts }
    }

    /// Unclamped per-cut widths (`len == t + 1`), same counting rules as
    /// [`width_profile`](Self::width_profile) but before the ≥1 clamp.
    ///
    /// Uses the manager-owned stamped scratch, so a call costs O(visited
    /// nodes) with no arena-sized allocation — this is the sifting cost
    /// evaluator's workhorse.
    pub(crate) fn width_cuts_raw(&mut self, roots: &[NodeId]) -> Vec<i64> {
        let t = self.num_vars();
        let mut scratch = self.take_width_scratch();
        // Scratch value = min-parent-level + 1, so external root pointers
        // (level −1) encode as 0 and the encoding stays unsigned.
        let mut stack: Vec<NodeId> = Vec::with_capacity(roots.len());
        let mut seen: Vec<u32> = Vec::new();
        for &root in roots {
            if root == FALSE {
                continue;
            }
            if scratch.get(root.0).is_none() {
                seen.push(root.0);
                stack.push(root);
            }
            scratch.set(root.0, 0);
        }
        while let Some(n) = stack.pop() {
            if self.is_const(n) {
                continue;
            }
            let encoded = self.level_of_node(n) + 1;
            for child in [self.lo(n), self.hi(n)] {
                if child == FALSE {
                    continue;
                }
                match scratch.get(child.0) {
                    None => {
                        scratch.set(child.0, encoded);
                        seen.push(child.0);
                        stack.push(child);
                    }
                    Some(current) if encoded < current => scratch.set(child.0, encoded),
                    Some(_) => {}
                }
            }
        }
        let mut delta = vec![0i64; t + 2];
        for &raw in &seen {
            let n = self.brand(raw);
            let lo = scratch.get(raw).unwrap_or(0) as usize;
            let hi = (self.level_of_node(n) as usize).min(t);
            if lo <= hi {
                delta[lo] += 1;
                delta[hi + 1] -= 1;
            }
        }
        self.put_width_scratch(scratch);
        let mut cuts = Vec::with_capacity(t + 1);
        let mut acc = 0i64;
        for d in delta.iter().take(t + 1) {
            acc += d;
            cuts.push(acc);
        }
        cuts
    }

    /// Sum of clamped cut widths — identical to
    /// `width_profile(roots).sum()` but allocation-light (see
    /// [`width_cuts_raw`](Self::width_cuts_raw)).
    pub(crate) fn width_sum(&mut self, roots: &[NodeId]) -> usize {
        self.width_cuts_raw(roots)
            .iter()
            .map(|&c| c.max(1) as usize)
            .sum()
    }

    /// Unclamped width at a single cut `c`: the number of distinct
    /// non-`FALSE` nodes hanging below it (nodes reached by an edge from a
    /// node above the cut, or by an external root pointer, that lie at or
    /// below the cut).
    ///
    /// The traversal prunes at the cut: only nodes *above* `c` are
    /// visited, so the cost is proportional to the upper part of the BDD.
    /// This is what makes incremental sifting cheap — an adjacent swap at
    /// level `l` can only change the width at cut `l + 1`, because every
    /// other cut's width is the number of distinct non-zero cofactors with
    /// respect to the *set* of variables above it, and a swap permutes
    /// variables without changing any other above-cut set.
    pub(crate) fn width_at_cut(&mut self, roots: &[NodeId], c: u32) -> i64 {
        let mut scratch = self.take_width_scratch();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut hanging = 0i64;
        // Seed with the external root pointers (parents at level −1 < c).
        for &root in roots {
            if root == FALSE || scratch.get(root.0).is_some() {
                continue;
            }
            scratch.set(root.0, 0);
            if self.level_of_node(root) >= c {
                hanging += 1;
            } else {
                stack.push(root);
            }
        }
        while let Some(n) = stack.pop() {
            for child in [self.lo(n), self.hi(n)] {
                if child == FALSE || scratch.get(child.0).is_some() {
                    continue;
                }
                scratch.set(child.0, 0);
                if self.level_of_node(child) >= c {
                    hanging += 1;
                } else {
                    stack.push(child);
                }
            }
        }
        self.put_width_scratch(scratch);
        hanging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Var;

    #[test]
    fn profile_of_a_literal() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let p = mgr.width_profile(&[a]);
        // Cut 0: root. Cut 1: TRUE (edge v0 -> TRUE skips level 1).
        // Cut 2: TRUE.
        assert_eq!(p.cuts(), &[1, 1, 1]);
        assert_eq!(p.max(), 1);
        assert_eq!(p.at_height(0), 1);
    }

    #[test]
    fn profile_of_xor_chain() {
        // XOR of n variables has width 2 everywhere strictly inside.
        let n = 5;
        let mut mgr = BddManager::new(n);
        let mut f = FALSE;
        for i in 0..n {
            let v = mgr.var(Var(i as u32));
            f = mgr.xor(f, v);
        }
        let p = mgr.width_profile(&[f]);
        assert_eq!(p.at_cut(0), 1, "only the root crosses the top cut");
        for c in 1..n {
            assert_eq!(p.at_cut(c), 2, "two parity classes at cut {c}");
        }
        assert_eq!(p.at_cut(n), 1, "only TRUE at the bottom (FALSE excluded)");
        assert_eq!(p.max(), 2);
        assert_eq!(p.sum(), 2 * (n - 1) + 2);
    }

    #[test]
    fn skipped_levels_still_cross() {
        // f = v0 AND v2 over vars {v0, v1, v2}: the edge from the v0 node to
        // the v2 node crosses the cut above v1.
        let mut mgr = BddManager::new(3);
        let a = mgr.var(Var(0));
        let c = mgr.var(Var(2));
        let f = mgr.and(a, c);
        let p = mgr.width_profile(&[f]);
        assert_eq!(p.cuts(), &[1, 1, 1, 1]);
        // Now f = (v0 AND v2) OR (NOT v0 AND NOT v2): two v2-classes cross cut 1.
        let na = mgr.not(a);
        let nc = mgr.not(c);
        let g0 = mgr.and(na, nc);
        let g = mgr.or(f, g0);
        let p = mgr.width_profile(&[g]);
        assert_eq!(p.at_cut(1), 2);
        assert_eq!(p.at_cut(2), 2);
    }

    #[test]
    fn multi_rooted_profile_unions_roots() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let p = mgr.width_profile(&[a, b]);
        // Cut 0: node(a) and node(b) both hang below the external pointers.
        assert_eq!(p.at_cut(0), 2);
        assert_eq!(p.at_cut(1), 2, "node(b) and TRUE (via a's hi edge)");
    }

    #[test]
    fn width_of_constants() {
        let mgr = BddManager::new(3);
        let p = mgr.width_profile(&[crate::TRUE]);
        assert_eq!(p.max(), 1);
        let p = mgr.width_profile(&[FALSE]);
        // All-zero: every cut is empty, clamped to the defined minimum 1.
        assert_eq!(p.max(), 1);
    }

    #[test]
    fn scratch_based_width_matches_the_profile() {
        // width_sum / width_at_cut are the sifting fast paths; they must
        // agree exactly with the public profile on every cut, including
        // after swaps and on multi-rooted BDDs.
        let mut mgr = BddManager::new(4);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let c = mgr.var(Var(2));
        let d = mgr.var(Var(3));
        let ac = mgr.and(a, c);
        let bd = mgr.and(b, d);
        let f = mgr.or(ac, bd);
        let g = mgr.xor(b, c);
        for roots in [vec![f], vec![f, g], vec![f, crate::TRUE, FALSE]] {
            let p = mgr.width_profile(&roots);
            assert_eq!(mgr.width_sum(&roots), p.sum());
            let raw = mgr.width_cuts_raw(&roots);
            assert_eq!(raw.len(), p.len());
            for (cut, &raw_cut) in raw.iter().enumerate() {
                assert_eq!(raw_cut.max(1) as usize, p.at_cut(cut), "cut {cut}");
                assert_eq!(mgr.width_at_cut(&roots, cut as u32), raw_cut, "cut {cut}");
            }
        }
        // Same agreement in a permuted order reached by a swap.
        let roots = mgr.swap_adjacent(1, &[f, g]);
        let p = mgr.width_profile(&roots);
        assert_eq!(mgr.width_sum(&roots), p.sum());
        for cut in 0..p.len() {
            assert_eq!(
                mgr.width_at_cut(&roots, cut as u32).max(1) as usize,
                p.at_cut(cut),
                "cut {cut} after swap"
            );
        }
    }

    #[test]
    fn height_indexing_mirrors_cut_indexing() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let f = mgr.or(a, b);
        let p = mgr.width_profile(&[f]);
        let t = 4;
        for c in 0..=t {
            assert_eq!(p.at_cut(c), p.at_height(t - c));
        }
    }
}
