//! Graphviz DOT export for visual inspection of BDDs.
//!
//! Follows the paper's drawing conventions: solid lines are 1-edges, dotted
//! lines are 0-edges, and edges to the constant 0 can be suppressed (the
//! paper omits the 0 terminal entirely in its figures, e.g. Fig. 2).

use crate::manager::{BddManager, NodeId, Var, FALSE, TRUE};
use std::io;

/// Options controlling [`BddManager::to_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Suppress the constant-0 node and all edges into it (paper style).
    pub hide_false: bool,
    /// Graph name.
    pub name: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            hide_false: true,
            name: "bdd".to_owned(),
        }
    }
}

impl BddManager {
    /// Streams the BDD(s) rooted at `roots` as Graphviz DOT into a writer,
    /// propagating I/O failures (a full disk is an error, not a panic).
    ///
    /// `label` maps each variable to its display name; same-level nodes are
    /// ranked together.
    pub fn write_dot<W: io::Write>(
        &self,
        w: &mut W,
        roots: &[NodeId],
        label: impl Fn(Var) -> String,
        options: &DotOptions,
    ) -> io::Result<()> {
        writeln!(w, "digraph {} {{", options.name)?;
        writeln!(w, "  rankdir=TB;")?;
        let mut nodes = self.descendants(roots);
        nodes.sort_by_key(|&n| (self.level_of_node(n), n));

        // Rank groups per level.
        let mut current_level = None;
        for &n in &nodes {
            let level = self.level_of_node(n);
            if current_level != Some(level) {
                if current_level.is_some() {
                    writeln!(w, "  }}")?;
                }
                writeln!(w, "  {{ rank=same;")?;
                current_level = Some(level);
            }
            writeln!(
                w,
                "    n{} [label=\"{}\", shape=circle];",
                n.0,
                label(self.var_of(n))
            )?;
        }
        if current_level.is_some() {
            writeln!(w, "  }}")?;
        }
        let mut used_true = false;
        let mut used_false = false;
        for &n in &nodes {
            for (child, style) in [(self.lo(n), "dotted"), (self.hi(n), "solid")] {
                if child == FALSE && options.hide_false {
                    continue;
                }
                used_true |= child == TRUE;
                used_false |= child == FALSE;
                writeln!(w, "  n{} -> n{} [style={}];", n.0, child.0, style)?;
            }
        }
        for &root in roots {
            used_true |= root == TRUE;
            used_false |= root == FALSE && !options.hide_false;
        }
        if used_true {
            writeln!(w, "  n{} [label=\"1\", shape=box];", TRUE.0)?;
        }
        if used_false {
            writeln!(w, "  n{} [label=\"0\", shape=box];", FALSE.0)?;
        }
        writeln!(w, "}}")
    }

    /// Renders the BDD(s) rooted at `roots` as a Graphviz DOT string.
    ///
    /// Convenience wrapper over [`write_dot`](Self::write_dot); writing into
    /// memory cannot fail.
    pub fn to_dot(
        &self,
        roots: &[NodeId],
        label: impl Fn(Var) -> String,
        options: &DotOptions,
    ) -> String {
        let mut out = Vec::new();
        self.write_dot(&mut out, roots, label, options)
            .expect("invariant: writing DOT to memory cannot fail");
        String::from_utf8(out).expect("invariant: DOT output is ASCII")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let f = mgr.and(a, b);
        let dot = mgr.to_dot(&[f], |v| format!("x{}", v.0), &DotOptions::default());
        assert!(dot.contains("digraph bdd"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=solid"));
        assert!(!dot.contains("style=dotted") || dot.contains("style=dotted"));
        assert!(dot.contains("label=\"1\""));
    }

    #[test]
    fn hide_false_suppresses_zero_terminal() {
        let mut mgr = BddManager::new(1);
        let a = mgr.var(Var(0));
        let hidden = mgr.to_dot(&[a], |v| format!("x{}", v.0), &DotOptions::default());
        assert!(!hidden.contains("label=\"0\""));
        let shown = mgr.to_dot(
            &[a],
            |v| format!("x{}", v.0),
            &DotOptions {
                hide_false: false,
                name: "g".into(),
            },
        );
        assert!(shown.contains("label=\"0\""));
    }

    #[test]
    fn write_dot_propagates_io_errors() {
        struct Full;
        impl io::Write for Full {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut mgr = BddManager::new(1);
        let a = mgr.var(Var(0));
        let err = mgr
            .write_dot(
                &mut Full,
                &[a],
                |v| format!("x{}", v.0),
                &DotOptions::default(),
            )
            .expect_err("full disk must surface");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }
}
