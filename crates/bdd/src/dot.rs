//! Graphviz DOT export for visual inspection of BDDs.
//!
//! Follows the paper's drawing conventions: solid lines are 1-edges, dotted
//! lines are 0-edges, and edges to the constant 0 can be suppressed (the
//! paper omits the 0 terminal entirely in its figures, e.g. Fig. 2).

use crate::manager::{BddManager, NodeId, Var, FALSE, TRUE};
use std::fmt::Write as _;

/// Options controlling [`BddManager::to_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Suppress the constant-0 node and all edges into it (paper style).
    pub hide_false: bool,
    /// Graph name.
    pub name: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            hide_false: true,
            name: "bdd".to_owned(),
        }
    }
}

impl BddManager {
    /// Renders the BDD(s) rooted at `roots` as a Graphviz DOT string.
    ///
    /// `label` maps each variable to its display name; same-level nodes are
    /// ranked together.
    pub fn to_dot(
        &self,
        roots: &[NodeId],
        label: impl Fn(Var) -> String,
        options: &DotOptions,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", options.name);
        let _ = writeln!(out, "  rankdir=TB;");
        let mut nodes = self.descendants(roots);
        nodes.sort_by_key(|&n| (self.level_of_node(n), n));

        // Rank groups per level.
        let mut current_level = None;
        for &n in &nodes {
            let level = self.level_of_node(n);
            if current_level != Some(level) {
                if current_level.is_some() {
                    let _ = writeln!(out, "  }}");
                }
                let _ = writeln!(out, "  {{ rank=same;");
                current_level = Some(level);
            }
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\", shape=circle];",
                n.0,
                label(self.var_of(n))
            );
        }
        if current_level.is_some() {
            let _ = writeln!(out, "  }}");
        }
        let mut used_true = false;
        let mut used_false = false;
        for &n in &nodes {
            for (child, style) in [(self.lo(n), "dotted"), (self.hi(n), "solid")] {
                if child == FALSE && options.hide_false {
                    continue;
                }
                used_true |= child == TRUE;
                used_false |= child == FALSE;
                let _ = writeln!(out, "  n{} -> n{} [style={}];", n.0, child.0, style);
            }
        }
        for &root in roots {
            used_true |= root == TRUE;
            used_false |= root == FALSE && !options.hide_false;
        }
        if used_true {
            let _ = writeln!(out, "  n{} [label=\"1\", shape=box];", TRUE.0);
        }
        if used_false {
            let _ = writeln!(out, "  n{} [label=\"0\", shape=box];", FALSE.0);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let f = mgr.and(a, b);
        let dot = mgr.to_dot(&[f], |v| format!("x{}", v.0), &DotOptions::default());
        assert!(dot.contains("digraph bdd"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=solid"));
        assert!(!dot.contains("style=dotted") || dot.contains("style=dotted"));
        assert!(dot.contains("label=\"1\""));
    }

    #[test]
    fn hide_false_suppresses_zero_terminal() {
        let mut mgr = BddManager::new(1);
        let a = mgr.var(Var(0));
        let hidden = mgr.to_dot(&[a], |v| format!("x{}", v.0), &DotOptions::default());
        assert!(!hidden.contains("label=\"0\""));
        let shown = mgr.to_dot(
            &[a],
            |v| format!("x{}", v.0),
            &DotOptions {
                hide_false: false,
                name: "g".into(),
            },
        );
        assert!(shown.contains("label=\"0\""));
    }
}
