//! Shared reduced ordered binary decision diagram (ROBDD) engine.
//!
//! This crate is the decision-diagram substrate for the `bddcf` workspace,
//! which reproduces Sasao & Matsuura, *"BDD representation for incompletely
//! specified multiple-output logic functions and its applications to
//! functional decomposition"* (DAC 2005).
//!
//! It provides:
//!
//! * [`BddManager`] — a shared ROBDD store with a unique table, operation
//!   caches, and an explicit variable order that can be permuted at run time.
//! * Boolean operations: [`BddManager::and`], [`BddManager::or`],
//!   [`BddManager::xor`], [`BddManager::not`], [`BddManager::ite`],
//!   cofactors, [`BddManager::compose`], and existential/universal
//!   quantification.
//! * Structural analytics: node counts, support sets, exact satisfying
//!   assignment counts, and the *width profile* of Definition 3.5 of the
//!   paper ([`width::WidthProfile`]).
//! * Dynamic variable reordering: adjacent level swaps and Rudell-style
//!   sifting with *precedence constraints* (needed because a `BDD_for_CF`
//!   must keep each output variable below the support of its function) and a
//!   selectable cost function (node count or sum of widths, as the paper
//!   uses).
//! * Bulk constructors from minterm and cube lists
//!   ([`BddManager::from_minterms`], [`BddManager::cube`]).
//! * Symbolic unsigned bit-vector arithmetic ([`bv`]) used to build the
//!   paper's arithmetic benchmark functions (radix converters, adders,
//!   multipliers) without enumerating their exponential truth tables.
//! * A multi-terminal BDD engine ([`mtbdd`]) for the MTBDD-vs-BDD_for_CF
//!   comparisons the paper makes.
//!
//! # Example
//!
//! ```
//! use bddcf_bdd::{BddManager, Var};
//!
//! let mut mgr = BddManager::new(3);
//! let x0 = mgr.var(Var(0));
//! let x1 = mgr.var(Var(1));
//! let x2 = mgr.var(Var(2));
//! let f = mgr.and(x0, x1);
//! let f = mgr.or(f, x2);
//! assert_eq!(mgr.sat_count(f), 5); // x0·x1 ∨ x2 has 5 of 8 minterms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod bv;
pub mod clock;
pub mod dot;
pub mod exact;
pub mod hasher;
pub mod manager;
pub mod mtbdd;
pub mod reorder;
pub mod snapshot;
pub mod table;
pub mod vfs;
pub mod width;

pub use budget::{Budget, CancelToken, Error};
pub use clock::{Clock, FakeClock, MonotonicClock};
pub use exact::ExactWidth;
pub use manager::{BddManager, BinOp, IntegrityViolation, NodeId, OrderError, Var, FALSE, TRUE};
pub use reorder::{ReorderCost, SiftConstraints};
pub use snapshot::SnapshotError;
pub use table::{CacheStats, EngineStats};
pub use vfs::{splitmix64, write_atomic, FaultPlan, FaultVfs, StdVfs, Vfs, VfsEvent, WriteFault};
pub use width::WidthProfile;
