//! A fast, non-cryptographic hasher for the unique table and operation
//! caches.
//!
//! BDD packages are dominated by hash-table lookups on small fixed-size keys
//! (tuples of 32-bit node ids). The standard library's SipHash is
//! DoS-resistant but several times slower than necessary for that workload,
//! so we use a small multiply-rotate hasher in the spirit of `FxHash`
//! (rustc's internal hasher). Keys are attacker-free here: they are node
//! ids we allocate ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using [`FxLikeHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxLikeHasher>>;

/// `HashSet` alias using [`FxLikeHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxLikeHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher specialised for small integer keys.
#[derive(Default)]
pub struct FxLikeHasher {
    hash: u64,
}

impl FxLikeHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxLikeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently_in_practice() {
        let mut seen = FastSet::default();
        for a in 0u32..64 {
            for b in 0u32..64 {
                let mut h = FxLikeHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                seen.insert(h.finish());
            }
        }
        // Not a strict requirement of a hasher, but for these tiny dense key
        // sets a good mixer should be collision-free.
        assert_eq!(seen.len(), 64 * 64);
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut h1 = FxLikeHasher::default();
        let mut h2 = FxLikeHasher::default();
        h1.write_u64(0xdead_beef);
        h2.write_u64(0xdead_beef);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut h = FxLikeHasher::default();
        h.write(&[1, 2, 3]); // shorter than one 8-byte word
        let short = h.finish();
        let mut h = FxLikeHasher::default();
        h.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]); // crosses a word boundary
        assert_ne!(short, h.finish());
    }
}
