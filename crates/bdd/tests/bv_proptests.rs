//! Property tests for the symbolic bit-vector arithmetic: every operation
//! is compared against native `u64` arithmetic over random symbolic
//! operand widths and assignments.

use bddcf_bdd::bv;
use bddcf_bdd::{BddManager, Var};
use proptest::prelude::*;

/// Builds a manager with two symbolic operands of `wa` and `wb` bits.
fn operands(wa: usize, wb: usize) -> (BddManager, bv::BitVec, bv::BitVec) {
    let mut mgr = BddManager::new(wa + wb);
    let a = (0..wa).map(|i| mgr.var(Var(i as u32))).collect();
    let b = (wa..wa + wb).map(|i| mgr.var(Var(i as u32))).collect();
    (mgr, a, b)
}

fn assignment(wa: usize, wb: usize, va: u64, vb: u64) -> Vec<bool> {
    (0..wa)
        .map(|i| va >> i & 1 == 1)
        .chain((0..wb).map(|i| vb >> i & 1 == 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_matches_u64(wa in 1usize..7, wb in 1usize..7, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let (mut mgr, a, b) = operands(wa, wb);
        let sum = bv::add(&mut mgr, &a, &b);
        let va = seed_a & ((1 << wa) - 1);
        let vb = seed_b & ((1 << wb) - 1);
        let assignment = assignment(wa, wb, va, vb);
        prop_assert_eq!(bv::eval(&mgr, &sum, &assignment), va + vb);
    }

    #[test]
    fn sub_matches_u64_when_no_borrow(w in 2usize..7, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let (mut mgr, a, b) = operands(w, w);
        let (diff, borrow) = bv::sub(&mut mgr, &a, &b);
        let va = seed_a & ((1 << w) - 1);
        let vb = seed_b & ((1 << w) - 1);
        let assignment = assignment(w, w, va, vb);
        prop_assert_eq!(mgr.eval(borrow, &assignment), va < vb);
        if va >= vb {
            prop_assert_eq!(bv::eval(&mgr, &diff, &assignment), va - vb);
        }
    }

    #[test]
    fn mul_matches_u64(wa in 1usize..6, wb in 1usize..6, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let (mut mgr, a, b) = operands(wa, wb);
        let product = bv::mul(&mut mgr, &a, &b);
        let va = seed_a & ((1 << wa) - 1);
        let vb = seed_b & ((1 << wb) - 1);
        let assignment = assignment(wa, wb, va, vb);
        prop_assert_eq!(bv::eval(&mgr, &product, &assignment), va * vb);
    }

    #[test]
    fn mul_const_matches_u64(w in 1usize..8, c in 0u64..100, seed in any::<u64>()) {
        let (mut mgr, a, _) = operands(w, 1);
        let product = bv::mul_const(&mut mgr, &a, c);
        let va = seed & ((1 << w) - 1);
        let assignment = assignment(w, 1, va, 0);
        prop_assert_eq!(bv::eval(&mgr, &product, &assignment), va * c);
    }

    #[test]
    fn divmod_matches_u64(w in 1usize..9, m in 1u64..30, seed in any::<u64>()) {
        let (mut mgr, a, _) = operands(w, 1);
        let (q, r) = bv::divmod_const(&mut mgr, &a, m);
        let va = seed & ((1 << w) - 1);
        let assignment = assignment(w, 1, va, 0);
        prop_assert_eq!(bv::eval(&mgr, &q, &assignment), va / m);
        prop_assert_eq!(bv::eval(&mgr, &r, &assignment), va % m);
    }

    #[test]
    fn comparisons_match_u64(w in 1usize..8, c in 0u64..300, seed in any::<u64>()) {
        let (mut mgr, a, _) = operands(w, 1);
        let lt = bv::lt_const(&mut mgr, &a, c);
        let ge = bv::ge_const(&mut mgr, &a, c);
        let eq = bv::eq_const(&mut mgr, &a, c);
        let va = seed & ((1 << w) - 1);
        let assignment = assignment(w, 1, va, 0);
        prop_assert_eq!(mgr.eval(lt, &assignment), va < c);
        prop_assert_eq!(mgr.eval(ge, &assignment), va >= c);
        prop_assert_eq!(mgr.eval(eq, &assignment), va == c);
    }

    #[test]
    fn horner_digit_composition(digits in prop::collection::vec(0u64..10, 1..5)) {
        // value = Σ dᵢ 10^i built digit-serially must equal direct arithmetic.
        let w = 4 * digits.len();
        let mut mgr = BddManager::new(w);
        let mut value: bv::BitVec = Vec::new();
        for d in 0..digits.len() {
            let scaled = bv::mul_const(&mut mgr, &value, 10);
            let digit: bv::BitVec = (0..4).map(|b| mgr.var(Var((4 * d + b) as u32))).collect();
            value = bv::add(&mut mgr, &scaled, &digit);
        }
        let mut assignment = vec![false; w];
        let mut expect = 0u64;
        for (d, &digit) in digits.iter().enumerate() {
            expect = expect * 10 + digit;
            for b in 0..4 {
                assignment[4 * d + b] = digit >> b & 1 == 1;
            }
        }
        prop_assert_eq!(bv::eval(&mgr, &value, &assignment), expect);
    }
}
