//! Property-based tests for the snapshot wire format: random managers
//! (random expressions under random variable permutations, optionally
//! garbage-collected) must round-trip through `snapshot_bytes` /
//! `from_snapshot_bytes` with an exact arena bijection — and corrupted
//! snapshots must always yield typed, offset-carrying errors, never a
//! panic or a structurally unsound manager.

use bddcf_bdd::snapshot::ByteReader;
use bddcf_bdd::{BddManager, NodeId, SnapshotError, Var};
use proptest::prelude::*;

/// A tiny Boolean expression AST, mirroring `tests/proptests.rs`.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn build(&self, mgr: &mut BddManager) -> NodeId {
        match self {
            Expr::Var(i) => mgr.var(Var(*i)),
            Expr::Not(e) => {
                let f = e.build(mgr);
                mgr.not(f)
            }
            Expr::And(a, b) => {
                let fa = a.build(mgr);
                let fb = b.build(mgr);
                mgr.and(fa, fb)
            }
            Expr::Or(a, b) => {
                let fa = a.build(mgr);
                let fb = b.build(mgr);
                mgr.or(fa, fb)
            }
            Expr::Xor(a, b) => {
                let fa = a.build(mgr);
                let fb = b.build(mgr);
                mgr.xor(fa, fb)
            }
        }
    }
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// A random permutation of the `NVARS` variables, derived from a seed by
/// Fisher–Yates over a splitmix64 stream (the vendored proptest shim has
/// no shuffle strategy).
fn permutation_from_seed(mut seed: u64) -> Vec<Var> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<Var> = (0..NVARS).map(Var).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    order
}

/// Builds a manager holding `exprs` under `order`, optionally collected
/// down to the last root.
fn build_manager(exprs: &[Expr], order: &[Var], collect: bool) -> (BddManager, Vec<NodeId>) {
    let mut mgr = BddManager::new(NVARS as usize);
    mgr.set_order(order);
    let mut roots: Vec<NodeId> = exprs.iter().map(|e| e.build(&mut mgr)).collect();
    if collect {
        if let Some(&last) = roots.last() {
            roots = mgr.gc(&[last]);
        }
    }
    (mgr, roots)
}

proptest! {
    /// Serialize → restore → the restored manager is structurally sound,
    /// has the identical arena (triple for triple, checked via re-encoding
    /// byte equality), the identical order, and evaluates every root to the
    /// same function.
    #[test]
    fn snapshot_round_trip_is_an_arena_bijection(
        exprs in prop::collection::vec(arb_expr(), 1..4),
        order_seed in 0u64..u64::MAX,
        collect in 0u32..2,
    ) {
        let order = permutation_from_seed(order_seed);
        let (mgr, roots) = build_manager(&exprs, &order, collect == 1);
        let bytes = mgr.snapshot_bytes();
        let restored = BddManager::from_snapshot_bytes(&bytes).expect("round trip");

        prop_assert!(restored.check_integrity().is_ok());
        prop_assert_eq!(restored.num_vars(), mgr.num_vars());
        prop_assert_eq!(restored.arena_len(), mgr.arena_len());
        prop_assert_eq!(restored.order(), mgr.order());
        // Arena bijection: identical serialized form means every interior
        // node has the same (var, lo, hi) at the same index.
        prop_assert_eq!(restored.snapshot_bytes(), bytes);
        // Same ids denote the same functions in both managers.
        for bits in 0..1u32 << NVARS {
            let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            for &root in &roots {
                prop_assert_eq!(restored.eval(root, &a), mgr.eval(root, &a));
            }
        }
    }

    /// A legacy v1 snapshot (no unique-table geometry word) of any random
    /// manager still loads, is structurally sound, preserves every root's
    /// function, and migrates to a stable v2 form: reserializing writes
    /// version 2 bytes that round-trip byte-identically thereafter.
    #[test]
    fn v1_snapshots_migrate_losslessly(
        exprs in prop::collection::vec(arb_expr(), 1..4),
        order_seed in 0u64..u64::MAX,
        collect in 0u32..2,
    ) {
        let order = permutation_from_seed(order_seed);
        let (mgr, roots) = build_manager(&exprs, &order, collect == 1);
        let v1 = mgr.snapshot_bytes_v1();
        let restored = BddManager::from_snapshot_bytes(&v1).expect("v1 load");
        prop_assert!(restored.check_integrity().is_ok());
        prop_assert_eq!(restored.arena_len(), mgr.arena_len());
        prop_assert_eq!(restored.order(), mgr.order());
        for bits in 0..1u32 << NVARS {
            let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            for &root in &roots {
                prop_assert_eq!(restored.eval(root, &a), mgr.eval(root, &a));
            }
        }
        // Migration: the reserialized form is v2 and self-stable.
        let v2 = restored.snapshot_bytes();
        prop_assert_eq!(&v2[8..12], &2u32.to_le_bytes());
        let migrated = BddManager::from_snapshot_bytes(&v2).expect("migrated load");
        prop_assert_eq!(migrated.snapshot_bytes(), v2);
    }

    /// Truncating a valid snapshot anywhere yields a typed error (and
    /// never a panic): `Truncated` with the cut offset when the header or
    /// checksum is cut short, `ChecksumMismatch` or `Malformed` when only
    /// payload is lost.
    #[test]
    fn truncation_always_yields_typed_errors(
        exprs in prop::collection::vec(arb_expr(), 1..3),
        cut_pos in 0usize..100_000,
    ) {
        let (mgr, _) = build_manager(&exprs, &(0..NVARS).map(Var).collect::<Vec<_>>(), false);
        let bytes = mgr.snapshot_bytes();
        let cut = cut_pos % bytes.len();
        let err = BddManager::from_snapshot_bytes(&bytes[..cut])
            .expect_err("truncated snapshot must not parse");
        match err {
            SnapshotError::Truncated { offset, needed } => {
                prop_assert!(offset <= cut);
                prop_assert!(needed > 0);
            }
            SnapshotError::ChecksumMismatch { .. } | SnapshotError::Malformed { .. } => {}
            other => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Flipping any single byte of a valid snapshot is always detected:
    /// header flips surface as magic/version errors, payload flips as a
    /// checksum mismatch (or a typed truncation when the flip lands in a
    /// length-bearing field). Nothing panics; nothing parses silently.
    #[test]
    fn single_byte_corruption_is_always_detected(
        exprs in prop::collection::vec(arb_expr(), 1..3),
        position_pos in 0usize..100_000,
        flip_minus_one in 0u8..255,
    ) {
        let (mgr, _) = build_manager(&exprs, &(0..NVARS).map(Var).collect::<Vec<_>>(), false);
        let mut bytes = mgr.snapshot_bytes();
        let position = position_pos % bytes.len();
        bytes[position] ^= flip_minus_one + 1;
        let err = BddManager::from_snapshot_bytes(&bytes)
            .expect_err("a flipped byte must never parse");
        match err {
            SnapshotError::BadMagic => prop_assert!(position < 8),
            SnapshotError::UnsupportedVersion { found, supported } => {
                prop_assert!(found != supported);
            }
            SnapshotError::ChecksumMismatch { expected, found } => {
                prop_assert!(expected != found);
            }
            SnapshotError::Truncated { .. } | SnapshotError::Malformed { .. } => {}
        }
    }
}

/// One step of the interleaved engine-ops test.
#[derive(Clone, Copy, Debug)]
enum EngineOp {
    /// Combine pooled functions (drives `mk`, `ite`, and unique-table
    /// growth/rehash).
    Combine {
        a: usize,
        b: usize,
        c: usize,
        kind: u8,
    },
    /// Mark-and-rebuild collection (compaction + deterministic rehash).
    Gc,
    /// Adjacent level swap followed by a collection — the sifter's
    /// swap-then-collect cadence (rebuild + O(1) cache invalidation +
    /// compaction rehash). The collection is part of the op because a bare
    /// swap intentionally leaves order-inconsistent *garbage* behind,
    /// which the full-arena integrity walk would flag; the reachable
    /// structure is only auditable at collected boundaries.
    Swap { level: u32 },
    /// Serialize and continue on the restored manager (the snapshot
    /// contract keeps pooled ids valid across the round trip).
    Roundtrip,
}

fn arb_engine_op() -> impl Strategy<Value = EngineOp> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<usize>(), any::<u8>())
            .prop_map(|(a, b, c, kind)| EngineOp::Combine { a, b, c, kind }),
        (any::<usize>(), any::<usize>(), any::<usize>(), any::<u8>())
            .prop_map(|(a, b, c, kind)| EngineOp::Combine { a, b, c, kind }),
        Just(EngineOp::Gc),
        (0u32..NVARS - 1).prop_map(|level| EngineOp::Swap { level }),
        Just(EngineOp::Roundtrip),
    ]
}

proptest! {
    /// Random interleavings of `mk`/`ite`, garbage collection, adjacent
    /// swaps, and snapshot round trips: after *every* step the arena must
    /// pass the full integrity walk (which includes unique-table
    /// canonicity — no duplicate or unregistered interior nodes) and every
    /// pooled function must still evaluate to its tracked truth vector.
    #[test]
    fn interleaved_ops_keep_the_arena_canonical(
        ops in prop::collection::vec(arb_engine_op(), 1..20),
        order_seed in 0u64..u64::MAX,
    ) {
        let order = permutation_from_seed(order_seed);
        let mut mgr = BddManager::new(NVARS as usize);
        mgr.set_order(&order);
        // Pool of (root, truth vector over all 2^NVARS assignments).
        let mut pool: Vec<(NodeId, u64)> = (0..NVARS)
            .map(|i| {
                let f = mgr.var(Var(i));
                let mut mask = 0u64;
                for bits in 0..1u64 << NVARS {
                    if bits >> i & 1 == 1 {
                        mask |= 1 << bits;
                    }
                }
                (f, mask)
            })
            .collect();
        for op in ops {
            match op {
                EngineOp::Combine { a, b, c, kind } => {
                    let n = pool.len();
                    let (fa, ma) = pool[a % n];
                    let (fb, mb) = pool[b % n];
                    let (fc, mc) = pool[c % n];
                    let entry = match kind % 4 {
                        0 => (mgr.and(fa, fb), ma & mb),
                        1 => (mgr.or(fa, fb), ma | mb),
                        2 => (mgr.xor(fa, fb), ma ^ mb),
                        _ => (mgr.ite(fa, fb, fc), (ma & mb) | (!ma & mc)),
                    };
                    pool.push(entry);
                    if pool.len() > 10 {
                        pool.remove(0); // dropped roots become gc fodder
                    }
                }
                EngineOp::Gc => {
                    let roots: Vec<NodeId> = pool.iter().map(|e| e.0).collect();
                    let remapped = mgr.gc(&roots);
                    for (entry, id) in pool.iter_mut().zip(remapped) {
                        entry.0 = id;
                    }
                }
                EngineOp::Swap { level } => {
                    let roots: Vec<NodeId> = pool.iter().map(|e| e.0).collect();
                    let swapped = mgr.swap_adjacent(level, &roots);
                    let remapped = mgr.gc(&swapped);
                    for (entry, id) in pool.iter_mut().zip(remapped) {
                        entry.0 = id;
                    }
                }
                EngineOp::Roundtrip => {
                    let bytes = mgr.snapshot_bytes();
                    mgr = BddManager::from_snapshot_bytes(&bytes).expect("roundtrip");
                }
            }
            prop_assert!(mgr.check_integrity().is_ok(), "integrity after {op:?}");
            for (root, mask) in &pool {
                for bits in 0..1u64 << NVARS {
                    let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
                    prop_assert!(
                        mgr.eval(*root, &a) == (mask >> bits & 1 == 1),
                        "function drift after {op:?}"
                    );
                }
            }
        }
    }
}

/// The deterministic corruption table from the issue: truncation, bad
/// magic, bad checksum, and version skew all map to their dedicated,
/// offset-carrying variants.
#[test]
fn corruption_table_maps_to_typed_errors() {
    let mut mgr = BddManager::new(4);
    let a = mgr.var(Var(0));
    let b = mgr.var(Var(1));
    let c = mgr.var(Var(2));
    let ab = mgr.and(a, b);
    let _f = mgr.xor(ab, c);
    let good = mgr.snapshot_bytes();
    assert!(BddManager::from_snapshot_bytes(&good).is_ok());

    // Truncation inside the fixed header.
    let err = BddManager::from_snapshot_bytes(&good[..5]).expect_err("truncated header");
    assert!(matches!(err, SnapshotError::Truncated { offset: 0, .. }));

    // Truncation that removes the checksum trailer.
    let err =
        BddManager::from_snapshot_bytes(&good[..good.len() - 4]).expect_err("truncated trailer");
    assert!(matches!(
        err,
        SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
    ));

    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(
        BddManager::from_snapshot_bytes(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // Version skew.
    let mut skewed = good.clone();
    skewed[8] = 99;
    assert!(matches!(
        BddManager::from_snapshot_bytes(&skewed),
        Err(SnapshotError::UnsupportedVersion { found: 99, .. })
    ));

    // Bad checksum: flip one payload byte past the header.
    let mut flipped = good.clone();
    let mid = good.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(matches!(
        BddManager::from_snapshot_bytes(&flipped),
        Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Malformed { .. })
    ));

    // Empty input.
    assert!(matches!(
        BddManager::from_snapshot_bytes(&[]),
        Err(SnapshotError::Truncated { offset: 0, .. })
    ));
}

/// `ByteReader` reports the absolute offset of a short read even when it
/// was created with a non-zero base (as the checkpoint decoder does for
/// its embedded manager snapshot).
#[test]
fn byte_reader_offsets_account_for_the_base() {
    let mut r = ByteReader::with_base(&[1, 2, 3], 100);
    assert_eq!(r.u32().expect_err("3 < 4 bytes"), {
        SnapshotError::Truncated {
            offset: 100,
            needed: 1, // 3 of the 4 requested bytes were present
        }
    });
}
