//! Property-based tests for the ROBDD engine: random Boolean expressions
//! are evaluated both through the BDD and through a direct interpreter, and
//! structural invariants (canonicity, reduction, order) are checked.

use bddcf_bdd::{BddManager, NodeId, ReorderCost, SiftConstraints, Var, FALSE, TRUE};
use proptest::prelude::*;

/// A tiny Boolean expression AST for cross-checking.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Var(i) => assignment[*i as usize],
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
            Expr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
        }
    }

    fn build(&self, mgr: &mut BddManager) -> NodeId {
        match self {
            Expr::Var(i) => mgr.var(Var(*i)),
            Expr::Not(e) => {
                let f = e.build(mgr);
                mgr.not(f)
            }
            Expr::And(a, b) => {
                let fa = a.build(mgr);
                let fb = b.build(mgr);
                mgr.and(fa, fb)
            }
            Expr::Or(a, b) => {
                let fa = a.build(mgr);
                let fb = b.build(mgr);
                mgr.or(fa, fb)
            }
            Expr::Xor(a, b) => {
                let fa = a.build(mgr);
                let fb = b.build(mgr);
                mgr.xor(fa, fb)
            }
        }
    }
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn all_assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits >> i & 1 == 1).collect())
}

proptest! {
    #[test]
    fn bdd_agrees_with_interpreter(expr in arb_expr()) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        for a in all_assignments() {
            prop_assert_eq!(mgr.eval(f, &a), expr.eval(&a));
        }
    }

    #[test]
    fn canonicity_equal_functions_equal_ids(e1 in arb_expr(), e2 in arb_expr()) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f1 = e1.build(&mut mgr);
        let f2 = e2.build(&mut mgr);
        let equal_semantically = all_assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        prop_assert_eq!(f1 == f2, equal_semantically);
    }

    #[test]
    fn sat_count_matches_enumeration(expr in arb_expr()) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let brute = all_assignments().filter(|a| expr.eval(a)).count() as u128;
        prop_assert_eq!(mgr.sat_count(f), brute);
    }

    #[test]
    fn shannon_expansion_reconstructs(expr in arb_expr(), var in 0..NVARS) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let f0 = mgr.restrict(f, Var(var), false);
        let f1 = mgr.restrict(f, Var(var), true);
        let x = mgr.var(Var(var));
        let rebuilt = mgr.ite(x, f1, f0);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn quantification_identities(expr in arb_expr(), var in 0..NVARS) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let f0 = mgr.restrict(f, Var(var), false);
        let f1 = mgr.restrict(f, Var(var), true);
        let e = mgr.exists(f, &[Var(var)]);
        let or = mgr.or(f0, f1);
        prop_assert_eq!(e, or, "∃x.f = f|x=0 ∨ f|x=1");
        let u = mgr.forall(f, &[Var(var)]);
        let and = mgr.and(f0, f1);
        prop_assert_eq!(u, and, "∀x.f = f|x=0 ∧ f|x=1");
    }

    #[test]
    fn compose_agrees_with_interpreter(e1 in arb_expr(), e2 in arb_expr(), var in 0..NVARS) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = e1.build(&mut mgr);
        let g = e2.build(&mut mgr);
        let composed = mgr.compose(f, Var(var), g);
        for a in all_assignments() {
            let mut substituted = a.clone();
            substituted[var as usize] = e2.eval(&a);
            prop_assert_eq!(mgr.eval(composed, &a), e1.eval(&substituted));
        }
    }

    #[test]
    fn gc_preserves_semantics(expr in arb_expr()) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let roots = mgr.gc(&[f]);
        for a in all_assignments() {
            prop_assert_eq!(mgr.eval(roots[0], &a), expr.eval(&a));
        }
    }

    #[test]
    fn swap_preserves_semantics_and_canonicity(expr in arb_expr(), level in 0..NVARS - 1) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let roots = mgr.swap_adjacent(level, &[f]);
        for a in all_assignments() {
            prop_assert_eq!(mgr.eval(roots[0], &a), expr.eval(&a));
        }
        // Swapping back must restore the original node (canonicity check).
        let back = mgr.swap_adjacent(level, &roots);
        prop_assert_eq!(back[0], f);
    }

    #[test]
    fn sifting_preserves_semantics(expr in arb_expr()) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let truth: Vec<bool> = all_assignments().map(|a| expr.eval(&a)).collect();
        let roots = mgr.sift(&[f], &SiftConstraints::none(), ReorderCost::NodeCount, 2);
        for (a, expect) in all_assignments().zip(truth) {
            prop_assert_eq!(mgr.eval(roots[0], &a), expect);
        }
    }

    #[test]
    fn width_profile_bounds_node_count(expr in arb_expr()) {
        let mut mgr = BddManager::new(NVARS as usize);
        let f = expr.build(&mut mgr);
        let profile = mgr.width_profile(&[f]);
        // Max width never exceeds the live node count + 1 (terminal), and
        // the sum of widths is at least the number of cuts.
        prop_assert!(profile.max() <= mgr.node_count(f) + 1);
        prop_assert!(profile.sum() >= profile.len());
    }

    #[test]
    fn from_minterms_equals_naive(minterms in prop::collection::vec(0u64..64, 0..20)) {
        let mut mgr = BddManager::new(NVARS as usize);
        let vars: Vec<Var> = (0..NVARS).map(Var).collect();
        let f = mgr.from_minterms(&vars, &minterms);
        for (idx, a) in all_assignments().enumerate() {
            let expect = minterms.contains(&(idx as u64));
            prop_assert_eq!(mgr.eval(f, &a), expect);
        }
    }

    #[test]
    fn terminal_cases(value in any::<bool>()) {
        let mut mgr = BddManager::new(2);
        let t = if value { TRUE } else { FALSE };
        let nt = mgr.not(t);
        prop_assert_eq!(nt == TRUE, !value);
    }
}
