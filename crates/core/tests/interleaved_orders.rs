//! Interleaved-order semantics: outputs placed above inputs that only
//! steer the don't-care set (the essential-support reading of Definition
//! 2.1), the backtracking walk evaluator, and the cascade choice map.

use bddcf_bdd::{Var, FALSE};
use bddcf_core::{Cf, CfLayout, IsfBdds};

/// A 4-input, 2-output function mimicking one "digit" of the adders:
/// inputs x1 x2 form digit A (codes 0..2 valid, code 3 invalid → all
/// outputs don't care), inputs x3 x4 form digit B (same). Output y1 = "A
/// has code 2" (essential support {x1,x2} only), y2 = parity of both
/// digit codes.
fn digit_like_cf(order: &[Var]) -> Cf {
    Cf::build_with_order(CfLayout::new(4, 2), order, |mgr, layout| {
        let x: Vec<_> = (0..4).map(|i| mgr.var(layout.input_var(i))).collect();
        // digit codes: A = x1 + 2 x2, B = x3 + 2 x4; code 3 invalid
        let a_invalid = mgr.and(x[0], x[1]);
        let b_invalid = mgr.and(x[2], x[3]);
        let invalid = mgr.or(a_invalid, b_invalid);
        let valid = mgr.not(invalid);
        // y1 = (A == 2) = ¬x1 · x2 ; y2 = x1 ⊕ x3 (parity of low bits)
        let nx0 = mgr.not(x[0]);
        let y1 = mgr.and(nx0, x[1]);
        let y2 = mgr.xor(x[0], x[2]);
        let on = vec![mgr.and(valid, y1), mgr.and(valid, y2)];
        let dc = vec![invalid, invalid];
        IsfBdds::from_on_dc(mgr, on, dc)
    })
}

/// The interleaved order: y1 right below its essential support {x1,x2},
/// above x3/x4 (which it only depends on through the don't-care set).
fn interleaved() -> Vec<Var> {
    vec![Var(0), Var(1), Var(4), Var(2), Var(3), Var(5)]
}

#[test]
fn essential_support_permits_the_interleaved_order() {
    // Constructing with the interleaved order must pass the Definition-2.4
    // check (it would panic otherwise).
    let cf = digit_like_cf(&interleaved());
    assert_eq!(cf.manager().var_at(2), Var(4), "y1 sits at level 2");
}

#[test]
fn interleaved_outputs_can_have_two_live_children() {
    let mut cf = digit_like_cf(&interleaved());
    // The Fig. 1 invariant may break under interleave…
    let well_formed = cf.output_nodes_well_formed();
    // …but the choice map must resolve every such node.
    let choices = cf.cascade_output_choices().expect("choices must exist");
    if !well_formed {
        assert!(!choices.is_empty(), "two-live-children nodes need choices");
    }
}

#[test]
fn walk_matches_spec_under_interleave() {
    let cf = digit_like_cf(&interleaved());
    for r in 0..16usize {
        let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
        let a_invalid = input[0] && input[1];
        let b_invalid = input[2] && input[3];
        if a_invalid || b_invalid {
            continue; // don't care row, anything goes
        }
        let word = cf.eval_completed(&input);
        let y1 = !input[0] && input[1];
        let y2 = input[0] ^ input[2];
        assert_eq!(word & 1 == 1, y1, "row {r} y1");
        assert_eq!(word >> 1 & 1 == 1, y2, "row {r} y2");
    }
}

#[test]
fn interleaved_and_block_orders_realize_the_same_spec() {
    let block = vec![Var(0), Var(1), Var(2), Var(3), Var(4), Var(5)];
    let cf_block = digit_like_cf(&block);
    let cf_inter = digit_like_cf(&interleaved());
    for r in 0..16usize {
        let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
        let a_invalid = input[0] && input[1];
        let b_invalid = input[2] && input[3];
        if a_invalid || b_invalid {
            continue;
        }
        assert_eq!(
            cf_block.eval_completed(&input),
            cf_inter.eval_completed(&input),
            "row {r}"
        );
    }
}

#[test]
fn fixed_choice_walk_never_dies_on_live_inputs() {
    // Emulates what a cascade cell does: the per-node choice is fixed once
    // and must be valid for every live input (no cascade dependency here —
    // this drives the choice map directly).
    let mut cf = digit_like_cf(&interleaved());
    let choices = cf.cascade_output_choices().expect("resolvable");
    // Walk every valid input with the fixed choices and check the result.
    for r in 0..16usize {
        let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
        if (input[0] && input[1]) || (input[2] && input[3]) {
            continue;
        }
        let mut cur = cf.root();
        let mut word = 0u64;
        let mgr = cf.manager();
        let layout = cf.layout();
        while cur != bddcf_bdd::TRUE {
            assert_ne!(cur, FALSE, "fixed-choice walk must not die on live inputs");
            match layout.role(mgr.var_of(cur)) {
                bddcf_core::Role::Input(i) => {
                    cur = if input[i] { mgr.hi(cur) } else { mgr.lo(cur) };
                }
                bddcf_core::Role::Output(j) => {
                    let lo = mgr.lo(cur);
                    let hi = mgr.hi(cur);
                    let take_hi = if lo == FALSE {
                        true
                    } else if hi == FALSE {
                        false
                    } else {
                        choices[&cur]
                    };
                    if take_hi {
                        word |= 1 << j;
                        cur = hi;
                    } else {
                        cur = lo;
                    }
                }
            }
        }
        let y1 = !input[0] && input[1];
        let y2 = input[0] ^ input[2];
        assert_eq!(word & 1 == 1, y1, "row {r} y1");
        assert_eq!(word >> 1 & 1 == 1, y2, "row {r} y2");
    }
}
