//! Concurrent access to `BDDCFCKP` checkpoint files.
//!
//! The serve daemon's spool makes checkpoints shared state: several
//! worker threads may load the same file at once (duplicate requests for
//! one spec), and a recovery scan may read a checkpoint while the owning
//! job is atomically replacing it (tmp + fsync + rename, the same
//! discipline `Checkpointer::save` uses). These tests pin down the two
//! guarantees that make that safe without any file locking:
//!
//! * loading is a pure read — any number of concurrent loaders decode
//!   the same bytes and resume to identical results;
//! * an atomic rewrite is all-or-nothing — a reader racing the rename
//!   sees the old version or the new one, never a torn hybrid.

use bddcf_bdd::Var;
use bddcf_core::checkpoint::encode_checkpoint;
use bddcf_core::{
    load_checkpoint, Alg33Options, Cf, CfLayout, Checkpointer, DegradationReport, FixpointCursor,
    IsfBdds, Progress,
};
use bddcf_logic::TruthTable;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn paper_cf() -> Cf {
    let table = TruthTable::paper_table1();
    let order = vec![Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)];
    Cf::build_with_order(CfLayout::new(4, 2), &order, |mgr, layout| {
        IsfBdds::from_truth_table(mgr, layout, &table)
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bddcf-ckpt-concurrent-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes `bytes` to `dir/name` with the spool's atomic discipline.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) {
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut file = std::fs::File::create(&tmp).expect("create tmp");
        std::io::Write::write_all(&mut file, bytes).expect("write tmp");
        file.sync_all().expect("sync tmp");
    }
    std::fs::rename(&tmp, dir.join(name)).expect("rename over");
}

#[test]
fn concurrent_loads_of_one_checkpoint_resume_identically() {
    let dir = temp_dir("load");
    // Save a mid-reduction checkpoint: iteration 1 is still ahead, so a
    // resume has real work left to do.
    let cf = paper_cf();
    let cursor = FixpointCursor {
        current: (cf.max_width() as u64, cf.node_count() as u64),
        removed_inputs: 0,
    };
    let mut ck = Checkpointer::new(&dir).expect("open checkpointer");
    let path = ck
        .save(
            &cf,
            Progress::IterationStart { iteration: 1 },
            &cursor,
            &DegradationReport::new(),
        )
        .expect("save checkpoint");

    // The uninterrupted run every loader must agree with.
    let mut reference = paper_cf();
    let mut report = DegradationReport::new();
    reference.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut report);
    assert!(report.is_clean(), "unbudgeted reference must not degrade");
    let want = (reference.max_width(), reference.node_count());

    let results: Vec<_> = (0..2)
        .map(|i| {
            let path = path.clone();
            let dir = dir.join(format!("resume-{i}"));
            std::thread::spawn(move || {
                let loaded = load_checkpoint(&path).expect("concurrent load");
                let mut ck = Checkpointer::new(&dir).expect("per-thread checkpointer");
                let (cf, report, stats) = loaded
                    .resume(&Alg33Options::default(), 4, &mut ck, false)
                    .expect("resume");
                assert!(report.is_clean(), "unbudgeted resume must not degrade");
                assert!(stats.is_some(), "iteration 1 had work left");
                (cf.max_width(), cf.node_count())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("loader thread"))
        .collect();

    for got in results {
        assert_eq!(
            got, want,
            "a concurrent loader diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loads_racing_an_atomic_rewrite_never_see_a_torn_checkpoint() {
    let dir = temp_dir("race");
    // Two distinguishable but individually valid snapshots of the same
    // function: unreduced at iteration 1, reduced and done at iteration 2.
    let unreduced = paper_cf();
    let mut reduced = paper_cf();
    let mut report = DegradationReport::new();
    reduced.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut report);
    assert_ne!(
        unreduced.node_count(),
        reduced.node_count(),
        "the two versions must be tellable apart"
    );
    let cursor = |cf: &Cf| FixpointCursor {
        current: (cf.max_width() as u64, cf.node_count() as u64),
        removed_inputs: 0,
    };
    let version_a = encode_checkpoint(
        &unreduced,
        Progress::IterationStart { iteration: 1 },
        &cursor(&unreduced),
        &DegradationReport::new(),
    );
    let version_b = encode_checkpoint(
        &reduced,
        Progress::ReductionDone { iteration: 2 },
        &cursor(&reduced),
        &DegradationReport::new(),
    );
    let name = "race.bddcfck";
    write_atomic(&dir, name, &version_a);

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let done = Arc::clone(&done);
            let path = dir.join(name);
            let (nodes_a, nodes_b) = (unreduced.node_count(), reduced.node_count());
            std::thread::spawn(move || {
                let mut loads = 0u64;
                while !done.load(Ordering::Relaxed) {
                    // Every load must decode cleanly to exactly one of the
                    // two versions; a torn file would fail the magic, the
                    // length checks, or yield an impossible node count.
                    let loaded = load_checkpoint(&path).expect("load mid-rewrite");
                    let nodes = loaded.cf.node_count();
                    match loaded.progress {
                        Progress::IterationStart { iteration: 1 } => assert_eq!(nodes, nodes_a),
                        Progress::ReductionDone { iteration: 2 } => assert_eq!(nodes, nodes_b),
                        other => panic!("impossible checkpoint version: {other}"),
                    }
                    loads += 1;
                }
                loads
            })
        })
        .collect();

    for round in 0..200 {
        let bytes = if round % 2 == 0 {
            &version_b
        } else {
            &version_a
        };
        write_atomic(&dir, name, bytes);
    }
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        let loads = reader.join().expect("reader thread");
        assert!(loads > 0, "the race was never exercised");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
