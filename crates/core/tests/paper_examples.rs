//! Reproduction of the paper's worked examples (Figures 2, 5, 6; Examples
//! 2.2, 3.5, 3.6) on the Table-1 function.
//!
//! The paper draws the BDD_for_CF of Table 1 with the variable order
//! `(x1, x2, x3, y1, x4, y2)` — `y1` sits directly below its support
//! `{x1,x2,x3}` and above `x4`, which only `f2` depends on.

use bddcf_bdd::Var;
use bddcf_core::{Cf, CfLayout, IsfBdds};
use bddcf_logic::TruthTable;

/// The paper's drawing order for the Table-1 BDD_for_CF.
fn paper_order() -> Vec<Var> {
    // inputs x1..x4 = Var(0..4), outputs y1, y2 = Var(4), Var(5).
    vec![Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)]
}

fn paper_cf() -> Cf {
    let table = TruthTable::paper_table1();
    Cf::build_with_order(CfLayout::new(4, 2), &paper_order(), |mgr, layout| {
        IsfBdds::from_truth_table(mgr, layout, &table)
    })
}

fn paper_cf_dc0() -> Cf {
    let table = TruthTable::paper_table1().completed(false);
    Cf::build_with_order(CfLayout::new(4, 2), &paper_order(), |mgr, layout| {
        IsfBdds::from_truth_table(mgr, layout, &table)
    })
}

#[test]
fn figure5a_shape_of_the_isf_bdd_for_cf() {
    let cf = paper_cf();
    // Fig. 5(a): 15 non-terminal nodes, maximum width 8.
    assert_eq!(cf.node_count(), 15, "Fig. 5(a) has 15 non-terminal nodes");
    assert_eq!(cf.max_width(), 8, "Fig. 5(a) has maximum width 8");
}

#[test]
fn example35_algorithm31_reduces_width_8_to_5_and_nodes_15_to_12() {
    let mut cf = paper_cf();
    let stats = cf.reduce_alg31();
    assert_eq!(stats.max_width_before, 8);
    assert_eq!(stats.max_width_after, 5, "Example 3.5: width 8 -> 5");
    assert_eq!(stats.nodes_after, 12, "Example 3.5: nodes 15 -> 12");
    assert!(cf.is_fully_live());
    let g = cf.complete();
    assert!(cf.realizes_original(&g));
}

#[test]
fn example36_algorithm33_reduces_width_8_to_4_and_nodes_15_to_12() {
    let mut cf = paper_cf();
    let stats = cf.reduce_alg33_default();
    assert_eq!(stats.max_width_before, 8);
    assert_eq!(stats.max_width_after, 4, "Example 3.6: width 8 -> 4");
    assert_eq!(stats.nodes_after, 12, "Example 3.6: nodes 15 -> 12");
    assert!(cf.is_fully_live());
    let g = cf.complete();
    assert!(cf.realizes_original(&g));
}

#[test]
fn figure2a_complete_specification_is_wider() {
    // Fig. 2(a) (DC=0 completion) vs Fig. 2(b) (ISF): the ISF BDD is the
    // same size or smaller, and reductions only help the ISF version.
    let cf0 = paper_cf_dc0();
    let cf_isf = paper_cf();
    assert!(cf_isf.node_count() <= cf0.node_count() + 3);
    let mut reduced = paper_cf();
    reduced.reduce_alg33_default();
    assert!(
        reduced.max_width() < cf0.max_width(),
        "don't cares must buy width over the DC=0 completion"
    );
}

#[test]
fn algorithm31_then_33_is_no_worse_than_33_alone() {
    let mut a = paper_cf();
    a.reduce_alg31();
    let combined = {
        a.reduce_alg33_default();
        a.max_width()
    };
    let mut b = paper_cf();
    b.reduce_alg33_default();
    assert!(combined <= b.max_width() + 1);
}

#[test]
fn output_nodes_stay_well_formed_through_reductions() {
    // The Fig.-1 invariant (every output node has one constant-0 edge) must
    // survive every reduction — products preserve it because 0·g = 0.
    let mut cf = paper_cf();
    assert!(cf.output_nodes_well_formed());
    cf.reduce_alg31();
    assert!(cf.output_nodes_well_formed());
    let mut cf = paper_cf();
    cf.reduce_alg33_default();
    assert!(cf.output_nodes_well_formed());
    cf.reduce_support_variables();
    assert!(cf.output_nodes_well_formed());
}

#[test]
fn walk_evaluation_matches_symbolic_completion() {
    for variant in 0..3 {
        let mut cf = paper_cf();
        match variant {
            0 => {}
            1 => {
                cf.reduce_alg31();
            }
            _ => {
                cf.reduce_alg33_default();
            }
        }
        let g = cf.complete();
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let mut assignment = vec![false; cf.layout().num_vars()];
            assignment[..4].copy_from_slice(&input);
            let mut sym = 0u64;
            for (j, &gj) in g.iter().enumerate() {
                if cf.manager().eval(gj, &assignment) {
                    sym |= 1 << j;
                }
            }
            assert_eq!(cf.eval_completed(&input), sym, "variant {variant} row {r}");
        }
    }
}

#[test]
fn paper_order_is_width_optimal_for_the_example() {
    // The exact-minimum search (ignoring Definition-2.4 constraints, so a
    // lower bound) certifies what sifting and the paper's drawing achieve.
    let mut cf = paper_cf();
    let root = cf.root();
    let exact = cf.manager_mut().exact_min_max_width(root);
    assert!(exact.max_width <= cf.max_width());
    // After Algorithm 3.3 the reduced χ can be re-certified too.
    cf.reduce_alg33_default();
    let root = cf.root();
    let exact_after = cf.manager_mut().exact_min_max_width(root);
    assert!(exact_after.max_width <= cf.max_width());
    assert!(exact_after.max_width <= exact.max_width);
}

#[test]
fn reductions_preserve_admissible_words_on_every_row() {
    let table = TruthTable::paper_table1();
    for reduction in 0..2 {
        let mut cf = paper_cf();
        if reduction == 0 {
            cf.reduce_alg31();
        } else {
            cf.reduce_alg33_default();
        }
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let words = cf.allowed_words(&input);
            assert!(!words.is_empty(), "row {r} lost all outputs");
            for w in words {
                assert!(
                    (0..2).all(|j| table.get(r, j).admits(w >> j & 1 == 1)),
                    "reduction {reduction}, row {r}, word {w:02b}"
                );
            }
        }
    }
}
