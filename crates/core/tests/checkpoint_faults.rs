//! Hostile-disk tests for the `BDDCFCKP` checkpoint path.
//!
//! The crash-safety story (PR4) assumed the disk itself cooperates; these
//! tests drop that assumption. A checkpoint file may come back truncated,
//! bit-flipped, or not at all — the loader must answer with a typed
//! [`CheckpointError`], never a panic, and the recovery scan must
//! quarantine the wreck and fall back to the previous sequence number.
//! The [`FaultVfs`] tests additionally pin the durability discipline
//! itself: a save that *returned* survives a simulated power loss only
//! because `write_atomic` fsyncs the parent directory after the rename —
//! the `ignore_sync_dir` run is the regression proving that without that
//! fsync the guarantee is gone.

use std::path::PathBuf;
use std::sync::Arc;

use bddcf_bdd::vfs::{splitmix64, FaultPlan, FaultVfs, Vfs, WriteFault};
use bddcf_bdd::Var;
use bddcf_core::checkpoint::{decode_checkpoint, encode_checkpoint};
use bddcf_core::{
    latest_checkpoint_vfs, latest_valid_checkpoint_vfs, load_checkpoint_vfs, quarantine_name,
    Alg33Options, Cf, CfLayout, Checkpointer, DegradationReport, FixpointCursor, IsfBdds, Progress,
};
use bddcf_logic::TruthTable;
use proptest::prelude::*;

fn paper_cf() -> Cf {
    let table = TruthTable::paper_table1();
    let order = vec![Var(0), Var(1), Var(2), Var(4), Var(3), Var(5)];
    Cf::build_with_order(CfLayout::new(4, 2), &order, |mgr, layout| {
        IsfBdds::from_truth_table(mgr, layout, &table)
    })
}

/// `(max_width, node_count)` of the uninterrupted reference reduction.
fn reference_shape() -> (usize, usize) {
    let mut cf = paper_cf();
    let mut report = DegradationReport::new();
    cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut report);
    assert!(report.is_clean(), "unbudgeted reference must not degrade");
    (cf.max_width(), cf.node_count())
}

fn encoded_checkpoint() -> Vec<u8> {
    let cf = paper_cf();
    let cursor = FixpointCursor {
        current: (cf.max_width() as u64, cf.node_count() as u64),
        removed_inputs: 0,
    };
    encode_checkpoint(
        &cf,
        Progress::IterationStart { iteration: 1 },
        &cursor,
        &DegradationReport::new(),
    )
}

/// Every byte-prefix truncation of a checkpoint is a typed decode error —
/// the magic, the version gate, the length checks, and ultimately the
/// trailing whole-file checksum leave no prefix that parses.
#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = encoded_checkpoint();
    assert!(
        decode_checkpoint(&bytes).is_ok(),
        "the untouched encoding must load"
    );

    let mut lengths: Vec<usize> = (0..bytes.len()).step_by(13).collect();
    // Format boundaries: inside the magic, at the version word, and the
    // bytes around the checksum trailer.
    lengths.extend([
        1,
        7,
        8,
        11,
        12,
        bytes.len() - 9,
        bytes.len() - 8,
        bytes.len() - 1,
    ]);
    for len in lengths {
        let err = decode_checkpoint(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("a {len}-byte prefix of {} must not load", bytes.len()));
        // The error must render (typed, not a panic payload).
        assert!(!err.to_string().is_empty());
    }
}

/// Every single-byte corruption of a checkpoint is a typed decode error:
/// the checksum covers every preceding byte, and a flip inside the
/// checksum trailer breaks the comparison itself.
#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = encoded_checkpoint();
    let mut offsets: Vec<usize> = (0..bytes.len()).step_by(7).collect();
    offsets.extend([bytes.len() - 8, bytes.len() - 1]);
    for offset in offsets {
        for bit in [0x01u8, 0x80u8] {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= bit;
            let err = decode_checkpoint(&corrupt).err().unwrap_or_else(|| {
                panic!("flipping bit {bit:#04x} of byte {offset} must not load")
            });
            assert!(!err.to_string().is_empty());
        }
    }
}

/// The directory-fsync regression. A save that returned survives power
/// loss — and the *only* thing making that true is the parent-directory
/// fsync after the rename, as the `ignore_sync_dir` adversary (every dir
/// fsync silently lies, exactly what removing the fsync call would do)
/// demonstrates by losing the same checkpoint.
#[test]
fn a_returned_save_survives_power_loss_only_through_the_dir_fsync() {
    let dir = PathBuf::from("/ckpt");
    let save_once = |vfs: &FaultVfs| {
        let shared: Arc<dyn Vfs> = Arc::new(vfs.clone());
        let cf = paper_cf();
        let cursor = FixpointCursor {
            current: (cf.max_width() as u64, cf.node_count() as u64),
            removed_inputs: 0,
        };
        let mut ck = Checkpointer::with_vfs(shared, &dir).expect("open checkpointer");
        ck.save(
            &cf,
            Progress::IterationStart { iteration: 1 },
            &cursor,
            &DegradationReport::new(),
        )
        .expect("save checkpoint");
    };

    // Honest disk: the save is durable the moment it returns.
    let honest = FaultVfs::new();
    save_once(&honest);
    let crashed = honest.crash_state(honest.events_len(), 0xfee1);
    let found = latest_checkpoint_vfs(&crashed, &dir).expect("scan crashed dir");
    assert!(
        found.is_some(),
        "a returned save must survive power loss on an honest disk"
    );
    let (_, loaded) = latest_valid_checkpoint_vfs(&crashed, &dir)
        .expect("rescan crashed dir")
        .expect("the surviving checkpoint must load");
    assert_eq!(loaded.progress, Progress::IterationStart { iteration: 1 });

    // Lying disk: identical save sequence, but directory fsyncs are
    // no-ops — the rename never becomes durable and the checkpoint is
    // gone. Deleting the sync_dir call from `write_atomic` would make
    // every disk behave like this one.
    let lying = FaultVfs::with_plan(FaultPlan {
        ignore_sync_dir: true,
        ..FaultPlan::default()
    });
    save_once(&lying);
    let crashed = lying.crash_state(lying.events_len(), 0xfee1);
    let found = latest_checkpoint_vfs(&crashed, &dir).expect("scan crashed dir");
    assert!(
        found.is_none(),
        "without the directory fsync the returned save must be lost — \
         the harness assertion this pins would then fire"
    );
}

/// A corrupt newest checkpoint is quarantined (renamed `.corrupt`) and
/// the scan falls back to the previous sequence number.
#[test]
fn corrupt_newest_checkpoint_falls_back_to_the_previous_sequence() {
    let dir = PathBuf::from("/ckpt");
    let vfs = FaultVfs::new();
    let shared: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let cf = paper_cf();
    let cursor = FixpointCursor {
        current: (cf.max_width() as u64, cf.node_count() as u64),
        removed_inputs: 0,
    };
    let mut ck = Checkpointer::with_vfs(Arc::clone(&shared), &dir).expect("open checkpointer");
    let report = DegradationReport::new();
    let older = ck
        .save(
            &cf,
            Progress::IterationStart { iteration: 1 },
            &cursor,
            &report,
        )
        .expect("save seq 0");
    let newer = ck
        .save(
            &cf,
            Progress::Alg33Cut {
                iteration: 1,
                cut: 2,
            },
            &cursor,
            &report,
        )
        .expect("save seq 1");

    shared
        .write(&newer, b"BDDCFCKP but the rest is rubble")
        .expect("corrupt the newest checkpoint in place");

    let (path, loaded) = latest_valid_checkpoint_vfs(shared.as_ref(), &dir)
        .expect("scan")
        .expect("the older checkpoint must be found");
    assert_eq!(path, older, "recovery must fall back to the previous seq");
    assert_eq!(loaded.progress, Progress::IterationStart { iteration: 1 });
    assert!(
        shared.exists(&quarantine_name(&newer)),
        "the wreck must be parked under a .corrupt name"
    );
    assert!(
        !shared.exists(&newer),
        "the wreck must no longer shadow the sequence"
    );
}

proptest! {
    /// Interleaving a seeded write fault (ENOSPC / EIO / short write on
    /// the Nth storage write) with a checkpointed reduction, then cutting
    /// power at an arbitrary journal prefix, never leaves the directory
    /// in a state recovery cannot handle: every surviving `ckpt-*` file
    /// either loads or is quarantined by the scan, and whatever the scan
    /// settles on resumes to the reference result.
    #[test]
    fn faulted_saves_never_strand_recovery(
        nth in 0u64..48,
        fault_pick in 0usize..3,
        crash_salt in 0u64..1024,
    ) {
        let fault = [WriteFault::Enospc, WriteFault::Eio, WriteFault::ShortWrite][fault_pick];
        let dir = PathBuf::from("/ckpt");
        let vfs = FaultVfs::with_plan(FaultPlan {
            seed: splitmix64(nth ^ (crash_salt << 8)),
            fail_write: Some(nth),
            fault,
            ..FaultPlan::default()
        });
        let shared: Arc<dyn Vfs> = Arc::new(vfs.clone());

        let mut cf = paper_cf();
        let mut report = DegradationReport::new();
        // The core driver surfaces storage errors (absorbing them is the
        // serve layer's job) — either outcome is fine, panics are not.
        if let Ok(mut ck) = Checkpointer::with_vfs(Arc::clone(&shared), &dir) {
            let _ = cf.reduce_to_fixpoint_checkpointed(
                &Alg33Options::default(),
                4,
                &mut report,
                &mut ck,
                false,
            );
        }

        // Live directory: a fault may strand a torn `.tmp-*` file, but
        // every published `ckpt-*` checkpoint must load.
        for path in shared.list(&dir).unwrap_or_default() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("ckpt-") && name.ends_with(".bddcfck") {
                prop_assert!(
                    load_checkpoint_vfs(shared.as_ref(), &path).is_ok(),
                    "published checkpoint {name} must load on the live disk"
                );
            }
        }

        // Power loss at an arbitrary prefix: the scan must settle without
        // a panic, and a found checkpoint must resume to the reference.
        let k = (crash_salt as usize) % (vfs.events_len() + 1);
        let crashed = vfs.crash_state(k, splitmix64(crash_salt));
        if let Some((_, loaded)) =
            latest_valid_checkpoint_vfs(&crashed, &dir).expect("crashed scan settles")
        {
            let resume_shared: Arc<dyn Vfs> = Arc::new(crashed.clone());
            let mut ck = Checkpointer::with_vfs(resume_shared, &dir)
                .expect("reopen checkpointer on the crashed disk");
            let (cf, _, stats) = loaded
                .resume(&Alg33Options::default(), 4, &mut ck, false)
                .expect("resume from the surviving checkpoint");
            prop_assert!(stats.is_some(), "an uncancelled resume must finish");
            prop_assert_eq!((cf.max_width(), cf.node_count()), reference_shape());
        }
    }
}
