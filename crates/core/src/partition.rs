//! §5.1 — output partitioning.
//!
//! Representing all outputs in a single BDD_for_CF makes it hard to find
//! 0-1 assignments that simplify it; splitting every output apart forfeits
//! multi-output sharing. The paper's compromise is a *bi-partition*:
//! `F₁ = (f₁ … f⌈m/2⌉)` and `F₂ = (f⌈m/2⌉₊₁ … f_m)`, each with its own
//! BDD_for_CF (and its own variable order).

#![allow(clippy::single_range_in_vec_init)] // the API genuinely takes lists of ranges
use crate::cf::{Cf, IsfBdds};
use crate::layout::CfLayout;
use bddcf_bdd::hasher::FastMap;
use bddcf_bdd::{BddManager, NodeId, Var, FALSE, TRUE};
use std::ops::Range;

/// Copies a BDD from one manager into another.
///
/// Variables keep their ids; the relative order of the *source support*
/// variables must be the same in both managers (checked by `mk` in debug
/// builds). This is how per-output ISF sets (which live over the shared
/// input variables) move into the smaller managers of the partition
/// halves.
pub fn transfer(
    src: &BddManager,
    dst: &mut BddManager,
    node: NodeId,
    memo: &mut FastMap<NodeId, NodeId>,
) -> NodeId {
    if node == FALSE {
        return FALSE;
    }
    if node == TRUE {
        return TRUE;
    }
    if let Some(&r) = memo.get(&node) {
        return r;
    }
    let var = src.var_of(node);
    let lo = transfer(src, dst, src.lo(node), memo);
    let hi = transfer(src, dst, src.hi(node), memo);
    let r = dst.mk(var, lo, hi);
    memo.insert(node, r);
    r
}

/// Derives a part's variable order from the full function's order: input
/// variables keep their relative positions, the part's output variables are
/// renumbered into the part layout, and other outputs disappear.
pub fn derive_part_order(
    full_order: &[Var],
    layout: &CfLayout,
    part_layout: &CfLayout,
    range: &Range<usize>,
) -> Vec<Var> {
    full_order
        .iter()
        .filter_map(|&v| match layout.role(v) {
            crate::layout::Role::Input(i) => Some(part_layout.input_var(i)),
            crate::layout::Role::Output(j) if range.contains(&j) => {
                Some(part_layout.output_var(j - range.start))
            }
            crate::layout::Role::Output(_) => None,
        })
        .collect()
}

/// Builds one independent [`Cf`] per output range, each in a fresh manager
/// with only that range's output variables. Each part *inherits the
/// source manager's variable order* (restricted per
/// [`derive_part_order`]), so generator-supplied interleaved orders
/// survive the split.
///
/// `mgr`/`layout`/`isf` describe the full function; `parts` must consist of
/// non-empty ranges within `0..m` (they may overlap or omit outputs — the
/// usual case is the bi-partition below).
///
/// # Panics
///
/// Panics if a range is empty or out of bounds.
pub fn partition_outputs(
    mgr: &BddManager,
    layout: &CfLayout,
    isf: &IsfBdds,
    parts: &[Range<usize>],
) -> Vec<Cf> {
    parts
        .iter()
        .map(|range| {
            assert!(!range.is_empty(), "empty output range");
            assert!(range.end <= layout.num_outputs(), "range out of bounds");
            let part_layout = CfLayout::new(layout.num_inputs(), range.len());
            let mut part_mgr = part_layout.new_manager();
            let part_order = derive_part_order(mgr.order(), layout, &part_layout, range);
            part_mgr.set_order(&part_order);
            let mut memo = FastMap::default();
            let sub = isf.select_outputs(range.clone());
            let on = sub
                .on
                .iter()
                .map(|&f| transfer(mgr, &mut part_mgr, f, &mut memo))
                .collect();
            let off = sub
                .off
                .iter()
                .map(|&f| transfer(mgr, &mut part_mgr, f, &mut memo))
                .collect();
            let dc = sub
                .dc
                .iter()
                .map(|&f| transfer(mgr, &mut part_mgr, f, &mut memo))
                .collect();
            Cf::from_isf(part_mgr, part_layout, IsfBdds { on, off, dc })
        })
        .collect()
}

/// The paper's bi-partition: `F₁` takes the first `⌈m/2⌉` outputs, `F₂`
/// the rest. For a single-output function only `F₁` is returned.
pub fn bipartition(mgr: &BddManager, layout: &CfLayout, isf: &IsfBdds) -> Vec<Cf> {
    let m = layout.num_outputs();
    let half = m.div_ceil(2);
    if half == m {
        partition_outputs(mgr, layout, isf, &[0..m])
    } else {
        partition_outputs(mgr, layout, isf, &[0..half, half..m])
    }
}

/// Recombines completed halves for verification: evaluates each part's
/// completed outputs on `input` and re-assembles the full output word in
/// the original output numbering (parts listed in `parts` order).
pub fn eval_parts(parts: &[(&Cf, &[NodeId])], ranges: &[Range<usize>], input: &[bool]) -> u64 {
    assert_eq!(parts.len(), ranges.len());
    let mut word = 0u64;
    for ((cf, outputs), range) in parts.iter().zip(ranges) {
        let mut assignment = vec![false; cf.layout().num_vars()];
        assignment[..input.len()].copy_from_slice(input);
        for (k, &g) in outputs.iter().enumerate() {
            if cf.manager().eval(g, &assignment) {
                word |= 1 << (range.start + k);
            }
        }
    }
    word
}

/// Checks [`Var`] id stability across a transfer (diagnostic helper for
/// tests and assertions).
pub fn same_support(src: &BddManager, a: NodeId, dst: &BddManager, b: NodeId) -> bool {
    let sa: Vec<Var> = src.support(a);
    let sb: Vec<Var> = dst.support(b);
    sa == sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::{MultiOracle, TruthTable};

    #[test]
    fn transfer_preserves_functions() {
        let mut src = BddManager::new(4);
        let a = src.var(Var(0));
        let c = src.var(Var(2));
        let f = src.xor(a, c);
        let mut dst = BddManager::new(6);
        let mut memo = FastMap::default();
        let g = transfer(&src, &mut dst, f, &mut memo);
        assert!(same_support(&src, f, &dst, g));
        for bits in 0..16u32 {
            let asrc: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let mut adst = vec![false; 6];
            adst[..4].copy_from_slice(&asrc);
            assert_eq!(src.eval(f, &asrc), dst.eval(g, &adst));
        }
    }

    #[test]
    fn transfer_of_terminals() {
        let src = BddManager::new(1);
        let mut dst = BddManager::new(1);
        let mut memo = FastMap::default();
        assert_eq!(transfer(&src, &mut dst, TRUE, &mut memo), TRUE);
        assert_eq!(transfer(&src, &mut dst, FALSE, &mut memo), FALSE);
    }

    #[test]
    fn bipartition_splits_ceil_floor() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let halves = bipartition(&mgr, &layout, &isf);
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].layout().num_outputs(), 1);
        assert_eq!(halves[1].layout().num_outputs(), 1);
    }

    #[test]
    fn single_output_functions_do_not_split() {
        let table = TruthTable::from_rows(&["0", "1", "d", "1"]);
        let layout = CfLayout::new(2, 1);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let parts = bipartition(&mgr, &layout, &isf);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn parts_realize_the_original_spec_jointly() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let mut halves = bipartition(&mgr, &layout, &isf);
        // Reduce each half independently, then complete and recombine.
        for h in &mut halves {
            h.reduce_alg33_default();
        }
        let g0 = halves[0].complete();
        let g1 = halves[1].complete();
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let word = eval_parts(
                &[(&halves[0], &g0), (&halves[1], &g1)],
                &[0..1, 1..2],
                &input,
            );
            assert!(
                table.respond(&input).admits(word, 2)
                    || (0..2).all(|j| table.get(r, j).admits(word >> j & 1 == 1)),
                "row {r} word {word:02b}"
            );
        }
    }

    #[test]
    fn partition_ranges_validate() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let parts = partition_outputs(&mgr, &layout, &isf, &[0..2]);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].layout().num_outputs(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn partition_rejects_bad_range() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let _ = partition_outputs(&mgr, &layout, &isf, &[0..3]);
    }
}
