//! Compatibility graphs and the heuristic minimal clique cover
//! (Definition 3.8 and Algorithm 3.2).
//!
//! Finding a minimum clique cover is NP-hard [Garey & Johnson], so the
//! paper uses a greedy heuristic that repeatedly grows a clique around the
//! *minimum-degree* node. A maximum-degree-first variant is provided for
//! the ablation benchmarks.

/// An undirected compatibility graph over `n` functions
/// (Definition 3.8: nodes are functions, edges join compatible pairs).
#[derive(Clone, Debug)]
pub struct CompatGraph {
    n: usize,
    adj: Vec<Vec<bool>>, // dense symmetric adjacency, no self loops
}

/// Which greedy order Algorithm 3.2 uses to seed and grow cliques.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CoverHeuristic {
    /// The paper's choice: minimum-degree node first.
    #[default]
    MinDegreeFirst,
    /// Ablation variant: maximum-degree node first.
    MaxDegreeFirst,
}

impl CompatGraph {
    /// An edgeless graph over `n` nodes.
    pub fn new(n: usize) -> Self {
        CompatGraph {
            n,
            adj: vec![vec![false; n]; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge `{i, j}`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or an index is out of range.
    pub fn add_edge(&mut self, i: usize, j: usize) {
        assert!(i != j, "no self loops");
        assert!(i < self.n && j < self.n, "node index out of range");
        self.adj[i][j] = true;
        self.adj[j][i] = true;
    }

    /// Is `{i, j}` an edge?
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i][j]
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj
            .iter()
            .enumerate()
            .map(|(i, row)| row[..i].iter().filter(|&&e| e).count())
            .sum()
    }

    fn degree_within(&self, v: usize, alive: &[bool]) -> usize {
        (0..self.n).filter(|&u| alive[u] && self.adj[v][u]).count()
    }

    /// Algorithm 3.2: heuristic minimal clique cover. Returns the cliques
    /// as sorted index lists; every node appears in exactly one clique.
    ///
    /// The algorithm (paper, §3.2): isolated nodes become singletons; then
    /// repeatedly seed a clique with the extreme-degree node `vᵢ` of the
    /// remaining graph, and grow it by extreme-degree candidates among the
    /// common neighbours until none remain.
    pub fn clique_cover(&self, heuristic: CoverHeuristic) -> Vec<Vec<usize>> {
        let mut cover: Vec<Vec<usize>> = Vec::new();
        let mut alive = vec![true; self.n];

        // Isolated nodes first (step 0 of Algorithm 3.2).
        for v in 0..self.n {
            if self.degree_within(v, &alive) == 0 {
                alive[v] = false;
                cover.push(vec![v]);
            }
        }

        let pick = |candidates: &mut dyn Iterator<Item = (usize, usize)>| -> Option<usize> {
            match heuristic {
                CoverHeuristic::MinDegreeFirst => {
                    candidates.min_by_key(|&(deg, v)| (deg, v)).map(|(_, v)| v)
                }
                CoverHeuristic::MaxDegreeFirst => candidates
                    .max_by_key(|&(deg, v)| (deg, std::cmp::Reverse(v)))
                    .map(|(_, v)| v),
            }
        };

        while alive.iter().any(|&a| a) {
            // Seed: extreme-degree node among the living.
            let vi = pick(
                &mut (0..self.n)
                    .filter(|&v| alive[v])
                    .map(|v| (self.degree_within(v, &alive), v)),
            )
            .expect("some node is alive");
            let mut clique = vec![vi];
            // S_b: neighbours of the seed among the living.
            let mut sb: Vec<usize> = (0..self.n)
                .filter(|&u| alive[u] && self.adj[vi][u])
                .collect();
            while !sb.is_empty() {
                let sb_alive = {
                    let mut mask = vec![false; self.n];
                    for &u in &sb {
                        mask[u] = true;
                    }
                    mask
                };
                let vj = pick(&mut sb.iter().map(|&u| (self.degree_within(u, &sb_alive), u)))
                    .expect("S_b is non-empty");
                clique.push(vj);
                sb.retain(|&u| u != vj && self.adj[vj][u]);
            }
            for &v in &clique {
                alive[v] = false;
            }
            clique.sort_unstable();
            cover.push(clique);
        }
        cover.sort();
        cover
    }

    /// Exact minimum clique cover by branch and bound, for quality
    /// evaluation of Algorithm 3.2 on small graphs.
    ///
    /// Equivalent to colouring the complement graph; exponential in the
    /// worst case.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 nodes (the search would not
    /// finish in reasonable time).
    pub fn clique_cover_exact(&self) -> Vec<Vec<usize>> {
        assert!(self.n <= 24, "exact cover limited to 24 nodes");
        if self.n == 0 {
            return Vec::new();
        }
        // Greedy upper bound to prune against.
        let mut best = self.clique_cover(CoverHeuristic::MinDegreeFirst);
        let mut assignment: Vec<Vec<usize>> = Vec::new();
        self.exact_rec(0, &mut assignment, &mut best);
        best.sort();
        best
    }

    fn exact_rec(&self, v: usize, assignment: &mut Vec<Vec<usize>>, best: &mut Vec<Vec<usize>>) {
        if assignment.len() >= best.len() {
            return; // cannot beat the incumbent
        }
        if v == self.n {
            *best = assignment.clone();
            return;
        }
        // Try putting v into each existing clique.
        for k in 0..assignment.len() {
            if assignment[k].iter().all(|&u| self.adj[u][v]) {
                assignment[k].push(v);
                self.exact_rec(v + 1, assignment, best);
                assignment[k].pop();
            }
        }
        // Or open a new clique.
        assignment.push(vec![v]);
        self.exact_rec(v + 1, assignment, best);
        assignment.pop();
    }

    /// Checks that `cover` is a partition of the nodes into cliques.
    pub fn is_valid_cover(&self, cover: &[Vec<usize>]) -> bool {
        let mut seen = vec![false; self.n];
        for clique in cover {
            for (k, &v) in clique.iter().enumerate() {
                if v >= self.n || std::mem::replace(&mut seen[v], true) {
                    return false;
                }
                for &u in &clique[..k] {
                    if !self.adj[u][v] {
                        return false;
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = CompatGraph::new(0);
        assert!(g.is_empty());
        assert!(g.clique_cover(CoverHeuristic::MinDegreeFirst).is_empty());
    }

    #[test]
    fn edgeless_graph_covers_with_singletons() {
        let g = CompatGraph::new(4);
        let cover = g.clique_cover(CoverHeuristic::MinDegreeFirst);
        assert_eq!(cover.len(), 4);
        assert!(g.is_valid_cover(&cover));
    }

    #[test]
    fn complete_graph_covers_with_one_clique() {
        let mut g = CompatGraph::new(5);
        for i in 0..5 {
            for j in i + 1..5 {
                g.add_edge(i, j);
            }
        }
        let cover = g.clique_cover(CoverHeuristic::MinDegreeFirst);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0], vec![0, 1, 2, 3, 4]);
        assert!(g.is_valid_cover(&cover));
    }

    #[test]
    fn paper_fig7_compatibility_graph() {
        // Fig. 7: nodes {6, 7, 8, 10} with edges 6–8 and 7–10 (two pairs).
        // Index them 0..4 as [6, 7, 8, 10].
        let mut g = CompatGraph::new(4);
        g.add_edge(0, 2); // 6–8
        g.add_edge(1, 3); // 7–10
        let cover = g.clique_cover(CoverHeuristic::MinDegreeFirst);
        assert_eq!(cover.len(), 2, "two cliques as in Example 3.6");
        assert!(cover.contains(&vec![0, 2]));
        assert!(cover.contains(&vec![1, 3]));
    }

    #[test]
    fn path_graph_min_degree_seeds_at_ends() {
        // Path 0-1-2-3: optimal cover is {0,1},{2,3} (2 cliques).
        let mut g = CompatGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let cover = g.clique_cover(CoverHeuristic::MinDegreeFirst);
        assert!(g.is_valid_cover(&cover));
        assert_eq!(cover.len(), 2, "min-degree-first finds the optimum here");
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle {0,1,2} with pendant 3-0.
        let mut g = CompatGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let cover = g.clique_cover(CoverHeuristic::MinDegreeFirst);
        assert!(g.is_valid_cover(&cover));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn max_degree_variant_also_valid() {
        let mut g = CompatGraph::new(6);
        for (i, j) in [(0, 1), (1, 2), (0, 2), (3, 4), (2, 3), (4, 5)] {
            g.add_edge(i, j);
        }
        for heuristic in [
            CoverHeuristic::MinDegreeFirst,
            CoverHeuristic::MaxDegreeFirst,
        ] {
            let cover = g.clique_cover(heuristic);
            assert!(g.is_valid_cover(&cover), "{heuristic:?}");
        }
    }

    #[test]
    fn cover_validation_rejects_non_cliques() {
        let mut g = CompatGraph::new(3);
        g.add_edge(0, 1);
        assert!(!g.is_valid_cover(&[vec![0, 1, 2]]), "0-2 is not an edge");
        assert!(!g.is_valid_cover(&[vec![0, 1]]), "2 uncovered");
        assert!(g.is_valid_cover(&[vec![0, 1], vec![2]]));
    }

    #[test]
    fn exact_cover_is_optimal_on_known_graphs() {
        // Path 0-1-2-3-4: optimum 3 cliques? No — {0,1},{2,3},{4}: 3.
        let mut g = CompatGraph::new(5);
        for (i, j) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            g.add_edge(i, j);
        }
        let exact = g.clique_cover_exact();
        assert!(g.is_valid_cover(&exact));
        assert_eq!(exact.len(), 3);
        // 5-cycle: clique cover number is 3 (cliques are edges/vertices).
        let mut c5 = CompatGraph::new(5);
        for i in 0..5 {
            c5.add_edge(i, (i + 1) % 5);
        }
        assert_eq!(c5.clique_cover_exact().len(), 3);
        // Complete graph: 1.
        let mut k4 = CompatGraph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                k4.add_edge(i, j);
            }
        }
        assert_eq!(k4.clique_cover_exact().len(), 1);
    }

    #[test]
    fn heuristic_never_beats_exact_and_is_often_equal() {
        // Deterministic pseudo-random graphs.
        let mut state = 12345u64;
        for n in [6usize, 8, 10] {
            let mut g = CompatGraph::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (state >> 33) % 10 < 4 {
                        g.add_edge(i, j);
                    }
                }
            }
            let exact = g.clique_cover_exact().len();
            let greedy = g.clique_cover(CoverHeuristic::MinDegreeFirst).len();
            assert!(greedy >= exact, "greedy cannot beat the optimum");
            assert!(
                greedy <= exact + 2,
                "greedy should stay close on small graphs (got {greedy} vs {exact})"
            );
        }
    }

    #[test]
    fn edge_count() {
        let mut g = CompatGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(1, 0), "edges are undirected");
    }
}
