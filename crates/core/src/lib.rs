//! BDD_for_CF: characteristic-function BDDs for incompletely specified
//! multiple-output logic functions, and the paper's width-reduction
//! algorithms.
//!
//! This crate is the primary contribution of Sasao & Matsuura (DAC 2005):
//!
//! * [`CfLayout`] / [`IsfBdds`] / [`Cf`] — construction of the
//!   characteristic function
//!   `χ(X,Y) = ∧ᵢ ( ȳᵢ·f_i0(X) ∨ yᵢ·f_i1(X) ∨ f_id(X) )`
//!   (Definition 2.3) and its BDD with every output variable ordered below
//!   the support of its function (Definition 2.4).
//! * [`compat`] — compatibility of sub-characteristic-functions, the
//!   semantic engine behind every merge (Definition 3.7 / Lemma 3.1).
//! * [`alg31`] — Algorithm 3.1, recursive merging of compatible children.
//! * [`cover`] — compatibility graphs and Algorithm 3.2, the heuristic
//!   minimal clique cover.
//! * [`alg33`] — Algorithm 3.3, level-by-level width reduction via clique
//!   covers of the column functions.
//! * [`support`] — §3.3, removal of redundant input variables by don't-care
//!   assignment.
//! * [`partition`] — §5.1, output set bi-partitioning.
//! * [`sift`] — variable-order optimization of a `Cf` by constrained
//!   sifting with the paper's sum-of-widths cost.
//!
//! # Orientation
//!
//! A [`Cf`] owns its [`BddManager`](bddcf_bdd::BddManager): the manager, the
//! layout (which variable plays which role) and the root evolve together
//! through reordering and reduction, and tying them into one value keeps
//! every `NodeId` valid by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg31;
pub mod alg33;
pub mod cf;
pub mod checkpoint;
pub mod compat;
pub mod cover;
pub mod degrade;
pub mod driver;
pub mod layout;
pub mod partition;
pub mod sift;
pub mod support;

pub use alg33::Alg33Options;
pub use cf::{Cf, ChoiceError, IsfBdds};
pub use checkpoint::{
    latest_checkpoint, latest_checkpoint_vfs, latest_valid_checkpoint, latest_valid_checkpoint_vfs,
    load_checkpoint, load_checkpoint_vfs, quarantine_name, CheckpointError, Checkpointer,
    FixpointCursor, LoadedCheckpoint, Progress,
};
pub use cover::CompatGraph;
pub use degrade::{DegradationEvent, DegradationReport, DegradeAction, Phase};
pub use driver::FixpointStats;
pub use layout::{CfLayout, Role};
