//! A convenience driver chaining the paper's reductions to a fixpoint.
//!
//! The paper applies support-variable removal, then one of the width
//! reductions (§3.3, §5.1). Reductions can enable each other — removing a
//! variable may create new compatible columns and vice versa — so this
//! driver loops `support → Algorithm 3.1 → Algorithm 3.3` until an
//! iteration stops improving the (max width, nodes) pair.

use crate::alg33::Alg33Options;
use crate::cf::Cf;
use crate::degrade::{DegradationReport, DegradeAction, Phase};
use bddcf_bdd::Error as BudgetError;

/// Outcome of [`Cf::reduce_to_fixpoint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixpointStats {
    /// Iterations executed (at least 1).
    pub iterations: usize,
    /// Input variables removed in total.
    pub removed_inputs: usize,
    /// Maximum width before / after.
    pub max_width: (usize, usize),
    /// Node count before / after.
    pub nodes: (usize, usize),
}

impl Cf {
    /// Runs `support reduction → Algorithm 3.1 → Algorithm 3.3` repeatedly
    /// until neither the maximum width nor the node count improves, or
    /// `max_iterations` is reached.
    pub fn reduce_to_fixpoint(
        &mut self,
        options: &Alg33Options,
        max_iterations: usize,
    ) -> FixpointStats {
        let saved = self.manager_mut().take_budget();
        let mut report = DegradationReport::new();
        let stats = self.reduce_to_fixpoint_governed(options, max_iterations, &mut report);
        self.manager_mut().resume_budget(saved);
        debug_assert!(report.is_clean(), "unbudgeted runs cannot degrade");
        stats
    }

    /// Budget-governed fixpoint driver: the same loop as
    /// [`reduce_to_fixpoint`](Cf::reduce_to_fixpoint), but every phase
    /// degrades instead of failing when the manager's installed
    /// [`Budget`](bddcf_bdd::Budget) runs out:
    ///
    /// * support reduction skips exhausted variables
    ///   ([`reduce_support_variables_governed`]
    ///   (Cf::reduce_support_variables_governed));
    /// * Algorithm 3.1 gets one GC + retry, then the whole pass is skipped
    ///   (it is an optional strengthening — Algorithm 3.3 subsumes its
    ///   merges level by level);
    /// * Algorithm 3.3 walks its per-cut ladder
    ///   ([`reduce_alg33_governed`](Cf::reduce_alg33_governed));
    /// * a terminal cause (step/time/cancel) recorded by any phase stops
    ///   the iteration at the end of that phase.
    ///
    /// χ after return is always a valid refinement of χ before, whatever
    /// was skipped; `report` says exactly what was.
    pub fn reduce_to_fixpoint_governed(
        &mut self,
        options: &Alg33Options,
        max_iterations: usize,
        report: &mut DegradationReport,
    ) -> FixpointStats {
        let initial = (self.max_width(), self.node_count());
        let mut current = initial;
        let mut removed_inputs = 0;
        let mut iterations = 0;
        #[cfg(feature = "check")]
        self.assert_pipeline_invariants("fixpoint: before reduction");
        'iterate: while iterations < max_iterations.max(1) {
            iterations += 1;
            removed_inputs += self.reduce_support_variables_governed(report).len();
            #[cfg(feature = "check")]
            self.assert_pipeline_invariants("fixpoint: after support reduction");
            if let Some(cause) = report.terminal_cause() {
                report.record(Phase::Alg31, None, DegradeAction::StoppedIterating, cause);
                break 'iterate;
            }
            match self.try_reduce_alg31() {
                Ok(_) => {}
                Err(cause) if matches!(cause, BudgetError::NodeLimit { .. }) => {
                    report.record(Phase::Alg31, None, DegradeAction::GcRetry, cause);
                    self.collect();
                    if let Err(cause) = self.try_reduce_alg31() {
                        report.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
                        self.collect();
                    }
                }
                Err(cause) => {
                    report.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
                    self.collect();
                }
            }
            #[cfg(feature = "check")]
            self.assert_pipeline_invariants("fixpoint: after Algorithm 3.1");
            if let Some(cause) = report.terminal_cause() {
                report.record(Phase::Alg33, None, DegradeAction::StoppedIterating, cause);
                break 'iterate;
            }
            self.reduce_alg33_governed(options, report);
            #[cfg(feature = "check")]
            self.assert_pipeline_invariants("fixpoint: after Algorithm 3.3");
            if let Some(cause) = report.terminal_cause() {
                report.record(Phase::Alg33, None, DegradeAction::StoppedIterating, cause);
                break 'iterate;
            }
            let now = (self.max_width(), self.node_count());
            if now >= current {
                break;
            }
            current = now;
        }
        FixpointStats {
            iterations,
            removed_inputs,
            max_width: (initial.0, self.max_width()),
            nodes: (initial.1, self.node_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    #[test]
    fn fixpoint_is_sound_and_no_worse_than_one_round() {
        let table = TruthTable::paper_table1();
        let mut one = Cf::from_truth_table(&table);
        one.reduce_alg33_default();
        let mut fix = Cf::from_truth_table(&table);
        let stats = fix.reduce_to_fixpoint(&Alg33Options::default(), 5);
        assert!(stats.max_width.1 <= one.max_width());
        assert!(stats.iterations >= 1);
        assert!(fix.is_fully_live());
        let g = fix.complete();
        assert!(fix.realizes_original(&g));
    }

    #[test]
    fn fixpoint_terminates_on_completely_specified_functions() {
        let table = TruthTable::paper_table1().completed(false);
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_to_fixpoint(&Alg33Options::default(), 10);
        assert_eq!(stats.removed_inputs, 0);
        assert_eq!(stats.max_width.0, stats.max_width.1);
        assert!(stats.iterations <= 2, "no progress means fast exit");
    }

    #[test]
    fn fixpoint_respects_iteration_cap() {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_to_fixpoint(&Alg33Options::default(), 1);
        assert_eq!(stats.iterations, 1);
    }
}
