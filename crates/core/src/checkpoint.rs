//! Crash-safe checkpointing of the reduction pipeline.
//!
//! A *checkpoint* is a versioned, checksummed, endian-stable file capturing
//! everything the fixpoint driver needs to continue a reduction after the
//! process dies: an embedded [`BddManager` snapshot](bddcf_bdd::snapshot),
//! the `Cf` state (layout, root, ISF roots), the pipeline cursor (iteration
//! and next Algorithm 3.3 cut), and the accumulated [`DegradationReport`].
//! Checkpoints are written **atomically** — the bytes go to a temporary
//! file which is fsynced and then renamed into place — so a crash during a
//! write can never leave a half-written checkpoint as the latest one.
//!
//! The checkpointed driver ([`Cf::reduce_to_fixpoint_checkpointed`]) is the
//! governed fixpoint loop of [`Cf::reduce_to_fixpoint_governed`] with saves
//! at every resumable boundary:
//!
//! * at the start of each fixpoint iteration (before support reduction),
//! * at every Algorithm 3.3 cut boundary (via
//!   [`Cf::reduce_alg33_governed_from`]),
//! * and once more when the reduction finishes.
//!
//! Each boundary first garbage-collects χ, which makes the in-memory state
//! *bit-identical* to its own serialized round trip: the resumed run and an
//! uninterrupted run then execute the same deterministic operations on the
//! same arenas, so their final cascades agree byte for byte. The
//! crash-recovery harness in `bddcf-check` asserts exactly that on every
//! registry benchmark.
//!
//! # Wire format (version 1)
//!
//! All integers little-endian; see DESIGN.md for the normative layout.
//!
//! ```text
//! magic "BDDCFCKP" · version u32 · iteration u32 · next_cut u32
//! current_width u64 · current_nodes u64 · removed_inputs u64
//! num_inputs u32 · num_outputs u32 · root u32 · isf_roots (3·m) u32
//! report { dropped u64 · terminal_tag u32 · terminal_arg u64
//!          count u32 · events (phase u32 · action u32 · has_locus u32
//!          · locus u32 · cause_tag u32 · cause_arg u64) }
//! manager_len u64 · manager snapshot bytes (self-checksummed)
//! max_width u64 · node_count u64       (validation section)
//! fnv1a-64 checksum u64                (over every preceding byte)
//! ```
//!
//! The trailing validation section stores the width profile summary of the
//! checkpointed χ; the loader recomputes both values from the restored
//! state and refuses the checkpoint on mismatch.

use crate::alg33::Alg33Options;
use crate::cf::{Cf, IsfBdds};
use crate::degrade::{DegradationEvent, DegradationReport, DegradeAction, Phase};
use crate::driver::FixpointStats;
use crate::layout::CfLayout;
use bddcf_bdd::snapshot::{fnv1a64, put_u32, put_u64, ByteReader, SnapshotError};
use bddcf_bdd::vfs::{self, StdVfs, Vfs};
use bddcf_bdd::{BddManager, Error as BudgetError, NodeId};
use std::fmt;
#[cfg(test)]
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every pipeline checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"BDDCFCKP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File extension used for checkpoint files.
pub const CHECKPOINT_EXT: &str = "bddcfck";

/// `next_cut` sentinel meaning the reduction is complete.
const CUT_DONE: u32 = u32::MAX;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(io::Error),
    /// The checkpoint container (or its embedded manager snapshot) failed
    /// to decode; carries the byte offset.
    Wire(SnapshotError),
    /// The bytes decoded but describe an inconsistent pipeline state (bad
    /// ids, wrong layout, validation-section mismatch, …).
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Wire(e) => write!(f, "checkpoint decode error: {e}"),
            CheckpointError::Invalid(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Wire(e)
    }
}

/// Where in the fixpoint loop a checkpoint was taken — always a boundary
/// the driver can resume from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// Top of fixpoint iteration `iteration` (1-based), before support
    /// reduction.
    IterationStart {
        /// The iteration about to run.
        iteration: u32,
    },
    /// About to attempt Algorithm 3.3 cut `cut` within `iteration`; all
    /// earlier cuts of this iteration are installed.
    Alg33Cut {
        /// The running iteration.
        iteration: u32,
        /// The next cut to attempt (`1 ≤ cut < num_vars`).
        cut: u32,
    },
    /// The reduction reached its fixpoint (or iteration cap / terminal
    /// budget cause); only cascade synthesis remains.
    ReductionDone {
        /// Iterations executed.
        iteration: u32,
    },
}

impl Progress {
    fn encode(self) -> (u32, u32) {
        match self {
            Progress::IterationStart { iteration } => (iteration, 0),
            Progress::Alg33Cut { iteration, cut } => (iteration, cut),
            Progress::ReductionDone { iteration } => (iteration, CUT_DONE),
        }
    }

    fn decode(iteration: u32, next_cut: u32) -> Self {
        match next_cut {
            0 => Progress::IterationStart { iteration },
            CUT_DONE => Progress::ReductionDone { iteration },
            cut => Progress::Alg33Cut { iteration, cut },
        }
    }
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Progress::IterationStart { iteration } => {
                write!(f, "iteration {iteration} start")
            }
            Progress::Alg33Cut { iteration, cut } => {
                write!(f, "iteration {iteration}, alg33 cut {cut}")
            }
            Progress::ReductionDone { iteration } => {
                write!(f, "reduction done after {iteration} iteration(s)")
            }
        }
    }
}

/// The fixpoint driver's loop-carried state, saved alongside the manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointCursor {
    /// `(max_width, node_count)` at the end of the previous iteration —
    /// the value the convergence test compares against.
    pub current: (u64, u64),
    /// Input variables removed so far, summed over iterations.
    pub removed_inputs: u64,
}

/// Writes checkpoints into a directory with monotonically increasing
/// sequence numbers, atomically (tmp + fsync + rename).
///
/// Opening a directory that already holds checkpoints continues the
/// sequence after the highest existing number, so a resumed run never
/// overwrites the files it is resuming from.
pub struct Checkpointer {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    seq: u64,
    last: Option<PathBuf>,
}

impl Checkpointer {
    /// Creates (if needed) and opens `dir` for checkpoint writing on the
    /// real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Checkpointer::with_vfs(Arc::new(StdVfs), dir)
    }

    /// Creates (if needed) and opens `dir` for checkpoint writing through
    /// an explicit [`Vfs`] — the hook fault-injection harnesses use.
    pub fn with_vfs(vfs: Arc<dyn Vfs>, dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        let seq = match latest_checkpoint_seq(vfs.as_ref(), &dir)? {
            Some((seq, _)) => seq + 1,
            None => 0,
        };
        Ok(Checkpointer {
            vfs,
            dir,
            seq,
            last: None,
        })
    }

    /// The directory checkpoints go to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the most recent checkpoint written by *this* checkpointer.
    pub fn last_path(&self) -> Option<&Path> {
        self.last.as_deref()
    }

    /// Atomically writes one checkpoint and returns its path: temporary
    /// file → fsync → rename → **parent-directory fsync**, so neither the
    /// data nor the rename itself can be lost at power loss once `save`
    /// returns.
    pub fn save(
        &mut self,
        cf: &Cf,
        progress: Progress,
        cursor: &FixpointCursor,
        report: &DegradationReport,
    ) -> io::Result<PathBuf> {
        let bytes = encode_checkpoint(cf, progress, cursor, report);
        let name = format!("ckpt-{:06}.{CHECKPOINT_EXT}", self.seq);
        let path = self.dir.join(&name);
        vfs::write_atomic(self.vfs.as_ref(), &self.dir, &name, &bytes)?;
        self.seq += 1;
        self.last = Some(path.clone());
        Ok(path)
    }
}

fn checkpoint_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name
        .strip_prefix("ckpt-")?
        .strip_suffix(&format!(".{CHECKPOINT_EXT}"))?;
    stem.parse().ok()
}

fn latest_checkpoint_seq(vfs: &dyn Vfs, dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    let mut best: Option<(u64, PathBuf)> = None;
    for path in vfs.list(dir)? {
        if let Some(seq) = checkpoint_seq(&path) {
            if best.as_ref().is_none_or(|(b, _)| seq > *b) {
                best = Some((seq, path));
            }
        }
    }
    Ok(best)
}

/// All checkpoints in `dir`, sorted by descending sequence number.
fn checkpoints_desc(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    match vfs.list(dir) {
        Ok(paths) => {
            for path in paths {
                if let Some(seq) = checkpoint_seq(&path) {
                    found.push((seq, path));
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    found.sort_by_key(|e| std::cmp::Reverse(e.0));
    Ok(found)
}

/// The highest-numbered checkpoint in `dir`, if any. Returns `Ok(None)`
/// for a missing or empty directory (a crash before the first save).
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<PathBuf>> {
    latest_checkpoint_vfs(&StdVfs, dir)
}

/// [`latest_checkpoint`] through an explicit [`Vfs`].
pub fn latest_checkpoint_vfs(vfs: &dyn Vfs, dir: &Path) -> io::Result<Option<PathBuf>> {
    match latest_checkpoint_seq(vfs, dir) {
        Ok(best) => Ok(best.map(|(_, path)| path)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// The newest checkpoint in `dir` that actually loads.
///
/// Scans sequence numbers from highest to lowest; a checkpoint that is
/// truncated, checksum-corrupt, or semantically invalid is **quarantined**
/// — renamed to `<name>.corrupt` so rescans skip it — with a report on
/// stderr, and the scan falls back to the previous sequence number. This
/// is what makes one torn latest checkpoint degrade recovery instead of
/// bricking it. Returns `Ok(None)` when no loadable checkpoint exists.
pub fn latest_valid_checkpoint(dir: &Path) -> io::Result<Option<(PathBuf, LoadedCheckpoint)>> {
    latest_valid_checkpoint_vfs(&StdVfs, dir)
}

/// [`latest_valid_checkpoint`] through an explicit [`Vfs`].
pub fn latest_valid_checkpoint_vfs(
    vfs: &dyn Vfs,
    dir: &Path,
) -> io::Result<Option<(PathBuf, LoadedCheckpoint)>> {
    for (_, path) in checkpoints_desc(vfs, dir)? {
        match load_checkpoint_vfs(vfs, &path) {
            Ok(loaded) => return Ok(Some((path, loaded))),
            Err(err) => {
                let quarantined = quarantine_name(&path);
                let moved = vfs.rename(&path, &quarantined).is_ok();
                eprintln!(
                    "bddcf: quarantining corrupt checkpoint {}: {err}{}",
                    path.display(),
                    if moved {
                        format!(" (moved to {})", quarantined.display())
                    } else {
                        String::from(" (rename failed; left in place)")
                    }
                );
            }
        }
    }
    Ok(None)
}

/// `<path>.corrupt` — the quarantine name for a checkpoint or spool file
/// that failed to decode.
pub fn quarantine_name(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------

fn encode_cause(cause: BudgetError) -> (u32, u64) {
    match cause {
        BudgetError::NodeLimit { limit } => (0, limit as u64),
        BudgetError::StepLimit { limit } => (1, limit),
        BudgetError::TimeBudget => (2, 0),
        BudgetError::Cancelled => (3, 0),
        BudgetError::Poisoned => (4, 0),
    }
}

fn decode_cause(tag: u32, arg: u64, offset: usize) -> Result<BudgetError, CheckpointError> {
    Ok(match tag {
        0 => BudgetError::NodeLimit {
            limit: arg as usize,
        },
        1 => BudgetError::StepLimit { limit: arg },
        2 => BudgetError::TimeBudget,
        3 => BudgetError::Cancelled,
        4 => BudgetError::Poisoned,
        _ => {
            return Err(CheckpointError::Wire(SnapshotError::Malformed {
                offset,
                message: format!("unknown budget-cause tag {tag}"),
            }))
        }
    })
}

fn encode_phase(phase: Phase) -> u32 {
    match phase {
        Phase::Construction => 0,
        Phase::SupportReduction => 1,
        Phase::Alg31 => 2,
        Phase::Alg33 => 3,
        Phase::CascadeSynthesis => 4,
    }
}

fn decode_phase(tag: u32, offset: usize) -> Result<Phase, CheckpointError> {
    Ok(match tag {
        0 => Phase::Construction,
        1 => Phase::SupportReduction,
        2 => Phase::Alg31,
        3 => Phase::Alg33,
        4 => Phase::CascadeSynthesis,
        _ => {
            return Err(CheckpointError::Wire(SnapshotError::Malformed {
                offset,
                message: format!("unknown phase tag {tag}"),
            }))
        }
    })
}

fn encode_action(action: DegradeAction) -> u32 {
    match action {
        DegradeAction::GcRetry => 0,
        DegradeAction::FellBackToPairMerge => 1,
        DegradeAction::SkippedLevel => 2,
        DegradeAction::SkippedVariable => 3,
        DegradeAction::SkippedPhase => 4,
        DegradeAction::StoppedIterating => 5,
        DegradeAction::CompletedUnbudgeted => 6,
    }
}

fn decode_action(tag: u32, offset: usize) -> Result<DegradeAction, CheckpointError> {
    Ok(match tag {
        0 => DegradeAction::GcRetry,
        1 => DegradeAction::FellBackToPairMerge,
        2 => DegradeAction::SkippedLevel,
        3 => DegradeAction::SkippedVariable,
        4 => DegradeAction::SkippedPhase,
        5 => DegradeAction::StoppedIterating,
        6 => DegradeAction::CompletedUnbudgeted,
        _ => {
            return Err(CheckpointError::Wire(SnapshotError::Malformed {
                offset,
                message: format!("unknown degrade-action tag {tag}"),
            }))
        }
    })
}

/// Serializes one checkpoint into the wire format (see module docs).
pub fn encode_checkpoint(
    cf: &Cf,
    progress: Progress,
    cursor: &FixpointCursor,
    report: &DegradationReport,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u32(&mut buf, CHECKPOINT_VERSION);
    let (iteration, next_cut) = progress.encode();
    put_u32(&mut buf, iteration);
    put_u32(&mut buf, next_cut);
    put_u64(&mut buf, cursor.current.0);
    put_u64(&mut buf, cursor.current.1);
    put_u64(&mut buf, cursor.removed_inputs);
    put_u32(&mut buf, cf.layout().num_inputs() as u32);
    put_u32(&mut buf, cf.layout().num_outputs() as u32);
    put_u32(&mut buf, cf.root().raw());
    for id in cf.isf().roots() {
        put_u32(&mut buf, id.raw());
    }
    put_u64(&mut buf, report.dropped());
    match report.terminal_cause() {
        None => {
            put_u32(&mut buf, 0);
            put_u64(&mut buf, 0);
        }
        Some(cause) => {
            let (tag, arg) = encode_cause(cause);
            put_u32(&mut buf, tag + 1);
            put_u64(&mut buf, arg);
        }
    }
    put_u32(&mut buf, report.events().len() as u32);
    for e in report.events() {
        put_u32(&mut buf, encode_phase(e.phase));
        put_u32(&mut buf, encode_action(e.action));
        put_u32(&mut buf, u32::from(e.locus.is_some()));
        put_u32(&mut buf, e.locus.unwrap_or(0));
        let (tag, arg) = encode_cause(e.cause);
        put_u32(&mut buf, tag);
        put_u64(&mut buf, arg);
    }
    let snapshot = cf.manager().snapshot_bytes();
    put_u64(&mut buf, snapshot.len() as u64);
    buf.extend_from_slice(&snapshot);
    put_u64(&mut buf, cf.max_width() as u64);
    put_u64(&mut buf, cf.node_count() as u64);
    let checksum = fnv1a64(&buf);
    put_u64(&mut buf, checksum);
    buf
}

/// A checkpoint restored from disk, ready to [`resume`]
/// (LoadedCheckpoint::resume).
pub struct LoadedCheckpoint {
    /// The restored pipeline state (manager budget is unlimited; install
    /// one before resuming if governance is wanted).
    pub cf: Cf,
    /// The boundary the checkpoint was taken at.
    pub progress: Progress,
    /// The loop-carried fixpoint state.
    pub cursor: FixpointCursor,
    /// The degradations accumulated up to the checkpoint.
    pub report: DegradationReport,
}

/// Decodes a checkpoint from bytes, validating the checksum, every node id,
/// and the stored width/node-count summary against the restored state.
// xlint: allow(XL104): every slice offset is validated by an explicit `Truncated` length check before the split
pub fn decode_checkpoint(bytes: &[u8]) -> Result<LoadedCheckpoint, CheckpointError> {
    let mut header = ByteReader::new(bytes);
    let magic = header.take(CHECKPOINT_MAGIC.len())?;
    if magic != CHECKPOINT_MAGIC {
        return Err(SnapshotError::BadMagic.into());
    }
    let version = header.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        }
        .into());
    }
    if bytes.len() < header.pos() + 8 {
        return Err(SnapshotError::Truncated {
            offset: bytes.len(),
            needed: header.pos() + 8 - bytes.len(),
        }
        .into());
    }
    let payload_len = bytes.len() - 8;
    let expected = fnv1a64(&bytes[..payload_len]);
    let mut tail = ByteReader::with_base(&bytes[payload_len..], payload_len);
    let found = tail.u64()?;
    if expected != found {
        return Err(SnapshotError::ChecksumMismatch { expected, found }.into());
    }

    let mut r = ByteReader::with_base(&bytes[header.pos()..payload_len], header.pos());
    let iteration = r.u32()?;
    let next_cut = r.u32()?;
    let cursor = FixpointCursor {
        current: (r.u64()?, r.u64()?),
        removed_inputs: r.u64()?,
    };
    let num_inputs = r.u32()? as usize;
    let num_outputs = r.u32()? as usize;
    let root = NodeId::from_raw(r.u32()?);
    let mut isf_roots = Vec::with_capacity(3 * num_outputs);
    for _ in 0..3 * num_outputs {
        isf_roots.push(NodeId::from_raw(r.u32()?));
    }
    let dropped = r.u64()?;
    let terminal_tag = r.u32()?;
    let terminal_arg = r.u64()?;
    let first_terminal = if terminal_tag == 0 {
        None
    } else {
        Some(decode_cause(terminal_tag - 1, terminal_arg, r.pos())?)
    };
    let event_count = r.u32()? as usize;
    let mut events = Vec::with_capacity(event_count);
    for _ in 0..event_count {
        let offset = r.pos();
        let phase = decode_phase(r.u32()?, offset)?;
        let action = decode_action(r.u32()?, offset)?;
        let has_locus = r.u32()? != 0;
        let locus = r.u32()?;
        let cause = decode_cause(r.u32()?, r.u64()?, offset)?;
        events.push(DegradationEvent {
            phase,
            locus: has_locus.then_some(locus),
            action,
            cause,
        });
    }
    let report = DegradationReport::from_checkpoint_parts(events, dropped, first_terminal);
    let snapshot_len = r.u64()? as usize;
    let snapshot = r.take(snapshot_len)?;
    let mgr = BddManager::from_snapshot_bytes(snapshot)?;
    let stored_width = r.u64()?;
    let stored_nodes = r.u64()?;
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed {
            offset: r.pos(),
            message: format!("{} trailing byte(s)", r.remaining()),
        }
        .into());
    }

    let layout = CfLayout::new(num_inputs, num_outputs);
    let cf = Cf::from_checkpoint_parts(
        mgr,
        layout,
        root,
        IsfBdds::from_roots(&isf_roots, num_outputs),
    )
    .map_err(CheckpointError::Invalid)?;
    if (cf.max_width() as u64, cf.node_count() as u64) != (stored_width, stored_nodes) {
        return Err(CheckpointError::Invalid(format!(
            "validation mismatch: checkpoint recorded width {stored_width} / {stored_nodes} \
             nodes, restored state has width {} / {} nodes",
            cf.max_width(),
            cf.node_count()
        )));
    }
    Ok(LoadedCheckpoint {
        cf,
        progress: Progress::decode(iteration, next_cut),
        cursor,
        report,
    })
}

/// Reads and decodes a checkpoint file.
pub fn load_checkpoint(path: &Path) -> Result<LoadedCheckpoint, CheckpointError> {
    load_checkpoint_vfs(&StdVfs, path)
}

/// [`load_checkpoint`] through an explicit [`Vfs`].
pub fn load_checkpoint_vfs(
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<LoadedCheckpoint, CheckpointError> {
    let bytes = vfs.read(path)?;
    decode_checkpoint(&bytes)
}

// ---------------------------------------------------------------------
// The checkpointed fixpoint driver
// ---------------------------------------------------------------------

impl Cf {
    /// The governed fixpoint reduction of
    /// [`reduce_to_fixpoint_governed`](Cf::reduce_to_fixpoint_governed),
    /// checkpointing into `ckpt` at every resumable boundary (iteration
    /// starts, Algorithm 3.3 cut boundaries, completion).
    ///
    /// With `abort_on_cancel` set, a terminal
    /// [`Cancelled`](bddcf_bdd::Error::Cancelled) cause makes the driver
    /// return `Ok(None)` *immediately*, without writing further
    /// checkpoints — this simulates the process dying at that point, and
    /// is what the crash-recovery harness uses for deterministic kills.
    /// Without it, every terminal cause degrades gracefully exactly like
    /// the plain governed driver and `Ok(Some(stats))` is returned.
    pub fn reduce_to_fixpoint_checkpointed(
        &mut self,
        options: &Alg33Options,
        max_iterations: usize,
        report: &mut DegradationReport,
        ckpt: &mut Checkpointer,
        abort_on_cancel: bool,
    ) -> Result<Option<FixpointStats>, CheckpointError> {
        let cursor = FixpointCursor {
            current: (self.max_width() as u64, self.node_count() as u64),
            removed_inputs: 0,
        };
        drive_fixpoint(
            self,
            options,
            max_iterations,
            report,
            ckpt,
            abort_on_cancel,
            1,
            0,
            cursor,
        )
    }
}

impl LoadedCheckpoint {
    /// Continues the reduction from the recorded boundary, checkpointing
    /// into `ckpt` (typically the same directory — the sequence continues
    /// after the loaded file). Returns the finished state, the full report,
    /// and the stats (`None` only when `abort_on_cancel` tripped again).
    #[allow(clippy::type_complexity)]
    pub fn resume(
        mut self,
        options: &Alg33Options,
        max_iterations: usize,
        ckpt: &mut Checkpointer,
        abort_on_cancel: bool,
    ) -> Result<(Cf, DegradationReport, Option<FixpointStats>), CheckpointError> {
        let (iteration, next_cut) = self.progress.encode();
        let mut report = self.report;
        let stats = drive_fixpoint(
            &mut self.cf,
            options,
            max_iterations,
            &mut report,
            ckpt,
            abort_on_cancel,
            iteration,
            next_cut,
            self.cursor,
        )?;
        Ok((self.cf, report, stats))
    }
}

/// Did a crash-simulating run hit its kill point?
fn aborted(abort_on_cancel: bool, report: &DegradationReport) -> bool {
    abort_on_cancel && matches!(report.terminal_cause(), Some(BudgetError::Cancelled))
}

/// The shared fixpoint loop behind fresh and resumed checkpointed runs.
///
/// Mirrors [`Cf::reduce_to_fixpoint_governed`] phase for phase (support
/// reduction → Algorithm 3.1 ladder → Algorithm 3.3 ladder → convergence
/// test), restructured around an explicit `(iteration, next_cut)` cursor so
/// it can start mid-iteration. Every boundary collects garbage *before*
/// saving: after a collect, the in-memory arena equals its serialized round
/// trip, which is what makes resumed runs byte-identical to uninterrupted
/// ones.
#[allow(clippy::too_many_arguments)]
fn drive_fixpoint(
    cf: &mut Cf,
    options: &Alg33Options,
    max_iterations: usize,
    report: &mut DegradationReport,
    ckpt: &mut Checkpointer,
    abort_on_cancel: bool,
    mut iteration: u32,
    mut next_cut: u32,
    mut cursor: FixpointCursor,
) -> Result<Option<FixpointStats>, CheckpointError> {
    let max_iterations = max_iterations.max(1) as u32;
    let initial = (cf.max_width(), cf.node_count());
    'iterate: loop {
        if next_cut == CUT_DONE {
            break 'iterate;
        }
        if next_cut == 0 {
            cf.collect();
            ckpt.save(cf, Progress::IterationStart { iteration }, &cursor, report)?;
            cursor.removed_inputs += cf.reduce_support_variables_governed(report).len() as u64;
            if aborted(abort_on_cancel, report) {
                return Ok(None);
            }
            if let Some(cause) = report.terminal_cause() {
                report.record(Phase::Alg31, None, DegradeAction::StoppedIterating, cause);
                break 'iterate;
            }
            match cf.try_reduce_alg31() {
                Ok(_) => {}
                Err(cause) if matches!(cause, BudgetError::NodeLimit { .. }) => {
                    report.record(Phase::Alg31, None, DegradeAction::GcRetry, cause);
                    cf.collect();
                    if let Err(cause) = cf.try_reduce_alg31() {
                        report.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
                        cf.collect();
                    }
                }
                Err(cause) => {
                    report.record(Phase::Alg31, None, DegradeAction::SkippedPhase, cause);
                    cf.collect();
                }
            }
            if aborted(abort_on_cancel, report) {
                return Ok(None);
            }
            if let Some(cause) = report.terminal_cause() {
                report.record(Phase::Alg33, None, DegradeAction::StoppedIterating, cause);
                break 'iterate;
            }
            next_cut = 1;
        }
        cf.reduce_alg33_governed_from(options, report, next_cut, |cf, cut, rep| {
            cf.collect();
            ckpt.save(cf, Progress::Alg33Cut { iteration, cut }, &cursor, rep)
                .map(|_| ())
        })?;
        if aborted(abort_on_cancel, report) {
            return Ok(None);
        }
        if let Some(cause) = report.terminal_cause() {
            report.record(Phase::Alg33, None, DegradeAction::StoppedIterating, cause);
            break 'iterate;
        }
        let now = (cf.max_width() as u64, cf.node_count() as u64);
        if now >= cursor.current || iteration >= max_iterations {
            break 'iterate;
        }
        cursor.current = now;
        iteration += 1;
        next_cut = 0;
    }
    cf.collect();
    ckpt.save(cf, Progress::ReductionDone { iteration }, &cursor, report)?;
    Ok(Some(FixpointStats {
        iterations: iteration as usize,
        removed_inputs: cursor.removed_inputs as usize,
        max_width: (initial.0, cf.max_width()),
        nodes: (initial.1, cf.node_count()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bddcf-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_round_trips_and_validates() {
        let table = TruthTable::paper_table1();
        let cf = Cf::from_truth_table(&table);
        let cursor = FixpointCursor {
            current: (cf.max_width() as u64, cf.node_count() as u64),
            removed_inputs: 0,
        };
        let mut report = DegradationReport::new();
        report.record(
            Phase::Alg33,
            Some(2),
            DegradeAction::SkippedLevel,
            BudgetError::NodeLimit { limit: 9 },
        );
        let bytes = encode_checkpoint(
            &cf,
            Progress::Alg33Cut {
                iteration: 1,
                cut: 3,
            },
            &cursor,
            &report,
        );
        let loaded = decode_checkpoint(&bytes).expect("round trip");
        assert_eq!(
            loaded.progress,
            Progress::Alg33Cut {
                iteration: 1,
                cut: 3
            }
        );
        assert_eq!(loaded.cursor, cursor);
        assert_eq!(loaded.report.events(), report.events());
        assert_eq!(loaded.cf.max_width(), cf.max_width());
        assert_eq!(loaded.cf.node_count(), cf.node_count());
        // The restored state re-serializes to the same bytes.
        assert_eq!(
            encode_checkpoint(&loaded.cf, loaded.progress, &loaded.cursor, &loaded.report),
            bytes
        );
    }

    #[test]
    fn corrupted_checkpoints_error_with_offsets() {
        let table = TruthTable::paper_table1();
        let cf = Cf::from_truth_table(&table);
        let cursor = FixpointCursor {
            current: (0, 0),
            removed_inputs: 0,
        };
        let bytes = encode_checkpoint(
            &cf,
            Progress::IterationStart { iteration: 1 },
            &cursor,
            &DegradationReport::new(),
        );
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(CheckpointError::Wire(SnapshotError::BadMagic))
        ));
        // Version skew.
        let mut bad = bytes.clone();
        bad[8] = 7;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(CheckpointError::Wire(SnapshotError::UnsupportedVersion {
                found: 7,
                ..
            }))
        ));
        // Flipped payload byte.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 1;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(CheckpointError::Wire(
                SnapshotError::ChecksumMismatch { .. }
            ))
        ));
        // Truncated to almost nothing.
        assert!(matches!(
            decode_checkpoint(&bytes[..6]),
            Err(CheckpointError::Wire(SnapshotError::Truncated { .. }))
        ));
    }

    #[test]
    fn checkpointer_writes_atomically_and_continues_sequences() {
        let dir = tmpdir("seq");
        let table = TruthTable::paper_table1();
        let cf = Cf::from_truth_table(&table);
        let cursor = FixpointCursor {
            current: (0, 0),
            removed_inputs: 0,
        };
        let report = DegradationReport::new();
        let mut ck = Checkpointer::new(&dir).expect("create");
        let p0 = ck
            .save(
                &cf,
                Progress::IterationStart { iteration: 1 },
                &cursor,
                &report,
            )
            .expect("save");
        let p1 = ck
            .save(
                &cf,
                Progress::ReductionDone { iteration: 1 },
                &cursor,
                &report,
            )
            .expect("save");
        assert_ne!(p0, p1);
        assert_eq!(latest_checkpoint(&dir).expect("scan"), Some(p1.clone()));
        // No temporary files survive a save.
        for entry in fs::read_dir(&dir).expect("readdir") {
            let name = entry.expect("entry").file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "stale tmp file {name:?}"
            );
        }
        // A new checkpointer on the same directory continues numbering.
        let mut ck2 = Checkpointer::new(&dir).expect("reopen");
        let p2 = ck2
            .save(
                &cf,
                Progress::ReductionDone { iteration: 1 },
                &cursor,
                &report,
            )
            .expect("save");
        assert_eq!(latest_checkpoint(&dir).expect("scan"), Some(p2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_matches_plain_governed_run() {
        let dir = tmpdir("parity");
        let table = TruthTable::paper_table1();
        let options = Alg33Options::default();

        let mut plain = Cf::from_truth_table(&table);
        let mut plain_report = DegradationReport::new();
        let plain_stats = plain.reduce_to_fixpoint_governed(&options, 5, &mut plain_report);

        let mut ck = Checkpointer::new(&dir).expect("create");
        let mut cf = Cf::from_truth_table(&table);
        let mut report = DegradationReport::new();
        let stats = cf
            .reduce_to_fixpoint_checkpointed(&options, 5, &mut report, &mut ck, false)
            .expect("no I/O errors")
            .expect("not aborted");
        assert_eq!(stats.max_width.1, plain_stats.max_width.1);
        assert!(report.is_clean());
        assert!(plain_report.is_clean());
        assert!(ck.last_path().is_some());

        // The final checkpoint restores to the finished state.
        let latest = latest_checkpoint(&dir).expect("scan").expect("some");
        let mut loaded = load_checkpoint(&latest).expect("load");
        assert!(matches!(loaded.progress, Progress::ReductionDone { .. }));
        assert_eq!(loaded.cf.max_width(), cf.max_width());
        assert_eq!(loaded.cf.node_count(), cf.node_count());
        let g = loaded.cf.complete();
        assert!(loaded.cf.realizes_original(&g));
        let _ = fs::remove_dir_all(&dir);
    }
}
