//! Algorithm 3.3: level-by-level width reduction of a BDD_for_CF by
//! minimal clique cover of the column functions.
//!
//! For every cut (from just below the root down to just above the
//! terminals):
//!
//! 1. collect the *column functions* — the distinct non-zero nodes hanging
//!    below the cut (Definition 3.6 transported to the BDD, and the
//!    footnote: all-zero columns are skipped);
//! 2. build their compatibility graph (Definition 3.8);
//! 3. cover it by cliques with Algorithm 3.2;
//! 4. replace every column of a clique by the AND of the whole clique and
//!    rebuild the BDD above the cut.
//!
//! # Two engineering notes (documented divergences)
//!
//! * *Joint compatibility.* For multi-output columns, pairwise
//!   compatibility does not imply that the whole clique has a non-empty
//!   joint intersection on every live input (the paper's Lemma 3.1 only
//!   covers products of two). Each clique is therefore multiplied out
//!   incrementally and re-validated; members that would break joint
//!   liveness stay unmerged. This keeps the reduction sound unconditionally.
//! * *Scalability.* Building the full pairwise graph costs
//!   `O(W²)` BDD operations per cut. Columns are first bucketed by their
//!   live set (merging across different live sets is never sound), and
//!   buckets larger than [`Alg33Options::max_pairwise_group`] switch to a
//!   first-fit greedy cover that only tests each column against existing
//!   clique products.

use crate::cf::Cf;
use crate::compat::CompatCtx;
use crate::cover::{CompatGraph, CoverHeuristic};
use crate::degrade::{DegradationReport, DegradeAction, Phase};
use bddcf_bdd::hasher::{FastMap, FastSet};
use bddcf_bdd::{BddManager, Error as BudgetError, NodeId, FALSE};

/// Tuning knobs for [`Cf::reduce_alg33`].
#[derive(Clone, Debug)]
pub struct Alg33Options {
    /// Clique-cover heuristic (the paper uses min-degree-first).
    pub heuristic: CoverHeuristic,
    /// Live-set buckets up to this size use the full pairwise
    /// compatibility graph plus Algorithm 3.2; larger buckets use first-fit
    /// greedy merging against clique products.
    pub max_pairwise_group: usize,
    /// In first-fit mode, how many existing cliques to test per column
    /// before giving up and opening a new clique.
    pub first_fit_tries: usize,
}

impl Default for Alg33Options {
    fn default() -> Self {
        Alg33Options {
            heuristic: CoverHeuristic::MinDegreeFirst,
            max_pairwise_group: 192,
            first_fit_tries: 64,
        }
    }
}

/// Metrics of one [`Cf::reduce_alg33`] run.
#[derive(Clone, Debug)]
pub struct Alg33Stats {
    /// Non-terminal node count before.
    pub nodes_before: usize,
    /// Non-terminal node count after.
    pub nodes_after: usize,
    /// Maximum width before.
    pub max_width_before: usize,
    /// Maximum width after.
    pub max_width_after: usize,
    /// Number of columns eliminated (summed over all cuts).
    pub columns_merged: usize,
}

impl Cf {
    /// Applies Algorithm 3.3 with default options.
    pub fn reduce_alg33_default(&mut self) -> Alg33Stats {
        self.reduce_alg33(&Alg33Options::default())
    }

    /// Applies Algorithm 3.3, rewriting χ in place, and reports the
    /// metrics.
    pub fn reduce_alg33(&mut self, options: &Alg33Options) -> Alg33Stats {
        let saved = self.manager_mut().take_budget();
        let mut report = DegradationReport::new();
        let stats = self.reduce_alg33_governed(options, &mut report);
        self.manager_mut().resume_budget(saved);
        debug_assert!(report.is_clean(), "unbudgeted runs cannot degrade");
        stats
    }

    /// Budget-governed Algorithm 3.3: never fails, degrading per cut level
    /// instead. On budget exhaustion at a cut the ladder is:
    ///
    /// 1. collect garbage and retry the same cut with the same cover
    ///    machinery (only for a node-quota miss — GC can free room);
    /// 2. fall back from the Algorithm 3.2 clique cover to Algorithm
    ///    3.1-style incremental pair merging (first-fit, one try);
    /// 3. skip the cut, keeping the last valid χ.
    ///
    /// A *terminal* cause (step, time, or cancellation budget — see
    /// [`DegradationReport::terminal_cause`]) abandons the rest of the phase
    /// immediately: no amount of GC brings those budgets back. Every
    /// downgrade is recorded in `report`; χ after return is always a valid
    /// refinement of χ before, however far the ladder dropped.
    pub fn reduce_alg33_governed(
        &mut self,
        options: &Alg33Options,
        report: &mut DegradationReport,
    ) -> Alg33Stats {
        match self.reduce_alg33_governed_from(options, report, 1, |_, _, _| {
            Ok::<(), std::convert::Infallible>(())
        }) {
            Ok(stats) => stats,
            Err(never) => match never {},
        }
    }

    /// Resumable variant of [`reduce_alg33_governed`]
    /// (Cf::reduce_alg33_governed): starts at `start_cut` (cuts below it
    /// are assumed already reduced, e.g. by a run this one resumes) and
    /// invokes `boundary` at the top of every cut iteration — after all
    /// work on earlier cuts is installed, before any work on `cut` begins.
    ///
    /// The checkpoint subsystem uses the boundary hook to persist the
    /// pipeline state at exactly the points it can later resume from; a
    /// boundary error (e.g. a failed checkpoint write) aborts the phase and
    /// is returned verbatim. χ is always in a valid, installed state when
    /// `boundary` runs and when this returns, `Ok` or `Err`.
    pub fn reduce_alg33_governed_from<E>(
        &mut self,
        options: &Alg33Options,
        report: &mut DegradationReport,
        start_cut: u32,
        mut boundary: impl FnMut(&mut Cf, u32, &DegradationReport) -> Result<(), E>,
    ) -> Result<Alg33Stats, E> {
        let nodes_before = self.node_count();
        let max_width_before = self.max_width();
        let layout = self.layout().clone();
        let t = layout.num_vars() as u32;
        let mut columns_merged = 0usize;
        'cuts: for cut in start_cut.max(1)..t {
            boundary(self, cut, report)?;
            let attempt = |cf: &mut Cf, mode: CutCover| -> Result<(NodeId, usize), BudgetError> {
                let mut merged = 0usize;
                let (mgr, _, root, _) = cf.parts_mut();
                let ctx = CompatCtx::new(mgr, &layout);
                let new_root = try_reduce_cut(mgr, &ctx, root, cut, options, &mut merged, mode)?;
                Ok((new_root, merged))
            };
            let outcome = attempt(self, CutCover::PerOptions).or_else(|cause| {
                if is_terminal(cause) {
                    return Err(cause);
                }
                // Rung 1: GC + retry once. The failed attempt left only
                // unreferenced garbage; χ itself is untouched.
                report.record(Phase::Alg33, Some(cut), DegradeAction::GcRetry, cause);
                self.collect();
                attempt(self, CutCover::PerOptions)
            });
            let outcome = outcome.or_else(|cause| {
                if is_terminal(cause) {
                    return Err(cause);
                }
                // Rung 2: cheap pair merging instead of the clique cover.
                report.record(
                    Phase::Alg33,
                    Some(cut),
                    DegradeAction::FellBackToPairMerge,
                    cause,
                );
                self.collect();
                attempt(self, CutCover::PairMergeOnly)
            });
            match outcome {
                Ok((new_root, merged)) => {
                    columns_merged += merged;
                    if new_root != self.root() {
                        self.install_root(new_root);
                    }
                }
                Err(cause) if is_terminal(cause) => {
                    // Rung 3 (terminal): the whole phase is over.
                    report.record(Phase::Alg33, Some(cut), DegradeAction::SkippedPhase, cause);
                    break 'cuts;
                }
                Err(cause) => {
                    // Rung 3: keep the last valid χ for this level only.
                    report.record(Phase::Alg33, Some(cut), DegradeAction::SkippedLevel, cause);
                    self.collect();
                }
            }
        }
        Ok(Alg33Stats {
            nodes_before,
            nodes_after: self.node_count(),
            max_width_before,
            max_width_after: self.max_width(),
            columns_merged,
        })
    }
}

/// Which cover machinery a cut attempt may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CutCover {
    /// Whatever [`Alg33Options`] selects (pairwise graph or first-fit).
    PerOptions,
    /// Degraded mode: first-fit with a single try per column — the
    /// incremental pair merging of Algorithm 3.1, transported to the cut.
    PairMergeOnly,
}

/// Is this budget error unrecoverable within the current phase?
fn is_terminal(e: BudgetError) -> bool {
    !matches!(e, BudgetError::NodeLimit { .. })
}

/// The distinct non-zero nodes hanging below `cut` — the column functions.
fn collect_columns(mgr: &BddManager, root: NodeId, cut: u32) -> Vec<NodeId> {
    let mut set: FastSet<NodeId> = FastSet::default();
    if mgr.level_of_node(root) >= cut && root != FALSE {
        set.insert(root);
    }
    for n in mgr.descendants(&[root]) {
        if mgr.level_of_node(n) >= cut {
            continue;
        }
        for child in [mgr.lo(n), mgr.hi(n)] {
            if child != FALSE && mgr.level_of_node(child) >= cut {
                set.insert(child);
            }
        }
    }
    let mut columns: Vec<NodeId> = set.into_iter().collect();
    columns.sort_unstable();
    columns
}

fn try_reduce_cut(
    mgr: &mut BddManager,
    ctx: &CompatCtx,
    root: NodeId,
    cut: u32,
    options: &Alg33Options,
    columns_merged: &mut usize,
    mode: CutCover,
) -> Result<NodeId, BudgetError> {
    let columns = collect_columns(mgr, root, cut);
    if columns.len() <= 1 {
        return Ok(root);
    }
    // Bucket by live set: only identically-live columns can merge.
    let mut buckets: FastMap<NodeId, Vec<NodeId>> = FastMap::default();
    for &col in &columns {
        let live = ctx.try_live(mgr, col)?;
        buckets.entry(live).or_default().push(col);
    }
    let mut bucket_list: Vec<(NodeId, Vec<NodeId>)> = buckets.into_iter().collect();
    bucket_list.sort_unstable_by_key(|(live, _)| *live);

    let mut mapping: FastMap<NodeId, NodeId> = FastMap::default();
    for (_, group) in bucket_list {
        if group.len() < 2 {
            continue;
        }
        let cliques = match mode {
            CutCover::PerOptions if group.len() <= options.max_pairwise_group => {
                cover_by_pairwise_graph(mgr, ctx, &group, options.heuristic)?
            }
            CutCover::PerOptions => cover_first_fit(mgr, ctx, &group, options.first_fit_tries)?,
            CutCover::PairMergeOnly => cover_first_fit(mgr, ctx, &group, 1)?,
        };
        for (product, members) in cliques {
            if members.len() < 2 {
                continue;
            }
            *columns_merged += members.len() - 1;
            for m in members {
                mapping.insert(m, product);
            }
        }
    }
    if mapping.is_empty() {
        return Ok(root);
    }
    let mut memo: FastMap<NodeId, NodeId> = FastMap::default();
    rebuild_above(mgr, root, cut, &mapping, &mut memo)
}

/// Full pairwise graph + Algorithm 3.2, then incremental re-validated
/// multiplication of each clique. Returns `(product, members)` pairs.
fn cover_by_pairwise_graph(
    mgr: &mut BddManager,
    ctx: &CompatCtx,
    group: &[NodeId],
    heuristic: CoverHeuristic,
) -> Result<Vec<(NodeId, Vec<NodeId>)>, BudgetError> {
    let mut graph = CompatGraph::new(group.len());
    for i in 0..group.len() {
        for j in i + 1..group.len() {
            if ctx.try_compatible(mgr, group[i], group[j])? {
                graph.add_edge(i, j);
            }
        }
    }
    let mut result = Vec::new();
    for clique in graph.clique_cover(heuristic) {
        let mut product = group[clique[0]];
        let mut members = vec![group[clique[0]]];
        let mut spilled = Vec::new();
        for &i in &clique[1..] {
            match ctx.try_extend(mgr, product, group[i])? {
                Some(p) => {
                    product = p;
                    members.push(group[i]);
                }
                None => spilled.push(group[i]),
            }
        }
        result.push((product, members));
        // Spilled members (joint-liveness failures) stay unmerged.
        for s in spilled {
            result.push((s, vec![s]));
        }
    }
    Ok(result)
}

/// First-fit greedy cover for large buckets: each column is tested against
/// up to `tries` existing clique products.
fn cover_first_fit(
    mgr: &mut BddManager,
    ctx: &CompatCtx,
    group: &[NodeId],
    tries: usize,
) -> Result<Vec<(NodeId, Vec<NodeId>)>, BudgetError> {
    let mut cliques: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for &col in group {
        let mut placed = false;
        for (product, members) in cliques.iter_mut().take(tries) {
            if let Some(p) = ctx.try_extend(mgr, *product, col)? {
                *product = p;
                members.push(col);
                placed = true;
                break;
            }
        }
        if !placed {
            cliques.push((col, vec![col]));
        }
    }
    Ok(cliques)
}

/// Rewrites the part of the BDD above `cut`, redirecting every crossing
/// edge through `mapping`.
fn rebuild_above(
    mgr: &mut BddManager,
    n: NodeId,
    cut: u32,
    mapping: &FastMap<NodeId, NodeId>,
    memo: &mut FastMap<NodeId, NodeId>,
) -> Result<NodeId, BudgetError> {
    if mgr.level_of_node(n) >= cut {
        return Ok(*mapping.get(&n).unwrap_or(&n));
    }
    if let Some(&r) = memo.get(&n) {
        return Ok(r);
    }
    let var = mgr.var_of(n);
    let lo = mgr.lo(n);
    let hi = mgr.hi(n);
    let new_lo = rebuild_above(mgr, lo, cut, mapping, memo)?;
    let new_hi = rebuild_above(mgr, hi, cut, mapping, memo)?;
    let r = if new_lo == lo && new_hi == hi {
        n
    } else {
        mgr.try_mk(var, new_lo, new_hi)?
    };
    memo.insert(n, r);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    #[test]
    fn preserves_realizability_on_paper_example() {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_alg33_default();
        assert!(cf.is_fully_live());
        assert!(stats.max_width_after <= stats.max_width_before);
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let words = cf.allowed_words(&input);
            assert!(!words.is_empty(), "row {r} lost liveness");
            for w in words {
                assert!(
                    (0..2).all(|j| table.get(r, j).admits(w >> j & 1 == 1)),
                    "row {r} word {w:02b} violates the spec"
                );
            }
        }
    }

    #[test]
    fn completion_realizes_after_alg33() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        cf.reduce_alg33_default();
        let g = cf.complete();
        assert!(cf.realizes_original(&g));
    }

    #[test]
    fn no_op_on_completely_specified_functions() {
        let table = TruthTable::paper_table1().completed(true);
        let mut cf = Cf::from_truth_table(&table);
        let before_nodes = cf.node_count();
        let stats = cf.reduce_alg33_default();
        assert_eq!(stats.columns_merged, 0);
        assert_eq!(stats.nodes_after, before_nodes);
    }

    #[test]
    fn at_least_as_strong_as_locally_obvious_merges() {
        // Same mergeable-cofactor function as the Algorithm 3.1 test.
        let table = TruthTable::from_rows(&["0", "d", "d", "0"]);
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_alg33_default();
        assert!(stats.columns_merged >= 1);
        assert!(stats.max_width_after <= stats.max_width_before);
        assert!(cf.is_fully_live());
    }

    #[test]
    fn column_collection_counts_crossing_nodes() {
        let table = TruthTable::paper_table1();
        let cf = Cf::from_truth_table(&table);
        let mgr = cf.manager();
        let t = cf.layout().num_vars() as u32;
        for cut in 1..t {
            let cols = collect_columns(mgr, cf.root(), cut);
            let width = cf.width_profile().at_cut(cut as usize);
            assert_eq!(cols.len().max(1), width, "cut {cut}");
        }
    }

    #[test]
    fn zero_first_fit_tries_disables_merging() {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_alg33(&Alg33Options {
            max_pairwise_group: 0,
            first_fit_tries: 0,
            ..Alg33Options::default()
        });
        assert_eq!(stats.columns_merged, 0, "no budget, no merges");
        assert_eq!(stats.max_width_before, stats.max_width_after);
    }

    #[test]
    fn first_fit_and_pairwise_agree_on_liveness() {
        let table = TruthTable::paper_table1();
        // Run with pairwise only.
        let mut cf1 = Cf::from_truth_table(&table);
        let s1 = cf1.reduce_alg33(&Alg33Options {
            max_pairwise_group: usize::MAX,
            ..Alg33Options::default()
        });
        // Run with first-fit only.
        let mut cf2 = Cf::from_truth_table(&table);
        let s2 = cf2.reduce_alg33(&Alg33Options {
            max_pairwise_group: 0,
            ..Alg33Options::default()
        });
        assert!(cf1.is_fully_live());
        assert!(cf2.is_fully_live());
        assert!(s1.max_width_after <= s1.max_width_before);
        assert!(s2.max_width_after <= s2.max_width_before);
    }
}
