//! Variable layout of a BDD_for_CF: which manager variable is which input
//! `xᵢ` and which output `yⱼ`.
//!
//! Inputs are `Var(0) .. Var(n-1)`, outputs are `Var(n) .. Var(n+m-1)`.
//! The *ids* are fixed; only the *levels* change under reordering.

use bddcf_bdd::{BddManager, NodeId, Var};

/// The role a manager variable plays in a characteristic function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Input variable `x_{i}` (0-based).
    Input(usize),
    /// Output variable `y_{j}` (0-based).
    Output(usize),
}

/// Shape of a characteristic function: `n` inputs and `m` outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfLayout {
    num_inputs: usize,
    num_outputs: usize,
}

impl CfLayout {
    /// Layout for `num_inputs` inputs and `num_outputs` outputs.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        assert!(num_inputs > 0, "a function needs at least one input");
        assert!(num_outputs > 0, "a function needs at least one output");
        CfLayout {
            num_inputs,
            num_outputs,
        }
    }

    /// Number of inputs `n`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs `m`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Total manager variables `n + m`.
    pub fn num_vars(&self) -> usize {
        self.num_inputs + self.num_outputs
    }

    /// The manager variable of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn input_var(&self, i: usize) -> Var {
        assert!(i < self.num_inputs, "input index out of range");
        Var(i as u32)
    }

    /// The manager variable of output `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ m`.
    pub fn output_var(&self, j: usize) -> Var {
        assert!(j < self.num_outputs, "output index out of range");
        Var((self.num_inputs + j) as u32)
    }

    /// The role of a manager variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is outside the layout.
    pub fn role(&self, var: Var) -> Role {
        let v = var.0 as usize;
        if v < self.num_inputs {
            Role::Input(v)
        } else if v < self.num_vars() {
            Role::Output(v - self.num_inputs)
        } else {
            panic!("{var:?} outside layout with {} variables", self.num_vars())
        }
    }

    /// Is `var` an output variable?
    pub fn is_output(&self, var: Var) -> bool {
        matches!(self.role(var), Role::Output(_))
    }

    /// All input variables.
    pub fn input_vars(&self) -> Vec<Var> {
        (0..self.num_inputs).map(|i| self.input_var(i)).collect()
    }

    /// All output variables.
    pub fn output_vars(&self) -> Vec<Var> {
        (0..self.num_outputs).map(|j| self.output_var(j)).collect()
    }

    /// A fresh manager sized for this layout (default order: inputs on top
    /// in index order, outputs below in index order — always a valid
    /// BDD_for_CF order).
    pub fn new_manager(&self) -> BddManager {
        BddManager::new(self.num_vars())
    }

    /// The positive cube of all output variables, used for `∃Y` projections.
    pub fn output_cube(&self, mgr: &mut BddManager) -> NodeId {
        let lits: Vec<(Var, bool)> = self.output_vars().iter().map(|&v| (v, true)).collect();
        mgr.cube(&lits)
    }

    /// Number of output variables strictly below `level` in the current
    /// order of `mgr` (used to scope don't-care tests to the sub-ISF under
    /// a node).
    pub fn outputs_below_level(&self, mgr: &BddManager, level: u32) -> usize {
        self.output_vars()
            .iter()
            .filter(|&&y| mgr.level_of(y) > level)
            .count()
    }

    /// Display name of a variable (`x1..xn`, `y1..ym`, 1-based like the
    /// paper).
    pub fn var_name(&self, var: Var) -> String {
        match self.role(var) {
            Role::Input(i) => format!("x{}", i + 1),
            Role::Output(j) => format!("y{}", j + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_partition_variables() {
        let layout = CfLayout::new(3, 2);
        assert_eq!(layout.num_vars(), 5);
        assert_eq!(layout.role(Var(0)), Role::Input(0));
        assert_eq!(layout.role(Var(2)), Role::Input(2));
        assert_eq!(layout.role(Var(3)), Role::Output(0));
        assert_eq!(layout.role(Var(4)), Role::Output(1));
        assert!(layout.is_output(Var(4)));
        assert!(!layout.is_output(Var(1)));
    }

    #[test]
    #[should_panic(expected = "outside layout")]
    fn role_rejects_foreign_vars() {
        let layout = CfLayout::new(2, 1);
        let _ = layout.role(Var(9));
    }

    #[test]
    fn var_lists_and_names() {
        let layout = CfLayout::new(2, 2);
        assert_eq!(layout.input_vars(), vec![Var(0), Var(1)]);
        assert_eq!(layout.output_vars(), vec![Var(2), Var(3)]);
        assert_eq!(layout.var_name(Var(0)), "x1");
        assert_eq!(layout.var_name(Var(3)), "y2");
    }

    #[test]
    fn output_cube_quantifies_all_outputs() {
        let layout = CfLayout::new(1, 2);
        let mut mgr = layout.new_manager();
        let cube = layout.output_cube(&mut mgr);
        let sup = mgr.support(cube);
        assert_eq!(sup, vec![Var(1), Var(2)]);
    }

    #[test]
    fn outputs_below_level_counts() {
        let layout = CfLayout::new(2, 2);
        let mgr = layout.new_manager();
        // Order: x1 x2 y1 y2 at levels 0..3.
        assert_eq!(layout.outputs_below_level(&mgr, 0), 2);
        assert_eq!(layout.outputs_below_level(&mgr, 2), 1);
        assert_eq!(layout.outputs_below_level(&mgr, 3), 0);
    }
}
