//! Compatibility of sub-characteristic-functions — the semantic core of
//! every merge in the width-reduction algorithms.
//!
//! # The merge rule
//!
//! Any node of a BDD_for_CF represents a characteristic function `χᵥ` of a
//! *sub*-ISF over the variables below it. For an input assignment `x`, the
//! *allowed set* `χᵥ(x,·)` is the set of output words the sub-ISF permits;
//! the *live set* `∃Y.χᵥ` is the set of inputs with a non-empty allowed
//! set.
//!
//! Replacing two nodes `a`, `b` by their product `a·b` narrows every
//! allowed set to the intersection. That is sound iff no live input of
//! either operand dies:
//!
//! ```text
//! a ∼ b   ⇔   ∃Y.(a·b) = ∃Y.a = ∃Y.b
//! ```
//!
//! When both operands are fully live (`∃Y = 1` — always true for columns of
//! a chart whose output variables sit below the cut), this is exactly the
//! paper's Definition 3.7: every column entry pair intersects. The equality
//! form additionally handles the zero rows that appear when output
//! variables are interleaved above the cut (an output decision already
//! taken can make some input suffixes invalid), which Definition 3.7 has no
//! vocabulary for. Lemma 3.1 (the product stays compatible with its
//! factors) holds for this relation too: `∃Y.(ab·a) = ∃Y.(ab)`.
//!
//! Liveness is preserved *globally* by induction: if a child's live set is
//! unchanged, every ancestor's live set is unchanged, so the root invariant
//! `∃Y.χ = 1` survives every merge.
//!
//! # Don't-care detection
//!
//! `χᵥ` (viewed from level `l`) has a don't care iff some live input admits
//! more than one word over the outputs below `l`. Counting satisfying
//! assignments gives an exact test:
//! `|χᵥ| · 2^{#outputs below l}  =  |∃Y.χᵥ|`  ⇔  no don't care.

use crate::layout::CfLayout;
use bddcf_bdd::{BddManager, Error as BudgetError, NodeId};

/// Scratch context for compatibility queries: caches the output-variable
/// cube so repeated queries don't rebuild it.
#[derive(Debug, Clone, Copy)]
pub struct CompatCtx {
    ycube: NodeId,
}

impl CompatCtx {
    /// Creates a context for the given layout.
    pub fn new(mgr: &mut BddManager, layout: &CfLayout) -> Self {
        CompatCtx {
            ycube: layout.output_cube(mgr),
        }
    }

    /// The live-input set `∃Y.f`.
    pub fn live(&self, mgr: &mut BddManager, f: NodeId) -> NodeId {
        mgr.exists_cube(f, self.ycube)
    }

    /// Budgeted [`live`](Self::live).
    pub fn try_live(&self, mgr: &mut BddManager, f: NodeId) -> Result<NodeId, BudgetError> {
        mgr.try_exists_cube(f, self.ycube)
    }

    /// The merge-compatibility relation `a ∼ b` (see module docs).
    ///
    /// Uses the fused relational product `∃Y.(a·b)` so that incompatible
    /// pairs — the common case when building compatibility graphs — never
    /// materialize the full conjunction.
    pub fn compatible(&self, mgr: &mut BddManager, a: NodeId, b: NodeId) -> bool {
        let live_a = self.live(mgr, a);
        let live_b = self.live(mgr, b);
        if live_a != live_b {
            return false;
        }
        mgr.and_exists(a, b, self.ycube) == live_a
    }

    /// Budgeted [`compatible`](Self::compatible).
    pub fn try_compatible(
        &self,
        mgr: &mut BddManager,
        a: NodeId,
        b: NodeId,
    ) -> Result<bool, BudgetError> {
        let live_a = self.try_live(mgr, a)?;
        let live_b = self.try_live(mgr, b)?;
        if live_a != live_b {
            return Ok(false);
        }
        Ok(mgr.try_and_exists(a, b, self.ycube)? == live_a)
    }

    /// Merges two compatible functions into their product, or returns
    /// `None` if they are incompatible.
    pub fn merge(&self, mgr: &mut BddManager, a: NodeId, b: NodeId) -> Option<NodeId> {
        let live_a = self.live(mgr, a);
        let live_b = self.live(mgr, b);
        if live_a != live_b {
            return None;
        }
        if mgr.and_exists(a, b, self.ycube) != live_a {
            return None;
        }
        Some(mgr.and(a, b))
    }

    /// Budgeted [`merge`](Self::merge): `Ok(None)` means incompatible,
    /// `Err` means the budget ran out before the answer was known.
    pub fn try_merge(
        &self,
        mgr: &mut BddManager,
        a: NodeId,
        b: NodeId,
    ) -> Result<Option<NodeId>, BudgetError> {
        if !self.try_compatible(mgr, a, b)? {
            return Ok(None);
        }
        Ok(Some(mgr.try_and(a, b)?))
    }

    /// Attempts to extend an existing merge product by one more member,
    /// keeping the *joint* liveness intact. This is the incremental check
    /// Algorithm 3.3 needs when a clique of pairwise-compatible columns is
    /// multiplied out: pairwise compatibility does not guarantee a
    /// non-empty joint intersection for multi-output columns, so each
    /// extension is re-validated.
    pub fn extend(&self, mgr: &mut BddManager, product: NodeId, next: NodeId) -> Option<NodeId> {
        self.merge(mgr, product, next)
    }

    /// Budgeted [`extend`](Self::extend).
    pub fn try_extend(
        &self,
        mgr: &mut BddManager,
        product: NodeId,
        next: NodeId,
    ) -> Result<Option<NodeId>, BudgetError> {
        self.try_merge(mgr, product, next)
    }

    /// Does the sub-ISF of `f`, viewed from just above `view_level`, contain
    /// a don't care? (Step 1 of Algorithm 3.1; see module docs.)
    ///
    /// `view_level` is the level of the node *owning* `f` as a sub-function;
    /// outputs at strictly greater levels belong to the sub-ISF.
    pub fn has_dont_care(
        &self,
        mgr: &mut BddManager,
        layout: &CfLayout,
        f: NodeId,
        view_level: u32,
    ) -> bool {
        let outputs_below = layout.outputs_below_level(mgr, view_level);
        let live = self.live(mgr, f);
        mgr.sat_count(f) << outputs_below != mgr.sat_count(live)
    }

    /// Budgeted [`has_dont_care`](Self::has_dont_care). Only the live-set
    /// quantification allocates; satisfying-assignment counting is read-only.
    pub fn try_has_dont_care(
        &self,
        mgr: &mut BddManager,
        layout: &CfLayout,
        f: NodeId,
        view_level: u32,
    ) -> Result<bool, BudgetError> {
        let outputs_below = layout.outputs_below_level(mgr, view_level);
        let live = self.try_live(mgr, f)?;
        Ok(mgr.sat_count(f) << outputs_below != mgr.sat_count(live))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::Cf;
    use bddcf_bdd::{Var, FALSE, TRUE};
    use bddcf_logic::TruthTable;

    /// Builds the CF of a 1-output table and returns (cf, ctx).
    fn cf_of(rows: &[&str]) -> Cf {
        Cf::from_truth_table(&TruthTable::from_rows(rows))
    }

    #[test]
    fn compatibility_matches_definition_37_for_single_output() {
        // Two ISFs over one input: f = (0, d), g = (d, 1): compatible.
        // h = (1, d): incompatible with f (position 0: 0 vs 1).
        let mut cf = cf_of(&["0", "d"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let f_root = cf.root();
        // Build g's χ directly inside cf's manager (same layout):
        // g = (d, 1) has on = {x=1}, dc = {x=0}, so χ_g = y·x ∨ ¬x = y ∨ ¬x.
        let mgr = cf.manager_mut();
        let x = mgr.var(Var(0));
        let y = mgr.var(Var(1));
        let nx = mgr.not(x);
        let g_chi = mgr.or(y, nx);
        assert!(ctx.compatible(mgr, f_root, g_chi));
        // h: row0 = 1, row1 = d: χ_h = (¬x → y) = x ∨ y
        let h_chi = mgr.or(x, y);
        assert!(!ctx.compatible(mgr, f_root, h_chi));
    }

    #[test]
    fn merge_narrows_but_keeps_liveness() {
        let mut cf = cf_of(&["d", "d"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let all_dc = cf.root();
        assert_eq!(all_dc, TRUE, "all-dc single output CF is the tautology");
        let mgr = cf.manager_mut();
        let y = mgr.var(Var(1));
        let merged = ctx
            .merge(mgr, all_dc, y)
            .expect("TRUE is compatible with y");
        assert_eq!(merged, y);
        assert_eq!(ctx.live(mgr, merged), TRUE);
    }

    #[test]
    fn incompatible_when_liveness_would_shrink() {
        let mut cf = cf_of(&["d", "d"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let mgr = cf.manager_mut();
        let y = mgr.var(Var(1));
        let ny = mgr.not(y);
        // y and ¬y are both fully live but their product is FALSE.
        assert!(!ctx.compatible(mgr, y, ny));
        assert!(ctx.merge(mgr, y, ny).is_none());
    }

    #[test]
    fn false_is_only_compatible_with_false() {
        let mut cf = cf_of(&["0", "1"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let mgr = cf.manager_mut();
        let y = mgr.var(Var(1));
        assert!(!ctx.compatible(mgr, FALSE, y));
        assert!(ctx.compatible(mgr, FALSE, FALSE));
    }

    #[test]
    fn compatibility_is_symmetric_and_reflexive() {
        let mut cf = cf_of(&["d", "1"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let mgr = cf.manager_mut();
        let x = mgr.var(Var(0));
        let y = mgr.var(Var(1));
        let candidates = [TRUE, y, mgr.or(x, y), mgr.iff(x, y)];
        for &a in &candidates {
            assert!(ctx.compatible(mgr, a, a), "reflexive on {a:?}");
            for &b in &candidates {
                assert_eq!(
                    ctx.compatible(mgr, a, b),
                    ctx.compatible(mgr, b, a),
                    "symmetric on {a:?}, {b:?}"
                );
            }
        }
    }

    #[test]
    fn lemma_31_product_stays_compatible_with_factors() {
        let mut cf = cf_of(&["d", "1"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let mgr = cf.manager_mut();
        let x = mgr.var(Var(0));
        let y = mgr.var(Var(1));
        let nx = mgr.not(x);
        let a = mgr.or(y, nx); // χ of (d,1)
        let b = mgr.or(y, x); // χ of (1,d)
        if let Some(c) = ctx.merge(mgr, a, b) {
            assert!(ctx.compatible(mgr, c, a));
            assert!(ctx.compatible(mgr, c, b));
        } else {
            panic!("(d,1) and (1,d) must be compatible");
        }
    }

    #[test]
    fn pairwise_compatibility_does_not_imply_joint() {
        // Three fully-live 2-output columns with allowed sets
        // {00,01}, {00,10}, {01,10}: every pair intersects, the triple is
        // empty — the case Lemma 3.1 does not cover and Algorithm 3.3's
        // incremental validation must catch.
        let mut cf = Cf::from_truth_table(&TruthTable::from_rows(&["dd", "dd"]));
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        let mgr = cf.manager_mut();
        let y1 = mgr.var(Var(1));
        let y2 = mgr.var(Var(2));
        let a = mgr.not(y2); // {00, 10} in (y1,y2) reading
        let b = mgr.not(y1); // {00, 01}
        let c = mgr.xor(y1, y2); // {01, 10}
        assert!(ctx.compatible(mgr, a, b));
        assert!(ctx.compatible(mgr, a, c));
        assert!(ctx.compatible(mgr, b, c));
        let ab = ctx.merge(mgr, a, b).expect("pairwise fine");
        assert!(
            ctx.extend(mgr, ab, c).is_none(),
            "joint intersection is empty; the extension must be rejected"
        );
    }

    #[test]
    fn dont_care_detection_on_paper_example() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let layout = cf.layout().clone();
        let root = cf.root();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        // The full function has don't cares…
        assert!(ctx.has_dont_care(cf.manager_mut(), &layout, root, 0));
        // …but its DC=0 completion does not.
        let table0 = TruthTable::paper_table1().completed(false);
        let mut cf0 = Cf::from_truth_table(&table0);
        let root0 = cf0.root();
        let ctx0 = CompatCtx::new(cf0.manager_mut(), &layout);
        assert!(!ctx0.has_dont_care(cf0.manager_mut(), &layout, root0, 0));
    }

    #[test]
    fn dont_care_detection_respects_view_level() {
        // One input, one output, fully dc: χ = TRUE.
        let mut cf = cf_of(&["d", "d"]);
        let layout = cf.layout().clone();
        let ctx = CompatCtx::new(cf.manager_mut(), &layout);
        // Viewed from the top (level 0 owner): the output below is free -> dc.
        assert!(ctx.has_dont_care(cf.manager_mut(), &layout, TRUE, 0));
        // Viewed from below the output variable (level 1 owner at the output
        // level; outputs strictly below level 1: none): no dc left.
        assert!(!ctx.has_dont_care(cf.manager_mut(), &layout, TRUE, 1));
    }
}
