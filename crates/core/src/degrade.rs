//! Structured reporting of graceful degradation under resource budgets.
//!
//! The governed reduction entry points ([`Cf::reduce_to_fixpoint_governed`]
//! (crate::cf::Cf), [`Cf::reduce_alg33_governed`](crate::cf::Cf), …) never
//! panic and never abandon the whole pipeline on budget exhaustion.
//! Instead they walk a *degradation ladder* and record every downgrade in a
//! [`DegradationReport`]:
//!
//! 1. **GC + retry** — reclaim garbage and try the same step once more
//!    (only meaningful for [`NodeLimit`](bddcf_bdd::Error::NodeLimit):
//!    a step or time budget stays exhausted after a collection);
//! 2. **fall back** — replace the clique-cover machinery of Algorithm 3.2
//!    with the cheap incremental pair merging of Algorithm 3.1;
//! 3. **skip** — keep the last valid (already reduced) χ for that level or
//!    phase and move on.
//!
//! Every rung is sound: a reduction step either completes and installs a
//! *refinement* of χ (`χ' ⇒ χ`, Lemma 3.1), or it is not installed at all.
//! A degraded result is therefore just a less-reduced but fully valid
//! BDD_for_CF — wider cascades, never wrong ones — which the `bddcf-check`
//! refinement oracle can verify after the fact.
//!
//! A report retains at most [`MAX_RETAINED_EVENTS`] events; a pathological
//! run (say, a per-cut skip on a thousand-variable function iterated to a
//! fixpoint) increments a dropped-events counter instead of growing without
//! bound. Dropping never loses the *first terminal cause*, which is cached
//! separately because it steers control flow.

use bddcf_bdd::Error as BudgetError;
use std::fmt;

/// Maximum number of [`DegradationEvent`]s a report retains; later events
/// only bump [`DegradationReport::dropped`].
pub const MAX_RETAINED_EVENTS: usize = 256;

/// Pipeline phase in which a degradation occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Construction of χ from the ISF record.
    Construction,
    /// §3.3 support-variable removal.
    SupportReduction,
    /// Algorithm 3.1 recursive child merging.
    Alg31,
    /// Algorithm 3.3 level-by-level clique-cover reduction.
    Alg33,
    /// Cascade synthesis (LUT-cascade extraction).
    CascadeSynthesis,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Construction => "construction",
            Phase::SupportReduction => "support-reduction",
            Phase::Alg31 => "alg31",
            Phase::Alg33 => "alg33",
            Phase::CascadeSynthesis => "cascade-synthesis",
        };
        f.write_str(name)
    }
}

/// What the governed pipeline did in response to a budget error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradeAction {
    /// Collected garbage and retried the same step once.
    GcRetry,
    /// Fell back from the Algorithm 3.2 clique cover to Algorithm 3.1-style
    /// incremental pair merging at this cut.
    FellBackToPairMerge,
    /// Skipped this cut level, keeping the last valid χ.
    SkippedLevel,
    /// Skipped one input variable during support reduction.
    SkippedVariable,
    /// Abandoned the remainder of the phase, keeping the last valid χ.
    SkippedPhase,
    /// Stopped the fixpoint iteration early.
    StoppedIterating,
    /// Finished a small, bounded analysis with the budget suspended rather
    /// than failing the whole phase (used by cascade synthesis, whose
    /// choice analysis is linear in the output nodes of χ). The overrun is
    /// recorded instead of enforced.
    CompletedUnbudgeted,
}

impl fmt::Display for DegradeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DegradeAction::GcRetry => "gc+retry",
            DegradeAction::FellBackToPairMerge => "fell back to pair merging",
            DegradeAction::SkippedLevel => "skipped level",
            DegradeAction::SkippedVariable => "skipped variable",
            DegradeAction::SkippedPhase => "skipped rest of phase",
            DegradeAction::StoppedIterating => "stopped iterating",
            DegradeAction::CompletedUnbudgeted => "completed with budget suspended",
        };
        f.write_str(name)
    }
}

/// One recorded downgrade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Where in the pipeline it happened.
    pub phase: Phase,
    /// Cut level (Algorithm 3.3), input index (support reduction), or
    /// output-part index (partitioned synthesis), when applicable.
    pub locus: Option<u32>,
    /// What the pipeline did about it.
    pub action: DegradeAction,
    /// The budget error that triggered the downgrade.
    pub cause: BudgetError,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.phase)?;
        if let Some(l) = self.locus {
            write!(f, "[{l}]")?;
        }
        write!(f, ": {} ({})", self.action, self.cause)
    }
}

/// Ordered log of every downgrade a governed pipeline run performed.
///
/// An empty report means the run completed exactly as an unbudgeted run
/// would have. A non-empty report means the result is a *less reduced but
/// still valid* BDD_for_CF — see the [module docs](self) for why.
///
/// At most [`MAX_RETAINED_EVENTS`] events are retained; the total count is
/// always exact via [`len`](Self::len) / [`dropped`](Self::dropped), and
/// [`terminal_cause`](Self::terminal_cause) is cached so it survives even
/// if the event that set it is dropped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    events: Vec<DegradationEvent>,
    dropped: u64,
    first_terminal: Option<BudgetError>,
}

/// Is this cause *terminal*? Step, time, and cancellation budgets stay
/// exhausted no matter how much garbage is collected, and a poisoned
/// manager refuses everything — once one of these appears, continuing a
/// phase is pointless. A [`NodeLimit`](BudgetError::NodeLimit) is *not*
/// terminal: GC can free room.
fn is_terminal_cause(cause: BudgetError) -> bool {
    matches!(
        cause,
        BudgetError::StepLimit { .. }
            | BudgetError::TimeBudget
            | BudgetError::Cancelled
            | BudgetError::Poisoned
    )
}

impl DegradationReport {
    /// A report with no events.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff nothing was degraded.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Total number of downgrades recorded, including dropped ones.
    pub fn len(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// True iff no downgrade has been recorded (same as
    /// [`is_clean`](Self::is_clean)).
    pub fn is_empty(&self) -> bool {
        self.is_clean()
    }

    /// The retained downgrades, in the order they happened (at most
    /// [`MAX_RETAINED_EVENTS`]).
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Downgrades that were recorded past the retention cap and therefore
    /// only counted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one downgrade.
    pub fn record(
        &mut self,
        phase: Phase,
        locus: Option<u32>,
        action: DegradeAction,
        cause: BudgetError,
    ) {
        if self.first_terminal.is_none() && is_terminal_cause(cause) {
            self.first_terminal = Some(cause);
        }
        if self.events.len() < MAX_RETAINED_EVENTS {
            self.events.push(DegradationEvent {
                phase,
                locus,
                action,
                cause,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Appends all events of `other`, preserving its exact count and any
    /// terminal cause even when retention overflows.
    pub fn absorb(&mut self, other: DegradationReport) {
        if self.first_terminal.is_none() {
            self.first_terminal = other.first_terminal;
        }
        self.dropped += other.dropped;
        for e in other.events {
            if self.events.len() < MAX_RETAINED_EVENTS {
                self.events.push(e);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// The first *terminal* cause, if any (see the retention note in the
    /// type docs: this is cached, so it is exact even when events have been
    /// dropped). Terminal causes are step, time, cancellation, and
    /// poisoning; a [`NodeLimit`](BudgetError::NodeLimit) is retryable.
    pub fn terminal_cause(&self) -> Option<BudgetError> {
        self.first_terminal
    }

    /// Crate-internal reconstruction hook for checkpoint deserialization:
    /// rebuilds a report from its serialized parts without re-deriving the
    /// cached terminal cause (the dropped events may have carried it).
    pub(crate) fn from_checkpoint_parts(
        events: Vec<DegradationEvent>,
        dropped: u64,
        first_terminal: Option<BudgetError>,
    ) -> Self {
        DegradationReport {
            events,
            dropped,
            first_terminal,
        }
    }

    /// One-line-per-event rendering for logs and the CLI, with a trailing
    /// summary line when events were dropped.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = self.events.iter().map(|e| e.to_string()).collect();
        if self.dropped > 0 {
            lines.push(format!("… and {} more event(s) not retained", self.dropped));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_cause_ignores_node_limits() {
        let mut r = DegradationReport::new();
        assert!(r.is_clean());
        r.record(
            Phase::Alg33,
            Some(3),
            DegradeAction::GcRetry,
            BudgetError::NodeLimit { limit: 100 },
        );
        assert_eq!(r.terminal_cause(), None, "node limits are retryable");
        r.record(
            Phase::Alg33,
            Some(4),
            DegradeAction::SkippedPhase,
            BudgetError::Cancelled,
        );
        assert_eq!(r.terminal_cause(), Some(BudgetError::Cancelled));
        assert!(!r.is_clean());
    }

    #[test]
    fn poisoned_is_terminal() {
        let mut r = DegradationReport::new();
        r.record(
            Phase::Alg33,
            None,
            DegradeAction::SkippedPhase,
            BudgetError::Poisoned,
        );
        assert_eq!(r.terminal_cause(), Some(BudgetError::Poisoned));
    }

    #[test]
    fn events_render_with_locus_and_cause() {
        let e = DegradationEvent {
            phase: Phase::SupportReduction,
            locus: Some(2),
            action: DegradeAction::SkippedVariable,
            cause: BudgetError::NodeLimit { limit: 64 },
        };
        assert_eq!(
            e.to_string(),
            "support-reduction[2]: skipped variable (node quota exhausted (limit 64))"
        );
    }

    #[test]
    fn absorb_concatenates_in_order() {
        let mut a = DegradationReport::new();
        a.record(
            Phase::Alg31,
            None,
            DegradeAction::GcRetry,
            BudgetError::NodeLimit { limit: 1 },
        );
        let mut b = DegradationReport::new();
        b.record(
            Phase::CascadeSynthesis,
            Some(0),
            DegradeAction::SkippedPhase,
            BudgetError::TimeBudget,
        );
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].phase, Phase::CascadeSynthesis);
    }

    #[test]
    fn retention_cap_counts_instead_of_growing() {
        let mut r = DegradationReport::new();
        for i in 0..(MAX_RETAINED_EVENTS as u32 + 100) {
            r.record(
                Phase::Alg33,
                Some(i),
                DegradeAction::SkippedLevel,
                BudgetError::NodeLimit { limit: 8 },
            );
        }
        assert_eq!(r.events().len(), MAX_RETAINED_EVENTS);
        assert_eq!(r.dropped(), 100);
        assert_eq!(r.len(), MAX_RETAINED_EVENTS as u64 + 100);
        // A terminal cause arriving after the cap is still observed.
        r.record(
            Phase::Alg33,
            None,
            DegradeAction::StoppedIterating,
            BudgetError::Cancelled,
        );
        assert_eq!(r.terminal_cause(), Some(BudgetError::Cancelled));
        assert!(r.render().contains("101 more event(s) not retained"));
    }

    #[test]
    fn absorb_past_the_cap_preserves_count_and_terminal_cause() {
        let mut a = DegradationReport::new();
        for i in 0..MAX_RETAINED_EVENTS as u32 {
            a.record(
                Phase::Alg33,
                Some(i),
                DegradeAction::SkippedLevel,
                BudgetError::NodeLimit { limit: 8 },
            );
        }
        let mut b = DegradationReport::new();
        b.record(
            Phase::CascadeSynthesis,
            None,
            DegradeAction::SkippedPhase,
            BudgetError::TimeBudget,
        );
        a.absorb(b);
        assert_eq!(a.len(), MAX_RETAINED_EVENTS as u64 + 1);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.terminal_cause(), Some(BudgetError::TimeBudget));
    }
}
