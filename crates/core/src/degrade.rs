//! Structured reporting of graceful degradation under resource budgets.
//!
//! The governed reduction entry points ([`Cf::reduce_to_fixpoint_governed`]
//! (crate::cf::Cf), [`Cf::reduce_alg33_governed`](crate::cf::Cf), …) never
//! panic and never abandon the whole pipeline on budget exhaustion.
//! Instead they walk a *degradation ladder* and record every downgrade in a
//! [`DegradationReport`]:
//!
//! 1. **GC + retry** — reclaim garbage and try the same step once more
//!    (only meaningful for [`NodeLimit`](bddcf_bdd::Error::NodeLimit):
//!    a step or time budget stays exhausted after a collection);
//! 2. **fall back** — replace the clique-cover machinery of Algorithm 3.2
//!    with the cheap incremental pair merging of Algorithm 3.1;
//! 3. **skip** — keep the last valid (already reduced) χ for that level or
//!    phase and move on.
//!
//! Every rung is sound: a reduction step either completes and installs a
//! *refinement* of χ (`χ' ⇒ χ`, Lemma 3.1), or it is not installed at all.
//! A degraded result is therefore just a less-reduced but fully valid
//! BDD_for_CF — wider cascades, never wrong ones — which the `bddcf-check`
//! refinement oracle can verify after the fact.

use bddcf_bdd::Error as BudgetError;
use std::fmt;

/// Pipeline phase in which a degradation occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Construction of χ from the ISF record.
    Construction,
    /// §3.3 support-variable removal.
    SupportReduction,
    /// Algorithm 3.1 recursive child merging.
    Alg31,
    /// Algorithm 3.3 level-by-level clique-cover reduction.
    Alg33,
    /// Cascade synthesis (LUT-cascade extraction).
    CascadeSynthesis,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Construction => "construction",
            Phase::SupportReduction => "support-reduction",
            Phase::Alg31 => "alg31",
            Phase::Alg33 => "alg33",
            Phase::CascadeSynthesis => "cascade-synthesis",
        };
        f.write_str(name)
    }
}

/// What the governed pipeline did in response to a budget error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradeAction {
    /// Collected garbage and retried the same step once.
    GcRetry,
    /// Fell back from the Algorithm 3.2 clique cover to Algorithm 3.1-style
    /// incremental pair merging at this cut.
    FellBackToPairMerge,
    /// Skipped this cut level, keeping the last valid χ.
    SkippedLevel,
    /// Skipped one input variable during support reduction.
    SkippedVariable,
    /// Abandoned the remainder of the phase, keeping the last valid χ.
    SkippedPhase,
    /// Stopped the fixpoint iteration early.
    StoppedIterating,
    /// Finished a small, bounded analysis with the budget suspended rather
    /// than failing the whole phase (used by cascade synthesis, whose
    /// choice analysis is linear in the output nodes of χ). The overrun is
    /// recorded instead of enforced.
    CompletedUnbudgeted,
}

impl fmt::Display for DegradeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DegradeAction::GcRetry => "gc+retry",
            DegradeAction::FellBackToPairMerge => "fell back to pair merging",
            DegradeAction::SkippedLevel => "skipped level",
            DegradeAction::SkippedVariable => "skipped variable",
            DegradeAction::SkippedPhase => "skipped rest of phase",
            DegradeAction::StoppedIterating => "stopped iterating",
            DegradeAction::CompletedUnbudgeted => "completed with budget suspended",
        };
        f.write_str(name)
    }
}

/// One recorded downgrade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Where in the pipeline it happened.
    pub phase: Phase,
    /// Cut level (Algorithm 3.3), input index (support reduction), or
    /// output-part index (partitioned synthesis), when applicable.
    pub locus: Option<u32>,
    /// What the pipeline did about it.
    pub action: DegradeAction,
    /// The budget error that triggered the downgrade.
    pub cause: BudgetError,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.phase)?;
        if let Some(l) = self.locus {
            write!(f, "[{l}]")?;
        }
        write!(f, ": {} ({})", self.action, self.cause)
    }
}

/// Ordered log of every downgrade a governed pipeline run performed.
///
/// An empty report means the run completed exactly as an unbudgeted run
/// would have. A non-empty report means the result is a *less reduced but
/// still valid* BDD_for_CF — see the [module docs](self) for why.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// The downgrades, in the order they happened.
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// A report with no events.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff nothing was degraded.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Records one downgrade.
    pub fn record(
        &mut self,
        phase: Phase,
        locus: Option<u32>,
        action: DegradeAction,
        cause: BudgetError,
    ) {
        self.events.push(DegradationEvent {
            phase,
            locus,
            action,
            cause,
        });
    }

    /// Appends all events of `other`.
    pub fn absorb(&mut self, other: DegradationReport) {
        self.events.extend(other.events);
    }

    /// The first *terminal* cause, if any: step, time, and cancellation
    /// budgets stay exhausted no matter how much garbage is collected, so
    /// once one of these appears, continuing a phase is pointless. A
    /// [`NodeLimit`](BudgetError::NodeLimit) is *not* terminal — GC can
    /// free room.
    pub fn terminal_cause(&self) -> Option<BudgetError> {
        self.events.iter().map(|e| e.cause).find(|c| {
            matches!(
                c,
                BudgetError::StepLimit { .. } | BudgetError::TimeBudget | BudgetError::Cancelled
            )
        })
    }

    /// One-line-per-event rendering for logs and the CLI.
    pub fn render(&self) -> String {
        self.events
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_cause_ignores_node_limits() {
        let mut r = DegradationReport::new();
        assert!(r.is_clean());
        r.record(
            Phase::Alg33,
            Some(3),
            DegradeAction::GcRetry,
            BudgetError::NodeLimit { limit: 100 },
        );
        assert_eq!(r.terminal_cause(), None, "node limits are retryable");
        r.record(
            Phase::Alg33,
            Some(4),
            DegradeAction::SkippedPhase,
            BudgetError::Cancelled,
        );
        assert_eq!(r.terminal_cause(), Some(BudgetError::Cancelled));
        assert!(!r.is_clean());
    }

    #[test]
    fn events_render_with_locus_and_cause() {
        let e = DegradationEvent {
            phase: Phase::SupportReduction,
            locus: Some(2),
            action: DegradeAction::SkippedVariable,
            cause: BudgetError::NodeLimit { limit: 64 },
        };
        assert_eq!(
            e.to_string(),
            "support-reduction[2]: skipped variable (node quota exhausted (limit 64))"
        );
    }

    #[test]
    fn absorb_concatenates_in_order() {
        let mut a = DegradationReport::new();
        a.record(
            Phase::Alg31,
            None,
            DegradeAction::GcRetry,
            BudgetError::NodeLimit { limit: 1 },
        );
        let mut b = DegradationReport::new();
        b.record(
            Phase::CascadeSynthesis,
            Some(0),
            DegradeAction::SkippedPhase,
            BudgetError::TimeBudget,
        );
        a.absorb(b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[1].phase, Phase::CascadeSynthesis);
    }
}
