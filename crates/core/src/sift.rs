//! Variable-order optimization of a [`Cf`] by constrained sifting.
//!
//! The paper optimizes BDD_for_CF orders "by sifting algorithm \[12\], where
//! the sum of the widths is used as the cost function" (§5.1). A
//! BDD_for_CF order is only valid when every output variable `yⱼ` stays
//! below the support variables of `fⱼ` (Definition 2.4); the constraints
//! are derived from the *original* specification's ternary supports, which
//! stays conservative after reductions shrink χ's support.

#![allow(clippy::needless_range_loop)] // row indices mirror truth-table rows in tests
use crate::cf::{Cf, IsfBdds};
use bddcf_bdd::{ReorderCost, SiftConstraints};

impl Cf {
    /// The Definition-2.4 order constraints: each output below the
    /// *essential* support of its function (see
    /// [`IsfBdds::essential_support_of_output`] — inputs that only steer
    /// the don't-care set do not constrain the output's position).
    pub fn sift_constraints(&mut self) -> SiftConstraints {
        let mut constraints = SiftConstraints::none();
        let layout = self.layout().clone();
        let isf = self.isf().clone();
        for j in 0..layout.num_outputs() {
            let y = layout.output_var(j);
            for x in isf.essential_support_of_output(self.manager_mut(), j) {
                constraints.require_above(x, y);
            }
        }
        constraints
    }

    /// Optimizes the variable order by repeated constrained sifting passes
    /// (at most `max_passes`), keeping χ and the ISF record consistent.
    /// Returns the achieved cost.
    pub fn optimize_order(&mut self, cost: ReorderCost, max_passes: usize) -> usize {
        let constraints = self.sift_constraints();
        let num_outputs = self.layout().num_outputs();
        let mut roots = vec![self.root()];
        roots.extend(self.isf().roots());
        let remapped = self
            .manager_mut_for_sift()
            .sift(&roots, &constraints, cost, max_passes);
        let new_root = remapped[0];
        let new_isf = IsfBdds::from_roots(&remapped[1..], num_outputs);
        self.set_state(new_root, new_isf);
        self.collect();
        match cost {
            ReorderCost::NodeCount => self.node_count(),
            ReorderCost::SumOfWidths => self.width_profile().sum(),
        }
    }

    // `manager_mut` is documented as "no reordering behind the Cf's back";
    // this private alias marks the one sanctioned exception.
    fn manager_mut_for_sift(&mut self) -> &mut bddcf_bdd::BddManager {
        self.manager_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    #[test]
    fn constraints_keep_outputs_below_supports() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let constraints = cf.sift_constraints();
        assert!(constraints.check(cf.manager()));
        // Essential supports: f1 on {x1,x2,x3}; f2 on {x2,x3,x4} (its x1
        // terms collapse: x̄1x̄2x3 ∨ x1x̄2x3 = x̄2x3). Three pairs each.
        for j in 0..2 {
            let pairs = constraints
                .pairs()
                .iter()
                .filter(|&&(_, below)| below == cf.layout().output_var(j))
                .count();
            assert_eq!(pairs, 3, "output {j}");
        }
    }

    #[test]
    fn sifting_preserves_semantics_and_constraints() {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        let words_before: Vec<Vec<u64>> = (0..16usize)
            .map(|r| {
                let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
                cf.allowed_words(&input)
            })
            .collect();
        let cost = cf.optimize_order(ReorderCost::SumOfWidths, 2);
        assert!(cost >= 1);
        assert!(cf.sift_constraints().check(cf.manager()));
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            assert_eq!(cf.allowed_words(&input), words_before[r], "row {r}");
        }
    }

    #[test]
    fn sifting_never_worsens_the_chosen_cost() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let before = cf.width_profile().sum();
        let after = cf.optimize_order(ReorderCost::SumOfWidths, 3);
        assert!(after <= before, "sifting must not increase sum-of-widths");
    }

    #[test]
    fn node_count_cost_also_supported() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let before = cf.node_count();
        let after = cf.optimize_order(ReorderCost::NodeCount, 2);
        assert!(after <= before);
        // The ISF record must have survived the remap intact.
        let g = cf.complete();
        assert!(cf.realizes_original(&g));
    }
}
