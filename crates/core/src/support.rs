//! §3.3 — reduction of support variables.
//!
//! In an incompletely specified function some input variables can be
//! *redundant*: an appropriate assignment of the don't cares makes the
//! function independent of them. On the characteristic function this is a
//! cofactor merge: input `x` is removable iff `χ|x=0` and `χ|x=1` are
//! compatible (same live set, product fully live), in which case
//! `χ := χ|x=0 · χ|x=1`.
//!
//! The paper applies this greedily from the root towards the leaves before
//! running Algorithm 3.1 or 3.3, because removing variables often shrinks
//! widths — and in a single-memory realization, removing `i` variables
//! divides the memory size by `2^i` (§5.3, the `#RV` column of Table 6).

#![allow(clippy::needless_range_loop)] // row indices mirror truth-table rows in tests
use crate::cf::Cf;
use crate::compat::CompatCtx;
use crate::degrade::{DegradationReport, DegradeAction, Phase};
use bddcf_bdd::{Error as BudgetError, Var};

impl Cf {
    /// Greedily removes redundant input variables (top of the order first),
    /// rewriting χ in place. Returns the removed inputs as 0-based input
    /// indices.
    pub fn reduce_support_variables(&mut self) -> Vec<usize> {
        let saved = self.manager_mut().take_budget();
        let mut report = DegradationReport::new();
        let removed = self.reduce_support_variables_governed(&mut report);
        self.manager_mut().resume_budget(saved);
        debug_assert!(report.is_clean(), "unbudgeted runs cannot degrade");
        removed
    }

    /// Budget-governed support-variable reduction. A node-quota miss on one
    /// input skips just that variable (after a GC to reclaim the attempt's
    /// garbage); a terminal cause (step/time/cancel) abandons the rest of
    /// the phase. Every downgrade is recorded in `report`; χ stays a valid
    /// refinement throughout.
    pub fn reduce_support_variables_governed(
        &mut self,
        report: &mut DegradationReport,
    ) -> Vec<usize> {
        let layout = self.layout().clone();
        // Visit inputs from the root of the order downwards (the paper's
        // root-to-leaf direction).
        let mut inputs: Vec<Var> = layout.input_vars();
        inputs.sort_by_key(|&v| self.manager().level_of(v));
        let mut removed = Vec::new();
        for x in inputs {
            let input_index = match layout.role(x) {
                crate::layout::Role::Input(i) => i,
                crate::layout::Role::Output(_) => continue,
            };
            let merged: Result<Option<_>, BudgetError> = (|| {
                let (mgr, _, root, _) = self.parts_mut();
                let ctx = CompatCtx::new(mgr, &layout);
                let f0 = mgr.try_restrict(root, x, false)?;
                let f1 = mgr.try_restrict(root, x, true)?;
                if f0 == f1 {
                    Ok(None) // x is already out of the support
                } else {
                    ctx.try_merge(mgr, f0, f1)
                }
            })();
            match merged {
                Ok(Some(new_root)) => {
                    self.install_root(new_root);
                    removed.push(input_index);
                }
                Ok(None) => {}
                Err(cause) if matches!(cause, BudgetError::NodeLimit { .. }) => {
                    report.record(
                        Phase::SupportReduction,
                        Some(input_index as u32),
                        DegradeAction::SkippedVariable,
                        cause,
                    );
                    self.collect();
                }
                Err(cause) => {
                    report.record(
                        Phase::SupportReduction,
                        Some(input_index as u32),
                        DegradeAction::SkippedPhase,
                        cause,
                    );
                    break;
                }
            }
        }
        removed
    }

    /// The input variables χ currently depends on (0-based input indices).
    pub fn support_inputs(&self) -> Vec<usize> {
        let layout = self.layout();
        self.manager()
            .support(self.root())
            .into_iter()
            .filter_map(|v| match layout.role(v) {
                crate::layout::Role::Input(i) => Some(i),
                crate::layout::Role::Output(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::{Ternary, TruthTable};

    #[test]
    fn removes_a_variable_made_redundant_by_dont_cares() {
        // f(x0, x1) = x1 where specified; x0 only matters on rows that are
        // don't care: rows (00,01,10,11) -> (0, d, d, 1).
        // With d->(row01: x0=1,x1=0 -> 0) and (row10: x0=0,x1=1 -> 1) the
        // function becomes f = x1, independent of x0.
        let table = TruthTable::from_rows(&["0", "d", "d", "1"]);
        let mut cf = Cf::from_truth_table(&table);
        let removed = cf.reduce_support_variables();
        assert!(
            removed.contains(&0) || removed.contains(&1),
            "one input must become redundant, got {removed:?}"
        );
        assert!(cf.is_fully_live());
        assert_eq!(cf.support_inputs().len(), 1);
        let g = cf.complete();
        assert!(cf.realizes_original(&g));
    }

    #[test]
    fn keeps_essential_variables() {
        // XOR is completely specified: nothing is redundant.
        let table = TruthTable::from_rows(&["0", "1", "1", "0"]);
        let mut cf = Cf::from_truth_table(&table);
        let removed = cf.reduce_support_variables();
        assert!(removed.is_empty());
        assert_eq!(cf.support_inputs(), vec![0, 1]);
    }

    #[test]
    fn removes_all_inputs_of_an_all_dc_function() {
        let table = TruthTable::from_rows(&["d", "d", "d", "d"]);
        let mut cf = Cf::from_truth_table(&table);
        // χ = TRUE: inputs already absent — nothing reported removed, and
        // the support is empty.
        let removed = cf.reduce_support_variables();
        assert!(removed.is_empty());
        assert!(cf.support_inputs().is_empty());
    }

    #[test]
    fn multi_output_redundancy() {
        // Two outputs over two inputs; output 0 = x1 or d, output 1 = x1 or
        // d, arranged so x0 is removable for both simultaneously.
        let mut table = TruthTable::new(2, 2);
        for r in 0..4usize {
            let x1 = r >> 1 & 1 == 1;
            // Specify only when x0 = 0, leave x0 = 1 rows free.
            if r & 1 == 0 {
                table.set(r, 0, Ternary::from_bool(x1));
                table.set(r, 1, Ternary::from_bool(!x1));
            }
        }
        let mut cf = Cf::from_truth_table(&table);
        let removed = cf.reduce_support_variables();
        assert_eq!(removed, vec![0]);
        let g = cf.complete();
        assert!(cf.realizes_original(&g));
    }

    #[test]
    fn removal_narrows_chi() {
        let table = TruthTable::from_rows(&["0", "d", "d", "1"]);
        let mut cf = Cf::from_truth_table(&table);
        // Record allowed words before.
        let mut before = Vec::new();
        for r in 0..4usize {
            let input: Vec<bool> = (0..2).map(|i| r >> i & 1 == 1).collect();
            before.push(cf.allowed_words(&input));
        }
        cf.reduce_support_variables();
        for r in 0..4usize {
            let input: Vec<bool> = (0..2).map(|i| r >> i & 1 == 1).collect();
            let after = cf.allowed_words(&input);
            assert!(!after.is_empty());
            assert!(
                after.iter().all(|w| before[r].contains(w)),
                "row {r}: reduction must narrow the allowed sets"
            );
        }
    }
}
