//! Construction of characteristic functions for incompletely specified
//! multiple-output functions (Definitions 2.2–2.4) and the [`Cf`] container
//! that owns a BDD_for_CF end to end.

use crate::layout::CfLayout;
use bddcf_bdd::{BddManager, Error as BudgetError, NodeId, Var, WidthProfile, FALSE, TRUE};
use bddcf_logic::{Ternary, TruthTable};

/// Per-output ON/OFF/DC sets of a multiple-output ISF, as BDDs over the
/// *input* variables of a manager laid out by [`CfLayout`].
///
/// For every output `j`: `on[j] = f_j⁻¹(1)`, `off[j] = f_j⁻¹(0)`,
/// `dc[j] = f_j⁻¹(d)`; the three sets partition the input space
/// (Definition 2.1).
#[derive(Clone, Debug)]
pub struct IsfBdds {
    /// ON sets, one per output.
    pub on: Vec<NodeId>,
    /// OFF sets, one per output.
    pub off: Vec<NodeId>,
    /// Don't-care sets, one per output.
    pub dc: Vec<NodeId>,
}

impl IsfBdds {
    /// Builds the three sets from `on` and `dc` (the OFF set is the
    /// complement of their union).
    pub fn from_on_dc(mgr: &mut BddManager, on: Vec<NodeId>, dc: Vec<NodeId>) -> Self {
        assert_eq!(on.len(), dc.len());
        let off = on
            .iter()
            .zip(&dc)
            .map(|(&o, &d)| {
                debug_assert_eq!(mgr.and(o, d), FALSE, "ON and DC sets must be disjoint");
                let u = mgr.or(o, d);
                mgr.not(u)
            })
            .collect();
        IsfBdds { on, off, dc }
    }

    /// Extracts the ISF of a [`TruthTable`] into `mgr` (which must be laid
    /// out per `layout`).
    ///
    /// # Panics
    ///
    /// Panics if the table shape disagrees with `layout`.
    pub fn from_truth_table(mgr: &mut BddManager, layout: &CfLayout, table: &TruthTable) -> Self {
        let saved = mgr.take_budget();
        let isf = IsfBdds::try_from_truth_table(mgr, layout, table)
            .expect("invariant: unbudgeted construction cannot fail");
        mgr.resume_budget(saved);
        isf
    }

    /// Budgeted [`from_truth_table`](Self::from_truth_table): fails cleanly
    /// if the manager's installed budget runs out while the minterm BDDs
    /// are built. Partially built sets become unreferenced garbage.
    ///
    /// # Panics
    ///
    /// Panics if the table shape disagrees with `layout` (caller bug, not a
    /// resource condition).
    pub fn try_from_truth_table(
        mgr: &mut BddManager,
        layout: &CfLayout,
        table: &TruthTable,
    ) -> Result<Self, BudgetError> {
        assert_eq!(table.num_inputs(), layout.num_inputs());
        assert_eq!(table.num_outputs(), layout.num_outputs());
        let vars = layout.input_vars();
        let mut on = Vec::new();
        let mut off = Vec::new();
        let mut dc = Vec::new();
        for j in 0..layout.num_outputs() {
            let mut on_m = Vec::new();
            let mut off_m = Vec::new();
            let mut dc_m = Vec::new();
            for r in 0..table.num_rows() {
                match table.get(r, j) {
                    Ternary::One => on_m.push(r as u64),
                    Ternary::Zero => off_m.push(r as u64),
                    Ternary::DontCare => dc_m.push(r as u64),
                }
            }
            on.push(mgr.try_from_minterms(&vars, &on_m)?);
            off.push(mgr.try_from_minterms(&vars, &off_m)?);
            dc.push(mgr.try_from_minterms(&vars, &dc_m)?);
        }
        Ok(IsfBdds { on, off, dc })
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.on.len()
    }

    /// Checks the partition invariants: for every output the three sets are
    /// pairwise disjoint and cover the input space.
    pub fn validate(&self, mgr: &mut BddManager) -> bool {
        (0..self.num_outputs()).all(|j| {
            let u1 = mgr.or(self.on[j], self.off[j]);
            let total = mgr.or(u1, self.dc[j]);
            let d1 = mgr.and(self.on[j], self.off[j]);
            let d2 = mgr.and(self.on[j], self.dc[j]);
            let d3 = mgr.and(self.off[j], self.dc[j]);
            total == TRUE && d1 == FALSE && d2 == FALSE && d3 == FALSE
        })
    }

    /// The completion that assigns the constant `fill` to every don't care
    /// (the paper's `DC=0` / `DC=1` baselines).
    pub fn completed(&self, mgr: &mut BddManager, fill: bool) -> IsfBdds {
        let mut on = self.on.clone();
        let mut off = self.off.clone();
        for j in 0..self.num_outputs() {
            if fill {
                on[j] = mgr.or(on[j], self.dc[j]);
            } else {
                off[j] = mgr.or(off[j], self.dc[j]);
            }
        }
        IsfBdds {
            on,
            off,
            dc: vec![FALSE; self.num_outputs()],
        }
    }

    /// Restriction to a contiguous output range (for §5.1's output
    /// bi-partitioning). The sets stay in the same manager.
    pub fn select_outputs(&self, range: std::ops::Range<usize>) -> IsfBdds {
        IsfBdds {
            on: self.on[range.clone()].to_vec(),
            off: self.off[range.clone()].to_vec(),
            dc: self.dc[range].to_vec(),
        }
    }

    /// The support of output `j` as a *ternary* function: input variables
    /// on which any of the three sets depends.
    pub fn support_of_output(&self, mgr: &BddManager, j: usize) -> Vec<Var> {
        mgr.support_multi(&[self.on[j], self.off[j], self.dc[j]])
    }

    /// The *essential* support of output `j` — Definition 2.1 read the way
    /// Sasao's ISF work does: `x` is a support variable iff no completion
    /// of `f_j` can be independent of it, i.e. the two cofactors are
    /// incompatible (`on|ₓ₌₀·off|ₓ₌₁ ∨ on|ₓ₌₁·off|ₓ₌₀ ≠ 0`).
    ///
    /// Inputs that only influence the *don't-care set* (e.g. the validity
    /// of other digits in the radix benchmarks) are not essential; this is
    /// what legitimizes interleaved orders like the decimal adder's
    /// carry-chain order under Definition 2.4.
    pub fn essential_support_of_output(&self, mgr: &mut BddManager, j: usize) -> Vec<Var> {
        self.support_of_output(mgr, j)
            .into_iter()
            .filter(|&x| {
                let on0 = mgr.restrict(self.on[j], x, false);
                let on1 = mgr.restrict(self.on[j], x, true);
                let off0 = mgr.restrict(self.off[j], x, false);
                let off1 = mgr.restrict(self.off[j], x, true);
                let c01 = mgr.and(on0, off1);
                let c10 = mgr.and(on1, off0);
                c01 != FALSE || c10 != FALSE
            })
            .collect()
    }

    /// Fraction of input combinations on which *every* output is don't
    /// care — the paper's input-don't-care ratio (`DC [%]` in Table 4).
    pub fn input_dc_ratio(&self, mgr: &mut BddManager, layout: &CfLayout) -> f64 {
        let all_dc = mgr.and_many(&self.dc);
        let count = mgr.sat_count(all_dc);
        // sat_count ranges over all n+m manager variables; normalize away
        // the output variables (the dc sets do not depend on them).
        let total = 1u128 << layout.num_vars();
        count as f64 / total as f64
    }

    /// All nodes that must stay live across garbage collection.
    pub fn roots(&self) -> Vec<NodeId> {
        let mut r = self.on.clone();
        r.extend_from_slice(&self.off);
        r.extend_from_slice(&self.dc);
        r
    }

    /// Rebuilds the struct from the root list produced by
    /// [`IsfBdds::roots`] after a GC or reorder remapped it.
    pub fn from_roots(roots: &[NodeId], num_outputs: usize) -> IsfBdds {
        assert_eq!(roots.len(), 3 * num_outputs);
        IsfBdds {
            on: roots[..num_outputs].to_vec(),
            off: roots[num_outputs..2 * num_outputs].to_vec(),
            dc: roots[2 * num_outputs..].to_vec(),
        }
    }
}

/// A BDD_for_CF bundled with its manager, layout, and originating ISF.
///
/// The characteristic function is
/// `χ(X,Y) = ∧ᵢ ( ȳᵢ·f_i0(X) ∨ yᵢ·f_i1(X) ∨ f_id(X) )` (Definition 2.3).
/// The invariant `∃Y.χ = 1` (every input admits at least one output word)
/// holds on construction and is preserved by all reduction algorithms in
/// this crate; it is what makes the reduced χ realizable.
///
/// # Example
///
/// ```
/// use bddcf_core::Cf;
/// use bddcf_logic::TruthTable;
///
/// // A 2-input, 1-output ISF: f(00)=0, f(01)=d, f(10)=d, f(11)=1.
/// let mut cf = Cf::from_truth_table(&TruthTable::from_rows(&["0", "d", "d", "1"]));
/// let before = cf.max_width();
/// cf.reduce_alg33_default();
/// assert!(cf.max_width() <= before);
/// let realization = cf.complete();
/// assert!(cf.realizes_original(&realization));
/// ```
#[derive(Debug, Clone)]
pub struct Cf {
    mgr: BddManager,
    layout: CfLayout,
    root: NodeId,
    isf: IsfBdds,
}

impl Cf {
    /// Builds the characteristic function of the ISF produced by
    /// `build_isf` inside a fresh manager laid out by `layout`.
    ///
    /// The closure receives the manager (inputs at `Var(0..n)`, outputs at
    /// `Var(n..n+m)`, default order inputs-then-outputs) and must return
    /// ON/OFF/DC sets over the input variables.
    ///
    /// # Panics
    ///
    /// Panics if the returned sets violate the ISF partition invariants or
    /// have the wrong arity.
    pub fn build(
        layout: CfLayout,
        build_isf: impl FnOnce(&mut BddManager, &CfLayout) -> IsfBdds,
    ) -> Cf {
        let mut mgr = layout.new_manager();
        let isf = build_isf(&mut mgr, &layout);
        Cf::from_isf(mgr, layout, isf)
    }

    /// Like [`Cf::build`] but with an explicit initial variable order
    /// (top to bottom, covering all `n + m` variables).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the layout's variables or
    /// violates Definition 2.4 (an output above one of its support
    /// variables).
    pub fn build_with_order(
        layout: CfLayout,
        order: &[Var],
        build_isf: impl FnOnce(&mut BddManager, &CfLayout) -> IsfBdds,
    ) -> Cf {
        let mut mgr = layout.new_manager();
        mgr.set_order(order);
        let isf = build_isf(&mut mgr, &layout);
        let mut cf = Cf::from_isf(mgr, layout, isf);
        let constraints = cf.sift_constraints();
        assert!(
            constraints.check(cf.manager()),
            "order violates Definition 2.4 (output above its essential support)"
        );
        cf
    }

    /// Wraps an already-built ISF into its characteristic function.
    ///
    /// # Panics
    ///
    /// Panics if the sets violate the partition invariants, have the wrong
    /// arity, or depend on output variables.
    pub fn from_isf(mut mgr: BddManager, layout: CfLayout, isf: IsfBdds) -> Cf {
        let saved = mgr.take_budget();
        let mut cf = Cf::try_from_isf(mgr, layout, isf)
            .expect("invariant: unbudgeted construction cannot fail");
        cf.mgr.resume_budget(saved);
        cf
    }

    /// Budgeted [`from_isf`](Cf::from_isf): fails cleanly (returning the
    /// manager's budget error and dropping the manager) if the budget runs
    /// out while χ is conjoined.
    ///
    /// # Panics
    ///
    /// Panics on the same *caller-bug* conditions as `from_isf`: wrong
    /// arity, invalid partition, or output-variable dependence.
    // xlint: allow(XL104): `remapped` mirrors `roots`, which is built non-empty (the chi root occupies index 0)
    pub fn try_from_isf(
        mut mgr: BddManager,
        layout: CfLayout,
        mut isf: IsfBdds,
    ) -> Result<Cf, BudgetError> {
        assert_eq!(
            isf.num_outputs(),
            layout.num_outputs(),
            "ISF arity disagrees with the layout"
        );
        assert!(
            isf.validate(&mut mgr),
            "ON/OFF/DC must partition the input space"
        );
        for j in 0..isf.num_outputs() {
            for var in isf.support_of_output(&mgr, j) {
                assert!(
                    !layout.is_output(var),
                    "ISF sets must not depend on output variables"
                );
            }
        }
        let root = try_chi_of(&mut mgr, &layout, &isf)?;

        // Compact before handing out.
        let mut roots = vec![root];
        roots.extend(isf.roots());
        let remapped = mgr.gc(&roots);
        let root = remapped[0];
        isf = IsfBdds::from_roots(&remapped[1..], layout.num_outputs());
        let mut cf = Cf {
            mgr,
            layout,
            root,
            isf,
        };
        debug_assert!(cf.is_fully_live(), "Definition 2.3 guarantees ∃Y.χ = 1");
        Ok(cf)
    }

    /// Convenience: characteristic function of an explicit truth table.
    pub fn from_truth_table(table: &TruthTable) -> Cf {
        let layout = CfLayout::new(table.num_inputs(), table.num_outputs());
        Cf::build(layout, |mgr, layout| {
            IsfBdds::from_truth_table(mgr, layout, table)
        })
    }

    /// The BDD root of χ.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The variable layout.
    pub fn layout(&self) -> &CfLayout {
        &self.layout
    }

    /// The owning manager (read-only).
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// The owning manager (mutable). Callers may allocate scratch nodes but
    /// must not reorder or collect garbage behind the `Cf`'s back — use the
    /// methods on `Cf` for that.
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.mgr
    }

    /// The original specification this χ was built from. Reductions narrow
    /// χ but never this record, so it remains the reference for
    /// realization checks.
    pub fn isf(&self) -> &IsfBdds {
        &self.isf
    }

    /// Rebuilds the χ of the *original* specification (Definition 2.3)
    /// from the preserved ISF record. The record is kept alive through
    /// every garbage collection, so this is valid at any point of a
    /// reduction pipeline — unlike a `NodeId` for the original root, which
    /// [`Cf::collect`] would invalidate. Use it as the right-hand side of
    /// refinement checks: every reduction must keep `root ⇒ original_chi`.
    pub fn original_chi(&mut self) -> NodeId {
        chi_of(&mut self.mgr, &self.layout, &self.isf)
    }

    /// Phase-boundary assertion used by the pipeline driver when the
    /// `check` feature is enabled (and available unconditionally for
    /// tests): panics with `context` unless manager integrity, the
    /// Definition-2.4 ordering rule, the ON/OFF/DC partition, validity
    /// (`∀X ∃Y χ = 1`), and the refinement property (`χ ⇒ χ_original`)
    /// all hold. Collects garbage afterwards to drop the scratch BDDs the
    /// checks build.
    ///
    /// The full four-layer analysis (including cascade lints and the
    /// width-profile recount) lives in the `bddcf-check` crate; this is
    /// the dependency-cycle-free subset `bddcf-core` can check about
    /// itself.
    pub fn assert_pipeline_invariants(&mut self, context: &str) {
        if let Err(violations) = self.mgr.check_integrity() {
            let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            panic!(
                "{context}: manager integrity violated: {}",
                rendered.join("; ")
            );
        }
        // Definition 2.4 over the *essential* support: inputs that only
        // influence the don't-care set impose no ordering constraint (this
        // is what legitimizes interleaved orders like the decimal adder's
        // carry chain; the sifting constraints enforce exactly this set).
        for j in 0..self.layout.num_outputs() {
            let y = self.layout.output_var(j);
            let isf = self.isf.clone();
            for var in isf.essential_support_of_output(&mut self.mgr, j) {
                assert!(
                    self.mgr.level_of(var) < self.mgr.level_of(y),
                    "{context}: Definition 2.4 violated for output {} and essential support {}",
                    self.layout.var_name(y),
                    self.layout.var_name(var)
                );
            }
        }
        let isf = self.isf.clone();
        assert!(
            isf.validate(&mut self.mgr),
            "{context}: ON/OFF/DC no longer partition the input space"
        );
        assert!(
            self.is_fully_live(),
            "{context}: χ is not fully live (∀X ∃Y χ = 1 violated)"
        );
        let original = self.original_chi();
        let root = self.root;
        assert!(
            self.mgr.implies(root, original) == TRUE,
            "{context}: reduction widened χ (χ' ⇒ χ fails)"
        );
        self.collect();
    }

    /// Splits the borrow into (manager, layout, root, isf) for algorithms
    /// that need simultaneous mutable manager access.
    pub(crate) fn parts_mut(&mut self) -> (&mut BddManager, &CfLayout, NodeId, &IsfBdds) {
        (&mut self.mgr, &self.layout, self.root, &self.isf)
    }

    /// Runs `op` with the manager's budget suspended — how the infallible
    /// reduction entry points delegate to their budgeted twins without ever
    /// observing a budget error.
    pub(crate) fn unbudgeted<T>(
        &mut self,
        op: impl FnOnce(&mut Self) -> Result<T, BudgetError>,
    ) -> T {
        let saved = self.mgr.take_budget();
        let result = op(self);
        self.mgr.resume_budget(saved);
        result.expect("invariant: unbudgeted reductions cannot fail")
    }

    /// Replaces root and ISF record simultaneously (used after reorders
    /// remapped every node id).
    pub(crate) fn set_state(&mut self, root: NodeId, isf: IsfBdds) {
        self.root = root;
        self.isf = isf;
    }

    /// Crate-internal reconstruction from checkpoint parts: a restored
    /// manager plus the recorded root and ISF ids. Validates that every id
    /// points into the restored arena and that the layout covers the
    /// manager's variables; deeper semantic checks (Def. 2.4 invariants,
    /// refinement) are the job of the `bddcf-check` oracles, which the
    /// crash-recovery harness runs on every resumed state.
    pub(crate) fn from_checkpoint_parts(
        mgr: BddManager,
        layout: CfLayout,
        root: NodeId,
        isf: IsfBdds,
    ) -> Result<Cf, String> {
        if layout.num_vars() != mgr.num_vars() {
            return Err(format!(
                "layout covers {} variables but the manager has {}",
                layout.num_vars(),
                mgr.num_vars()
            ));
        }
        if isf.num_outputs() != layout.num_outputs() {
            return Err(format!(
                "ISF records {} outputs but the layout has {}",
                isf.num_outputs(),
                layout.num_outputs()
            ));
        }
        let arena = mgr.arena_len() as u32;
        for id in std::iter::once(root).chain(isf.roots()) {
            if id.raw() >= arena {
                return Err(format!(
                    "node id {} out of range (arena has {} slots)",
                    id.raw(),
                    arena
                ));
            }
        }
        Ok(Cf {
            mgr,
            layout,
            root,
            isf,
        })
    }

    /// Replaces the root after an algorithm rewrote χ, then collects
    /// garbage.
    pub(crate) fn install_root(&mut self, new_root: NodeId) {
        self.root = new_root;
        self.collect();
    }

    /// Test-only hook: installs an arbitrary root so checkers can be shown
    /// a χ that no longer matches the recorded ISF. Never call this from
    /// production code — it deliberately breaks the `Cf` invariants.
    #[doc(hidden)]
    pub fn set_root_for_testing(&mut self, new_root: NodeId) {
        self.install_root(new_root);
    }

    /// Garbage-collects the manager, keeping χ and the ISF record alive.
    pub fn collect(&mut self) {
        let mut roots = vec![self.root];
        roots.extend(self.isf.roots());
        let remapped = self.mgr.gc(&roots);
        self.root = remapped[0];
        self.isf = IsfBdds::from_roots(&remapped[1..], self.layout.num_outputs());
    }

    /// Builds the `DC=fill` completion of this function as its *own*
    /// [`Cf`]: the don't cares are assigned the constant, χ is rebuilt, and
    /// the variable order is legalized against the completion's (larger)
    /// Definition-2.4 constraints — a completely specified function cannot
    /// keep outputs interleaved above inputs it now depends on.
    ///
    /// The input variables keep their current relative order, so the
    /// variant is measured "in the same order" in the sense of §5.1 while
    /// remaining a valid BDD_for_CF.
    pub fn completion_variant(&self, fill: bool) -> Cf {
        let mut fork = self.clone();
        let completed = {
            let isf = fork.isf.clone();
            isf.completed(&mut fork.mgr, fill)
        };
        let root = chi_of(&mut fork.mgr, &fork.layout, &completed);
        fork.root = root;
        fork.isf = completed;
        fork.collect();
        let constraints = fork.sift_constraints();
        let mut roots = vec![fork.root];
        roots.extend(fork.isf.roots());
        let remapped = fork.mgr.legalize_order(&roots, &constraints);
        let num_outputs = fork.layout.num_outputs();
        fork.root = remapped[0];
        fork.isf = IsfBdds::from_roots(&remapped[1..], num_outputs);
        fork.collect();
        fork
    }

    // -----------------------------------------------------------------
    // Metrics
    // -----------------------------------------------------------------

    /// Width profile of χ (Definition 3.5; constant-0 edges excluded).
    pub fn width_profile(&self) -> WidthProfile {
        self.mgr.width_profile(&[self.root])
    }

    /// Maximum width over all cuts (the paper's Table 4 metric).
    pub fn max_width(&self) -> usize {
        self.width_profile().max()
    }

    /// Number of non-terminal nodes of χ (the paper's Table 4 metric).
    pub fn node_count(&self) -> usize {
        self.mgr.node_count(self.root)
    }

    // -----------------------------------------------------------------
    // Semantics
    // -----------------------------------------------------------------

    /// The live-input set `∃Y.χ` as a BDD over the inputs.
    pub fn live(&mut self) -> NodeId {
        let ycube = self.layout.output_cube(&mut self.mgr);
        self.mgr.exists_cube(self.root, ycube)
    }

    /// Does every input combination admit at least one output word?
    pub fn is_fully_live(&mut self) -> bool {
        self.live() == TRUE
    }

    /// Is the output word `word` allowed on `input` by χ?
    pub fn admits(&mut self, input: &[bool], word: u64) -> bool {
        assert_eq!(input.len(), self.layout.num_inputs());
        let mut assignment = vec![false; self.layout.num_vars()];
        assignment[..input.len()].copy_from_slice(input);
        for j in 0..self.layout.num_outputs() {
            assignment[self.layout.output_var(j).0 as usize] = word >> j & 1 == 1;
        }
        self.mgr.eval(self.root, &assignment)
    }

    /// All output words allowed on `input`, in increasing order. Intended
    /// for small output counts (tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the function has more than 20 outputs.
    pub fn allowed_words(&mut self, input: &[bool]) -> Vec<u64> {
        assert!(
            self.layout.num_outputs() <= 20,
            "allowed_words enumerates 2^m words"
        );
        (0..1u64 << self.layout.num_outputs())
            .filter(|&w| self.admits(input, w))
            .collect()
    }

    /// Is `other`'s χ a *narrowing* of ours? (Every input-output pair other
    /// allows, we allow.) Reductions must narrow.
    pub fn narrows(&mut self, original_root: NodeId) -> bool {
        let implies = self.mgr.implies(self.root, original_root);
        implies == TRUE
    }

    /// Checks the Fig.-1 structural invariant of a well-formed BDD_for_CF:
    /// every reachable output-variable node has exactly one edge to the
    /// constant 0 (`f=0` or `f=1`; the `f=d` case is a removed node).
    ///
    /// The invariant holds on construction (each output's support is above
    /// its variable, so the path determines the output or leaves it free)
    /// and is preserved by every product-based merge because `0·g = 0`.
    /// It is what makes cascade cell extraction deterministic: at an output
    /// node the emitted bit is forced, independent of later inputs.
    pub fn output_nodes_well_formed(&self) -> bool {
        self.mgr.descendants(&[self.root]).into_iter().all(|n| {
            if !self.layout.is_output(self.mgr.var_of(n)) {
                return true;
            }
            let lo = self.mgr.lo(n);
            let hi = self.mgr.hi(n);
            (lo == FALSE) != (hi == FALSE)
        })
    }

    /// Evaluates a prefer-0 completion on one input by walking χ: at an
    /// output node the 0-edge is tried first and the walk backtracks when a
    /// choice turns out unsatisfiable for this input (which only happens in
    /// interleaved orders where don't-care structure sits below the output
    /// — with outputs below their full ternary support every choice is
    /// forced, see [`Cf::output_nodes_well_formed`]). Skipped output
    /// variables are don't cares and resolve to 0.
    ///
    /// Cost: one root-to-leaf walk, `O(nodes)` in the worst case thanks to
    /// a dead-end memo. On any input the returned word is admitted by χ.
    ///
    /// # Panics
    ///
    /// Panics if χ is unsatisfiable on `input` (cannot happen for a fully
    /// live `Cf`) or the input has the wrong arity.
    pub fn eval_completed(&self, input: &[bool]) -> u64 {
        assert_eq!(input.len(), self.layout.num_inputs());
        self.walk_from(self.root, input)
            .expect("χ is unsatisfiable on this input: liveness invariant broken")
    }

    /// [`Cf::eval_completed`] generalized to start at an arbitrary node of
    /// χ (used by decomposition and cascade evaluation): returns a packed
    /// output word admitted by the sub-function on `input`, or `None` if
    /// the sub-function is unsatisfiable there. Output bits above the node
    /// (already decided on the path to it) are reported as 0.
    pub fn walk_from(&self, node: NodeId, input: &[bool]) -> Option<u64> {
        let mut dead = bddcf_bdd::hasher::FastSet::default();
        self.walk(node, input, &mut dead)
    }

    fn walk(
        &self,
        node: NodeId,
        input: &[bool],
        dead: &mut bddcf_bdd::hasher::FastSet<NodeId>,
    ) -> Option<u64> {
        if node == TRUE {
            return Some(0);
        }
        if node == FALSE || dead.contains(&node) {
            return None;
        }
        let result = match self.layout.role(self.mgr.var_of(node)) {
            crate::layout::Role::Input(i) => {
                let next = if input[i] {
                    self.mgr.hi(node)
                } else {
                    self.mgr.lo(node)
                };
                self.walk(next, input, dead)
            }
            crate::layout::Role::Output(j) => {
                let lo = self.mgr.lo(node);
                let hi = self.mgr.hi(node);
                self.walk(lo, input, dead)
                    .or_else(|| self.walk(hi, input, dead).map(|w| w | 1 << j))
            }
        };
        if result.is_none() {
            dead.insert(node);
        }
        result
    }

    /// Decides, for every reachable output node of χ whose *both* children
    /// are satisfiable, which edge a cascade cell must hard-wire.
    ///
    /// A cell's choice is baked into its table and must therefore be valid
    /// for **every** continuation of the inputs below the cell: the chosen
    /// child's live set must equal the node's. With outputs below their
    /// full ternary support such nodes do not exist (one child is always
    /// constant 0); in interleaved orders they appear when only the
    /// don't-care structure is undecided, and the child carrying the
    /// specified value always covers the live set. The 0-edge is preferred.
    ///
    /// # Errors
    ///
    /// Returns the offending node if neither child covers the node's live
    /// set — χ then has no completion in which this output only depends on
    /// the variables above it, and the caller must re-order or re-partition.
    pub fn cascade_output_choices(
        &mut self,
    ) -> Result<bddcf_bdd::hasher::FastMap<NodeId, bool>, NodeId> {
        let saved = self.mgr.take_budget();
        let result = self.try_cascade_output_choices();
        self.mgr.resume_budget(saved);
        match result {
            Ok(choices) => Ok(choices),
            Err(ChoiceError::Entangled(node)) => Err(node),
            Err(ChoiceError::Budget(_)) => {
                unreachable!("invariant: unbudgeted choice analysis cannot exhaust a budget")
            }
        }
    }

    /// Budgeted [`cascade_output_choices`](Cf::cascade_output_choices):
    /// distinguishes the semantic failure (an entangled output node) from a
    /// budget exhaustion mid-analysis.
    pub fn try_cascade_output_choices(
        &mut self,
    ) -> Result<bddcf_bdd::hasher::FastMap<NodeId, bool>, ChoiceError> {
        let layout = self.layout.clone();
        let ycube = layout.output_cube(&mut self.mgr);
        let mut choices = bddcf_bdd::hasher::FastMap::default();
        for node in self.mgr.descendants(&[self.root]) {
            if !layout.is_output(self.mgr.var_of(node)) {
                continue;
            }
            let lo = self.mgr.lo(node);
            let hi = self.mgr.hi(node);
            if lo == FALSE || hi == FALSE {
                continue; // forced
            }
            let live_node = self.mgr.try_exists_cube(node, ycube)?;
            let live_lo = self.mgr.try_exists_cube(lo, ycube)?;
            if live_lo == live_node {
                choices.insert(node, false);
                continue;
            }
            let live_hi = self.mgr.try_exists_cube(hi, ycube)?;
            if live_hi == live_node {
                choices.insert(node, true);
            } else {
                return Err(ChoiceError::Entangled(node));
            }
        }
        Ok(choices)
    }

    // -----------------------------------------------------------------
    // Completion
    // -----------------------------------------------------------------

    /// Extracts a *completely specified* multiple-output function realizing
    /// χ: output `j` becomes a BDD over the inputs. Don't cares are
    /// resolved by preferring 0.
    ///
    /// # Panics
    ///
    /// Panics if χ is not fully live (some input admits no output — cannot
    /// happen for a `Cf` built by this crate).
    pub fn complete(&mut self) -> Vec<NodeId> {
        assert!(
            self.is_fully_live(),
            "χ must admit an output for every input"
        );
        let ycube = self.layout.output_cube(&mut self.mgr);
        let mut cur = self.root;
        let mut outputs = Vec::with_capacity(self.layout.num_outputs());
        for j in 0..self.layout.num_outputs() {
            let y = self.layout.output_var(j);
            // g_j(x) = 1 iff output j cannot be 0 here (prefer-0 policy).
            let cur0 = self.mgr.restrict(cur, y, false);
            let can_be_zero = self.mgr.exists_cube(cur0, ycube);
            let g = self.mgr.not(can_be_zero);
            cur = self.mgr.compose(cur, y, g);
            outputs.push(g);
        }
        debug_assert_eq!(cur, TRUE, "completion must satisfy χ everywhere");
        outputs
    }

    /// Checks that completed outputs `g` realize the original specification:
    /// `on_j ≤ g_j` and `g_j · off_j = 0` for every output.
    pub fn realizes_original(&mut self, g: &[NodeId]) -> bool {
        assert_eq!(g.len(), self.layout.num_outputs());
        (0..g.len()).all(|j| {
            let viol0 = self.mgr.and(g[j], self.isf.off[j]);
            let ng = self.mgr.not(g[j]);
            let viol1 = self.mgr.and(ng, self.isf.on[j]);
            viol0 == FALSE && viol1 == FALSE
        })
    }
}

impl Cf {
    /// Renders χ as Graphviz DOT in the paper's drawing style: `x`/`y`
    /// labels, dotted 0-edges, constant-0 node omitted.
    pub fn to_dot(&self, name: &str) -> String {
        let layout = self.layout.clone();
        self.mgr.to_dot(
            &[self.root],
            |v| layout.var_name(v),
            &bddcf_bdd::dot::DotOptions {
                hide_false: true,
                name: name.to_owned(),
            },
        )
    }
}

/// Why [`Cf::try_cascade_output_choices`] gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChoiceError {
    /// Neither child of this output node covers its live set: χ has no
    /// completion in which the output only depends on the variables above
    /// it. The caller must re-order or re-partition.
    Entangled(NodeId),
    /// The manager's budget ran out mid-analysis.
    Budget(BudgetError),
}

impl From<BudgetError> for ChoiceError {
    fn from(e: BudgetError) -> Self {
        ChoiceError::Budget(e)
    }
}

impl std::fmt::Display for ChoiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChoiceError::Entangled(node) => {
                write!(
                    f,
                    "output node {node:?} is entangled: no child covers its live set"
                )
            }
            ChoiceError::Budget(e) => write!(f, "budget exhausted during choice analysis: {e}"),
        }
    }
}

impl std::error::Error for ChoiceError {}

/// `χ = ∧_j ( ȳ_j·off_j ∨ y_j·on_j ∨ dc_j )`, conjoined deepest output
/// first to keep intermediate results small near the bottom.
fn chi_of(mgr: &mut BddManager, layout: &CfLayout, isf: &IsfBdds) -> NodeId {
    let saved = mgr.take_budget();
    let root =
        try_chi_of(mgr, layout, isf).expect("invariant: unbudgeted construction cannot fail");
    mgr.resume_budget(saved);
    root
}

/// Budgeted [`chi_of`]: the χ construction of Definition 2.3, failing
/// cleanly when the manager's installed budget runs out.
// xlint: allow(XL104): the ISF on/off/dc vectors are sized `num_outputs` by construction; `j` ranges below that
fn try_chi_of(
    mgr: &mut BddManager,
    layout: &CfLayout,
    isf: &IsfBdds,
) -> Result<NodeId, BudgetError> {
    let mut factors = Vec::with_capacity(layout.num_outputs());
    for j in 0..layout.num_outputs() {
        let y = mgr.try_mk(layout.output_var(j), FALSE, TRUE)?;
        let ny = mgr.try_not(y)?;
        let t0 = mgr.try_and(ny, isf.off[j])?;
        let t1 = mgr.try_and(y, isf.on[j])?;
        let t01 = mgr.try_or(t0, t1)?;
        factors.push(mgr.try_or(t01, isf.dc[j])?);
    }
    factors.sort_by_key(|&f| std::cmp::Reverse(mgr.level_of_node(f)));
    mgr.try_and_many(&factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::MultiOracle;

    fn paper_cf() -> Cf {
        Cf::from_truth_table(&TruthTable::paper_table1())
    }

    #[test]
    fn isf_from_truth_table_validates() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        assert!(isf.validate(&mut mgr));
        assert_eq!(isf.num_outputs(), 2);
    }

    #[test]
    fn cf_admits_exactly_the_specified_behaviour() {
        let table = TruthTable::paper_table1();
        let mut cf = paper_cf();
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            for word in 0..4u64 {
                let expect = (0..2).all(|j| table.get(r, j).admits(word >> j & 1 == 1));
                assert_eq!(cf.admits(&input, word), expect, "row {r} word {word:02b}");
            }
        }
    }

    #[test]
    fn cf_is_fully_live() {
        let mut cf = paper_cf();
        assert!(cf.is_fully_live());
    }

    #[test]
    fn allowed_words_counts_dont_cares() {
        let mut cf = paper_cf();
        // Row 0100 (x2=1): f1=d, f2=d -> all four words allowed.
        let input = [false, true, false, false];
        assert_eq!(cf.allowed_words(&input), vec![0, 1, 2, 3]);
        // Row 1010 -> r with x1=1,x3=1: f1=1, f2=0 -> only word 01.
        let input = [true, false, true, false];
        assert_eq!(cf.allowed_words(&input), vec![0b01]);
    }

    #[test]
    fn completion_realizes_spec() {
        let table = TruthTable::paper_table1();
        let mut cf = paper_cf();
        let g = cf.complete();
        assert!(cf.realizes_original(&g));
        // Cross-check through the oracle interface.
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let mut assignment = vec![false; cf.layout().num_vars()];
            assignment[..4].copy_from_slice(&input);
            let mut word = 0u64;
            for (j, &gj) in g.iter().enumerate() {
                if cf.manager().eval(gj, &assignment) {
                    word |= 1 << j;
                }
            }
            assert!(table.respond(&input).admits(word, 2), "row {r}");
        }
    }

    #[test]
    fn completion_prefers_zero() {
        // Single output, always don't care => completion must be constant 0.
        let table = TruthTable::from_rows(&["d", "d"]);
        let mut cf = Cf::from_truth_table(&table);
        let g = cf.complete();
        assert_eq!(g[0], FALSE);
    }

    #[test]
    fn completed_baselines_have_no_dc() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let dc0 = isf.completed(&mut mgr, false);
        assert!(dc0.validate(&mut mgr));
        assert!(dc0.dc.iter().all(|&d| d == FALSE));
        let dc1 = isf.completed(&mut mgr, true);
        // DC=1 folds dc into the ON sets.
        let old_on_plus_dc = mgr.or(isf.on[0], isf.dc[0]);
        assert_eq!(dc1.on[0], old_on_plus_dc);
    }

    #[test]
    fn input_dc_ratio_of_paper_example() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        // Rows 0100 and 0101 are all-dc: 2 of 16.
        let ratio = isf.input_dc_ratio(&mut mgr, &layout);
        assert!((ratio - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn select_outputs_is_a_view() {
        let table = TruthTable::paper_table1();
        let layout = CfLayout::new(4, 2);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        let first = isf.select_outputs(0..1);
        assert_eq!(first.num_outputs(), 1);
        assert_eq!(first.on[0], isf.on[0]);
    }

    #[test]
    fn support_of_output_reflects_ternary_dependence() {
        // f(x0, x1) = x0 (x1 irrelevant, fully specified).
        let table = TruthTable::from_rows(&["0", "1", "0", "1"]);
        let layout = CfLayout::new(2, 1);
        let mut mgr = layout.new_manager();
        let isf = IsfBdds::from_truth_table(&mut mgr, &layout, &table);
        assert_eq!(isf.support_of_output(&mgr, 0), vec![Var(0)]);
    }

    #[test]
    fn collect_preserves_cf() {
        let mut cf = paper_cf();
        let words_before = cf.allowed_words(&[true, true, false, false]);
        // Allocate garbage.
        for i in 0..50 {
            let v = cf.layout().input_var(i % 4);
            let x = cf.manager_mut().var(v);
            let _ = cf.manager_mut().not(x);
        }
        cf.collect();
        assert_eq!(cf.allowed_words(&[true, true, false, false]), words_before);
        assert!(cf.is_fully_live());
    }

    #[test]
    fn dot_export_uses_role_names() {
        let cf = paper_cf();
        let dot = cf.to_dot("table1");
        assert!(dot.contains("digraph table1"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("y2"));
        assert!(!dot.contains("label=\"0\""), "constant 0 hidden");
    }

    #[test]
    fn completion_variants_are_valid_cfs() {
        let cf = paper_cf();
        for fill in [false, true] {
            let mut variant = cf.completion_variant(fill);
            assert!(variant.is_fully_live());
            // Completely specified: exactly one word per input.
            for r in 0..16usize {
                let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
                assert_eq!(
                    variant.allowed_words(&input).len(),
                    1,
                    "fill={fill} row {r}"
                );
            }
            // The variant's word is admitted by the original χ.
            let mut original = paper_cf();
            for r in 0..16usize {
                let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
                let word = variant.eval_completed(&input);
                assert!(original.admits(&input, word), "fill={fill} row {r}");
            }
        }
    }

    #[test]
    fn completely_specified_cf_has_unique_words() {
        // Full adder as a completely specified function.
        let mut table = TruthTable::new(3, 2);
        for r in 0..8usize {
            let ones = (r & 1) + (r >> 1 & 1) + (r >> 2 & 1);
            table.set(r, 0, Ternary::from_bool(ones & 1 == 1));
            table.set(r, 1, Ternary::from_bool(ones >= 2));
        }
        let mut cf = Cf::from_truth_table(&table);
        for r in 0..8usize {
            let input: Vec<bool> = (0..3).map(|i| r >> i & 1 == 1).collect();
            assert_eq!(cf.allowed_words(&input).len(), 1, "row {r}");
        }
    }
}
