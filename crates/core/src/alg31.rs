//! Algorithm 3.1: recursive merging of compatible children.
//!
//! Starting from the root, each node whose sub-ISF still contains don't
//! cares is inspected: if its two children are compatible (see
//! [`compat`](crate::compat)) they are replaced by their product, which
//! makes the node redundant (both edges point to the merged child and the
//! reduction rule removes it); otherwise the algorithm recurses into both
//! children. This is the paper's simplification of Shiple et al.'s
//! heuristic BDD minimization, restated on the BDD_for_CF.
//!
//! The procedure reduces node counts *locally*; the paper contrasts it with
//! Algorithm 3.3 (level-wide clique covers) which targets the width
//! directly.

use crate::cf::Cf;
use crate::compat::CompatCtx;
use crate::layout::CfLayout;
use bddcf_bdd::hasher::FastMap;
use bddcf_bdd::{BddManager, Error as BudgetError, NodeId};

/// Before/after metrics of a reduction pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReductionStats {
    /// Non-terminal node count before the pass.
    pub nodes_before: usize,
    /// Non-terminal node count after the pass.
    pub nodes_after: usize,
    /// Maximum BDD_for_CF width before the pass.
    pub max_width_before: usize,
    /// Maximum BDD_for_CF width after the pass.
    pub max_width_after: usize,
    /// Number of child pairs merged.
    pub merges: usize,
}

impl Cf {
    /// Applies Algorithm 3.1, rewriting χ in place, and reports the metrics.
    pub fn reduce_alg31(&mut self) -> ReductionStats {
        self.unbudgeted(|cf| cf.try_reduce_alg31())
    }

    /// Budgeted Algorithm 3.1. On `Err`, χ is left exactly as it was (the
    /// partially built rewrite is unreferenced garbage reclaimed by the next
    /// [`collect`](Cf::collect)).
    pub fn try_reduce_alg31(&mut self) -> Result<ReductionStats, BudgetError> {
        let nodes_before = self.node_count();
        let max_width_before = self.max_width();
        let layout = self.layout().clone();
        let mut merges = 0usize;
        let new_root = {
            let (mgr, _, root, _) = self.parts_mut();
            let ctx = CompatCtx::new(mgr, &layout);
            let mut memo = FastMap::default();
            alg31_rec(mgr, &ctx, &layout, root, &mut memo, &mut merges)?
        };
        self.install_root(new_root);
        Ok(ReductionStats {
            nodes_before,
            nodes_after: self.node_count(),
            max_width_before,
            max_width_after: self.max_width(),
            merges,
        })
    }
}

fn alg31_rec(
    mgr: &mut BddManager,
    ctx: &CompatCtx,
    layout: &CfLayout,
    v: NodeId,
    memo: &mut FastMap<NodeId, NodeId>,
    merges: &mut usize,
) -> Result<NodeId, BudgetError> {
    if mgr.is_const(v) {
        return Ok(v);
    }
    if let Some(&r) = memo.get(&v) {
        return Ok(r);
    }
    let view = mgr.level_of_node(v);
    let r = if !ctx.try_has_dont_care(mgr, layout, v, view)? {
        // Step 1: completely specified below — nothing to merge.
        v
    } else {
        let lo = mgr.lo(v);
        let hi = mgr.hi(v);
        if let Some(product) = ctx.try_merge(mgr, lo, hi)? {
            // Step 2, compatible case: both children become the product, so
            // the test on v disappears; continue on the merged child.
            *merges += 1;
            alg31_rec(mgr, ctx, layout, product, memo, merges)?
        } else {
            let var = mgr.var_of(v);
            let new_lo = alg31_rec(mgr, ctx, layout, lo, memo, merges)?;
            let new_hi = alg31_rec(mgr, ctx, layout, hi, memo, merges)?;
            mgr.try_mk(var, new_lo, new_hi)?
        }
    };
    memo.insert(v, r);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    #[test]
    fn preserves_realizability_on_paper_example() {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        let stats = cf.reduce_alg31();
        assert!(cf.is_fully_live(), "liveness invariant must survive");
        assert!(stats.nodes_after <= stats.nodes_before);
        // Every still-allowed word must have been allowed before.
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            for w in cf.allowed_words(&input) {
                let expect = (0..2).all(|j| table.get(r, j).admits(w >> j & 1 == 1));
                assert!(expect, "row {r} word {w:02b} must be admitted by the spec");
            }
            assert!(
                !cf.allowed_words(&input).is_empty(),
                "row {r} lost liveness"
            );
        }
    }

    #[test]
    fn completion_still_realizes_after_reduction() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        cf.reduce_alg31();
        let g = cf.complete();
        assert!(cf.realizes_original(&g));
    }

    #[test]
    fn no_op_on_completely_specified_functions() {
        let table = TruthTable::paper_table1().completed(false);
        let mut cf = Cf::from_truth_table(&table);
        let before = cf.node_count();
        let stats = cf.reduce_alg31();
        assert_eq!(stats.merges, 0);
        assert_eq!(stats.nodes_after, before);
    }

    #[test]
    fn merges_all_dont_care_function_to_tautology() {
        let table = TruthTable::from_rows(&["d", "d", "d", "d"]);
        let mut cf = Cf::from_truth_table(&table);
        assert_eq!(cf.node_count(), 0, "all-dc χ is TRUE already");
        let stats = cf.reduce_alg31();
        assert_eq!(stats.nodes_after, 0);
    }

    #[test]
    fn reduces_the_mergeable_pair_example() {
        // f(x1, x2): rows (00,01,10,11) -> (0, d, d, 0): the two cofactors
        // by x1 are (0,d) and (d,0) — compatible, product (0,0) — so
        // Algorithm 3.1 removes the x1 test entirely.
        let table = TruthTable::from_rows(&["0", "d", "d", "0"]);
        let mut cf = Cf::from_truth_table(&table);
        let before = cf.node_count();
        let stats = cf.reduce_alg31();
        assert!(stats.merges >= 1);
        assert!(stats.nodes_after < before);
        // The reduced χ must force output 0 everywhere except where both
        // operands allowed 1 — here: nowhere. χ = ¬y.
        let mut assignment = [false, false, false];
        assert!(cf.manager().eval(cf.root(), &assignment));
        assignment[2] = true; // y = 1
        assert!(!cf.manager().eval(cf.root(), &assignment));
    }

    #[test]
    fn stats_width_fields_are_consistent() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let wb = cf.max_width();
        let stats = cf.reduce_alg31();
        assert_eq!(stats.max_width_before, wb);
        assert_eq!(stats.max_width_after, cf.max_width());
        assert!(stats.max_width_after <= stats.max_width_before);
    }
}
