//! End-to-end budget-exhaustion tests: every pipeline phase, starved of
//! each resource in turn, must either return a clean typed error or
//! degrade into a valid (refinement-oracle-passing) result with a
//! populated [`DegradationReport`] — never panic, never corrupt the
//! manager.

use bddcf_bdd::{Budget, CancelToken, Error as BudgetError};
use bddcf_cascade::{synthesize_governed, CascadeOptions, SynthesisError};
use bddcf_check::{check_cf, check_manager, check_refinement};
use bddcf_core::degrade::DegradationReport;
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, Benchmark, DecimalAdder};
use proptest::prelude::*;
use std::time::Duration;

fn bench() -> DecimalAdder {
    DecimalAdder::new(1)
}

/// Builds χ for the benchmark with no budget installed.
fn build_cf(benchmark: &dyn Benchmark) -> Cf {
    let (mgr, layout, isf) = build_isf_pieces(benchmark);
    Cf::from_isf(mgr, layout, isf)
}

/// The full soundness audit: manager integrity, CF lints, refinement.
fn assert_sound(cf: &mut Cf, context: &str) {
    let _ = cf.manager_mut().take_budget();
    check_manager(cf.manager()).assert_clean(context);
    check_cf(cf).assert_clean(context);
    check_refinement(cf).assert_clean(context);
}

#[test]
fn construction_starved_of_nodes_fails_with_typed_error() {
    let (mut mgr, layout, isf) = build_isf_pieces(&bench());
    mgr.set_budget(Budget::default().with_node_limit(mgr.arena_len() + 1));
    match Cf::try_from_isf(mgr, layout, isf) {
        Err(BudgetError::NodeLimit { .. }) => {}
        other => panic!("expected NodeLimit, got {other:?}"),
    }
}

#[test]
fn construction_starved_of_steps_fails_with_typed_error() {
    let (mut mgr, layout, isf) = build_isf_pieces(&bench());
    mgr.set_budget(Budget::default().with_step_limit(3));
    match Cf::try_from_isf(mgr, layout, isf) {
        Err(BudgetError::StepLimit { .. }) => {}
        other => panic!("expected StepLimit, got {other:?}"),
    }
}

#[test]
fn construction_with_expired_deadline_fails_with_typed_error() {
    let (mut mgr, layout, isf) = build_isf_pieces(&bench());
    mgr.set_budget(Budget::default().with_time_budget(Duration::ZERO));
    match Cf::try_from_isf(mgr, layout, isf) {
        Err(BudgetError::TimeBudget) => {}
        other => panic!("expected TimeBudget, got {other:?}"),
    }
}

#[test]
fn alg31_starved_leaves_chi_untouched_and_sound() {
    let mut cf = build_cf(&bench());
    let before = (cf.max_width(), cf.node_count());
    let quota = cf.manager().arena_len();
    cf.manager_mut()
        .set_budget(Budget::default().with_node_limit(quota));
    let err = cf.try_reduce_alg31().expect_err("quota at arena size");
    assert!(matches!(err, BudgetError::NodeLimit { .. }));
    assert_eq!((cf.max_width(), cf.node_count()), before, "χ must not move");
    assert_sound(&mut cf, "alg31 starved");
}

#[test]
fn alg33_starved_degrades_with_populated_report() {
    let mut cf = build_cf(&bench());
    let quota = cf.manager().arena_len() + 2;
    cf.manager_mut()
        .set_budget(Budget::default().with_node_limit(quota));
    let mut report = DegradationReport::new();
    cf.reduce_alg33_governed(&Alg33Options::default(), &mut report);
    assert!(!report.is_clean(), "a starved run must record downgrades");
    assert_sound(&mut cf, "alg33 starved");
}

#[test]
fn support_reduction_starved_degrades_with_populated_report() {
    let mut cf = build_cf(&bench());
    cf.manager_mut()
        .set_budget(Budget::default().with_step_limit(1));
    let mut report = DegradationReport::new();
    let removed = cf.reduce_support_variables_governed(&mut report);
    assert!(removed.is_empty(), "no room to prove redundancy");
    assert!(!report.is_clean());
    assert_sound(&mut cf, "support starved");
}

#[test]
fn fixpoint_under_node_quota_degrades_but_stays_valid() {
    let mut cf = build_cf(&bench());
    let unreduced_nodes = cf.manager().arena_len();
    cf.manager_mut()
        .set_budget(Budget::default().with_node_limit(unreduced_nodes + 4));
    let mut report = DegradationReport::new();
    cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut report);
    assert!(!report.is_clean(), "quota near arena size must bite");
    assert!(
        report.terminal_cause().is_none(),
        "node quotas are never terminal"
    );
    assert_sound(&mut cf, "fixpoint under node quota");
}

#[test]
fn fixpoint_under_step_quota_stops_with_terminal_cause() {
    let mut cf = build_cf(&bench());
    cf.manager_mut()
        .set_budget(Budget::default().with_step_limit(10));
    let mut report = DegradationReport::new();
    cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut report);
    assert!(matches!(
        report.terminal_cause(),
        Some(BudgetError::StepLimit { .. })
    ));
    assert_sound(&mut cf, "fixpoint under step quota");
}

#[test]
fn fixpoint_with_fired_cancel_token_stops_cleanly() {
    let mut cf = build_cf(&bench());
    let token = CancelToken::new();
    token.cancel();
    cf.manager_mut()
        .set_budget(Budget::default().with_cancel(token));
    let mut report = DegradationReport::new();
    cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 4, &mut report);
    assert_eq!(report.terminal_cause(), Some(BudgetError::Cancelled));
    assert_sound(&mut cf, "fixpoint cancelled");
}

#[test]
fn synthesis_starved_returns_budget_error_or_degrades() {
    let mut cf = build_cf(&bench());
    cf.reduce_to_fixpoint(&Alg33Options::default(), 4);
    cf.manager_mut()
        .set_budget(Budget::default().with_step_limit(1));
    let mut report = DegradationReport::new();
    match synthesize_governed(&mut cf, &CascadeOptions::default(), &mut report) {
        // Choice analysis needed budgeted BDD work and hit the wall: the
        // step quota is terminal, so synthesis reports it as an error.
        Err(SynthesisError::Budget(BudgetError::StepLimit { .. })) => {}
        // χ had no entangled choices to analyze, so nothing was charged.
        Ok(_) => {}
        other => panic!("unexpected synthesis outcome {other:?}"),
    }
    assert_sound(&mut cf, "synthesis starved");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Cancelling at an arbitrary operation count anywhere in the pipeline
    /// never corrupts the manager and never breaks the refinement oracle:
    /// either construction fails with the typed `Cancelled` error, or the
    /// surviving (partially reduced) χ is fully sound.
    #[test]
    fn random_cancel_points_never_corrupt_the_manager(cancel_at in 1u64..4000) {
        let (mut mgr, layout, isf) = build_isf_pieces(&bench());
        mgr.set_budget(
            Budget::default()
                .with_cancel(CancelToken::new())
                .with_cancel_at_step(cancel_at),
        );
        let mut report = DegradationReport::new();
        match Cf::try_from_isf(mgr, layout, isf) {
            Err(e) => prop_assert_eq!(e, BudgetError::Cancelled),
            Ok(mut cf) => {
                cf.reduce_to_fixpoint_governed(&Alg33Options::default(), 2, &mut report);
                let _ = synthesize_governed(&mut cf, &CascadeOptions::default(), &mut report);
                let _ = cf.manager_mut().take_budget();
                let m = check_manager(cf.manager());
                prop_assert!(m.is_clean(), "{}", m);
                let c = check_cf(&mut cf);
                prop_assert!(c.is_clean(), "{}", c);
                let r = check_refinement(&mut cf);
                prop_assert!(r.is_clean(), "{}", r);
            }
        }
    }
}
