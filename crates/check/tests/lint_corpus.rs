//! Seeded-defect corpus: every lint of the artifact catalog (NL001–NL009,
//! TV001–TV004) demonstrated to fire on a minimal corruption.
//!
//! Each test takes a known-clean artifact (the emitted Verilog of the
//! paper's Table 1 function, or a small hand-written module), plants one
//! defect, and asserts the expected finding — and, where cheap, that *no
//! other* lint drowns it out. This is the lint suite's own regression
//! net: a refactor that silently stops detecting a defect class fails
//! here, not in the field.

use bddcf_cascade::{synthesize, Cascade, CascadeOptions, LutCell, Segmentation};
use bddcf_check::netlist::{
    NL001_MULTIPLE_DRIVERS, NL002_UNDRIVEN, NL003_UNUSED_WIRE, NL004_COMB_LOOP,
    NL005_CASE_INCOMPLETE, NL006_CASE_OVERLAP, NL007_UNUSED_ADDRESS_BIT, NL008_RAIL_WIDTH,
    NL009_STRUCTURE, TV003_RECONSTRUCTION, TV004_REFINEMENT,
};
use bddcf_check::{
    check_netlist_refinement, lint_netlist, lint_rail_bounds, netlist_from_verilog,
    netlist_to_cascade, LintReport, Netlist,
};
use bddcf_core::Cf;
use bddcf_io::{cascade_to_verilog, parse_verilog};
use bddcf_logic::TruthTable;

/// The emitted Verilog of the paper's Table 1 function plus the pieces
/// needed for semantic checks.
fn table1_artifact() -> (String, Cascade, Cf) {
    let table = TruthTable::paper_table1();
    let mut cf = Cf::from_truth_table(&table);
    let cascade = synthesize(
        &mut cf,
        &CascadeOptions {
            max_cell_inputs: 4,
            max_cell_outputs: 4,
            segmentation: Segmentation::MinCells,
        },
    )
    .expect("paper_table1 fits a 4-input cell");
    let text = cascade_to_verilog(&cascade, "m").expect("valid module name");
    (text, cascade, cf)
}

/// Parses and lints `text`, returning the netlist and the merged report
/// (lowering findings + structural lints).
fn lint(text: &str) -> (Netlist, LintReport) {
    let parsed = parse_verilog(text).expect("corpus input parses");
    let (net, mut report) = netlist_from_verilog(&parsed, "corpus.v");
    report.extend(lint_netlist(&net, "corpus.v"));
    (net, report)
}

/// Replaces the first occurrence of `from` in `text`, asserting it exists
/// so a changed emitter cannot silently neuter a corruption.
fn corrupt(text: &str, from: &str, to: &str) -> String {
    assert!(text.contains(from), "corruption anchor {from:?} not found");
    text.replacen(from, to, 1)
}

#[test]
fn the_clean_artifact_has_no_findings() {
    let (text, _, _) = table1_artifact();
    let (_, report) = lint(&text);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn nl001_duplicate_driver() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(
        &text,
        "  assign y[0] = data0[0];",
        "  assign y[0] = data0[0];\n  assign y[0] = data0[1];",
    );
    let (_, report) = lint(&text);
    assert!(report.has(NL001_MULTIPLE_DRIVERS), "{report}");
}

#[test]
fn nl002_undriven_output() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(&text, "  assign y[0] = data0[0];\n", "");
    let (_, report) = lint(&text);
    assert!(report.has(NL002_UNDRIVEN), "{report}");
}

#[test]
fn nl003_unused_wire() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(
        &text,
        "  reg [1:0] data0;",
        "  wire [0:0] dead;\n  reg [1:0] data0;",
    );
    let (_, report) = lint(&text);
    assert!(report.has(NL003_UNUSED_WIRE), "{report}");
    // The planted wire is also undriven-but-unread; NL002 must NOT fire
    // for a bit nothing reads.
    assert!(!report.has(NL002_UNDRIVEN), "{report}");
}

#[test]
fn nl004_combinational_loop() {
    let text = "\
module m (
  input  wire [0:0] x,
  output wire [0:0] y
);
  wire [0:0] a;
  wire [0:0] b;
  assign a[0] = b[0];
  assign b[0] = a[0];
  assign y[0] = a[0];
endmodule
";
    let (_, report) = lint(text);
    assert!(report.has(NL004_COMB_LOOP), "{report}");
}

#[test]
fn nl005_incomplete_case() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(&text, "      4'd4: data0 = 2'd0;\n", "");
    let (_, report) = lint(&text);
    assert!(report.has(NL005_CASE_INCOMPLETE), "{report}");
    let rendered = report.to_string();
    assert!(
        rendered.contains("default"),
        "the finding must mention the zero-filling default: {rendered}"
    );
}

#[test]
fn nl006_overlapping_case() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(
        &text,
        "      4'd4: data0 = 2'd0;",
        "      4'd4: data0 = 2'd0;\n      4'd4: data0 = 2'd1;",
    );
    let (_, report) = lint(&text);
    assert!(report.has(NL006_CASE_OVERLAP), "{report}");
}

#[test]
fn nl007_vacuous_address_bit() {
    // Bit 1 of the address never changes the word: the ROM is really a
    // 1-address-bit memory burning double the cells.
    let text = "\
module m (
  input  wire [1:0] x,
  output wire [0:0] y
);
  wire [1:0] addr0 = {x[1], x[0]};
  reg [0:0] data0;
  always @* begin
    case (addr0)
      2'd0: data0 = 1'd0;
      2'd1: data0 = 1'd1;
      2'd2: data0 = 1'd0;
      2'd3: data0 = 1'd1;
    endcase
  end
  assign y[0] = data0[0];
endmodule
";
    let (_, report) = lint(text);
    assert!(report.has(NL007_UNUSED_ADDRESS_BIT), "{report}");
    let rendered = report.to_string();
    assert!(rendered.contains("addr0[1]"), "{rendered}");
    assert!(!rendered.contains("addr0[0]"), "bit 0 is live: {rendered}");
}

#[test]
fn nl008_rail_bundle_wider_than_theorem_3_1() {
    // A hand-built chain claiming 3 rails between its cells; Theorem 3.1
    // on the paper's Table 1 function allows at most ⌈log₂ W⌉ < 3 at any
    // cut, so the recount must flag the declared bundle.
    let cells = vec![
        LutCell::new(0, vec![0, 1], 3, vec![], vec![0, 1, 2, 3]),
        LutCell::new(3, vec![2, 3], 0, vec![0, 1], vec![0; 32]),
    ];
    let cascade = Cascade::from_cells(cells, 4, 2).expect("geometry is consistent");
    let cf = Cf::from_truth_table(&TruthTable::paper_table1());
    let report = lint_rail_bounds(&cascade, &cf, "corpus.v");
    assert!(report.has(NL008_RAIL_WIDTH), "{report}");
}

#[test]
fn nl009_unknown_bus() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(&text, "assign y[0] = data0[0];", "assign y[0] = bogus[0];");
    let parsed = parse_verilog(&text).expect("still parses");
    let (_, report) = netlist_from_verilog(&parsed, "corpus.v");
    assert!(report.has(NL009_STRUCTURE), "{report}");
}

#[test]
fn tv001_truncated_artifact_fails_to_parse() {
    let (text, _, _) = table1_artifact();
    let cut = text.len() / 2;
    let e = parse_verilog(&text[..cut]).expect_err("truncation must not parse");
    // Line 0 marks end-of-input errors; anything else must point into the
    // truncated text.
    assert!(
        e.line <= text[..cut].lines().count(),
        "{}: {}",
        e.line,
        e.message
    );
}

#[test]
fn tv002_reformatted_artifact_is_detected_by_reemission() {
    // Semantics-preserving formatting drift: the netlist is unchanged, so
    // the rebuilt cascade re-emits the *canonical* text — catching that
    // the artifact on disk is not byte-identical to what bddcf writes.
    let (text, cascade, _) = table1_artifact();
    let drifted = corrupt(&text, "\nendmodule", "\n\nendmodule");
    let parsed = parse_verilog(&drifted).expect("formatting drift still parses");
    let (net, report) = netlist_from_verilog(&parsed, "corpus.v");
    assert!(report.is_clean(), "{report}");
    let rebuilt = netlist_to_cascade(&net, "corpus.v").expect("topology unchanged");
    let reemitted = cascade_to_verilog(&rebuilt, "m").expect("valid module name");
    assert_eq!(reemitted, text, "re-emission restores the canonical bytes");
    assert_ne!(reemitted, drifted, "so the drifted artifact is caught");
    assert!(
        bddcf_check::cascade_structural_diff(&cascade, &rebuilt).is_none(),
        "the drift is formatting-only"
    );
}

#[test]
fn tv003_output_wired_to_input() {
    let (text, _, _) = table1_artifact();
    let text = corrupt(&text, "assign y[0] = data0[0];", "assign y[0] = x[0];");
    let (net, _) = lint(&text);
    let report = netlist_to_cascade(&net, "corpus.v").expect_err("not a cascade");
    assert!(report.has(TV003_RECONSTRUCTION), "{report}");
}

#[test]
fn tv004_flipped_care_word_breaks_refinement() {
    // Table 1 row x1x2x3x4 = 0010 is a care row specifying y = 00; it is
    // ROM address 4 (inputs are the low address bits, LSB-first). Flipping
    // its word to 01 contradicts χ, which the symbolic proof must catch.
    let (text, _, mut cf) = table1_artifact();
    let text = corrupt(&text, "4'd4: data0 = 2'd0;", "4'd4: data0 = 2'd1;");
    let (net, structural) = lint(&text);
    assert!(structural.is_clean(), "the corruption is purely semantic");
    let report = check_netlist_refinement(&net, &mut cf, "corpus.v");
    assert!(report.has(TV004_REFINEMENT), "{report}");
}
