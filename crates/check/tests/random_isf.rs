//! Property tests: every reduction path of the paper, applied to random
//! incompletely specified functions, must satisfy the refinement oracle
//! (`χ' ⇒ χ`, width recount) and the `BDD_for_CF` lints (Definition 2.4
//! ordering, ON/OFF/DC partition, validity).

use bddcf_check::{check_cf, check_manager, check_refinement, naive_width_profile};
use bddcf_core::{Alg33Options, Cf};
use bddcf_logic::{Ternary, TruthTable};
use proptest::prelude::*;
use proptest::TestCaseError;

const NUM_INPUTS: usize = 4;
const NUM_OUTPUTS: usize = 2;

/// Strategy: a random 4-input 2-output ISF as a vector of ternary digits.
fn arb_table() -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(0u8..3, (1 << NUM_INPUTS) * NUM_OUTPUTS).prop_map(|digits| {
        let mut t = TruthTable::new(NUM_INPUTS, NUM_OUTPUTS);
        for r in 0..1 << NUM_INPUTS {
            for j in 0..NUM_OUTPUTS {
                let v = match digits[r * NUM_OUTPUTS + j] {
                    0 => Ternary::Zero,
                    1 => Ternary::One,
                    _ => Ternary::DontCare,
                };
                t.set(r, j, v);
            }
        }
        t
    })
}

/// All layers that apply to a reduced `Cf` at once.
fn assert_reduced_cf_is_sound(cf: &mut Cf) -> Result<(), TestCaseError> {
    let manager_report = check_manager(cf.manager());
    prop_assert!(manager_report.is_clean(), "{manager_report}");
    let cf_report = check_cf(cf);
    prop_assert!(cf_report.is_clean(), "{cf_report}");
    let refinement_report = check_refinement(cf);
    prop_assert!(refinement_report.is_clean(), "{refinement_report}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn alg31_output_passes_refinement_oracle(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg31();
        assert_reduced_cf_is_sound(&mut cf)?;
    }

    #[test]
    fn alg33_output_passes_refinement_oracle(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg33_default();
        assert_reduced_cf_is_sound(&mut cf)?;
    }

    #[test]
    fn support_reduction_passes_refinement_oracle(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_support_variables();
        assert_reduced_cf_is_sound(&mut cf)?;
    }

    #[test]
    fn fixpoint_driver_passes_refinement_oracle(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_to_fixpoint(&Alg33Options::default(), 4);
        assert_reduced_cf_is_sound(&mut cf)?;
    }

    #[test]
    fn width_recount_matches_incremental_profile(table in arb_table()) {
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg33_default();
        let reported = cf.width_profile().cuts().to_vec();
        let recount = naive_width_profile(cf.manager(), &[cf.root()]);
        prop_assert_eq!(reported, recount);
    }
}
