//! Deterministic, seeded fault injection across the governed pipeline.
//!
//! The robustness claim of the governed entry points
//! ([`Cf::try_from_isf`], [`Cf::reduce_to_fixpoint_governed`]
//! (bddcf_core::Cf::reduce_to_fixpoint_governed),
//! [`synthesize_governed`]) is threefold: under *any* budget exhaustion or
//! cancellation, (a) nothing panics, (b) the manager stays structurally
//! sound, and (c) the surviving χ is still a refinement of the original
//! specification — degraded means *wider cascades*, never *wrong ones*.
//! This module turns that claim into an executable experiment.
//!
//! [`run_injection`] first runs the governed pipeline once without limits
//! to *calibrate* the fault space — the total number of charged operation
//! steps and the arena high-water mark. It then replays the pipeline from
//! scratch for each of [`InjectionOptions::points`] fault points, drawing
//! the fault deterministically from a seeded RNG:
//!
//! * **node quota** in `[2, high-water]` — exercises the GC-retry /
//!   pair-merge-fallback / skip ladder;
//! * **step quota** in `[1, total steps]` — exercises terminal-cause early
//!   exit at every recursion boundary the pipeline ever reaches;
//! * **cancel-at-step** in `[1, total steps]` — the deterministic stand-in
//!   for a user pressing Ctrl-C at an arbitrary moment.
//!
//! After every fault the full analysis stack runs on whatever survived:
//! [`check_manager`], [`check_cf`], [`check_refinement`], and — when a
//! cascade was synthesized — [`check_cascade`]. A fault that aborts
//! construction itself must surface as a typed [`BudgetError`], which the
//! harness counts as a *clean error* rather than a failure.

use crate::{check_cascade, check_cf, check_manager, check_refinement, CheckReport};
use bddcf_bdd::{Budget, CancelToken, Error as BudgetError};
use bddcf_cascade::{synthesize_governed, Cascade, CascadeOptions};
use bddcf_core::degrade::DegradationReport;
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, Benchmark};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Knobs for [`run_injection`].
#[derive(Clone, Debug)]
pub struct InjectionOptions {
    /// RNG seed; equal seeds replay the identical fault schedule.
    pub seed: u64,
    /// Number of fault points to inject.
    pub points: usize,
    /// Iteration cap for the reduction fixpoint.
    pub max_iterations: usize,
    /// Algorithm 3.3 tuning.
    pub alg33: Alg33Options,
    /// Cell constraints for cascade synthesis.
    pub cascade: CascadeOptions,
    /// Random input samples for the cascade semantic lints.
    pub samples: u64,
}

impl Default for InjectionOptions {
    fn default() -> Self {
        InjectionOptions {
            seed: 0xb0d0_cf5e,
            points: 100,
            max_iterations: 4,
            alg33: Alg33Options::default(),
            cascade: CascadeOptions::default(),
            samples: 32,
        }
    }
}

/// One injected fault, drawn from the calibrated fault space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Arena node quota (total slots, terminals included).
    NodeQuota(usize),
    /// Operation-step budget.
    StepQuota(u64),
    /// Deterministic cancellation once the step counter reaches the value.
    CancelAtStep(u64),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::NodeQuota(q) => write!(f, "node-quota={q}"),
            FaultKind::StepQuota(s) => write!(f, "step-quota={s}"),
            FaultKind::CancelAtStep(s) => write!(f, "cancel-at-step={s}"),
        }
    }
}

/// How the pipeline weathered one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultResult {
    /// Construction itself was aborted by a typed budget error — there is
    /// no χ to check, and none was left half-built.
    CleanError(BudgetError),
    /// The pipeline completed with a non-empty [`DegradationReport`]: some
    /// reduction or synthesis step was downgraded or skipped.
    Degraded {
        /// Number of recorded downgrade events.
        events: usize,
        /// Whether a cascade was still synthesized.
        synthesized: bool,
    },
    /// The fault budget was never exhausted; the run matched an unbudgeted
    /// one.
    Unaffected {
        /// Whether a cascade was synthesized.
        synthesized: bool,
    },
}

/// One fault point's record: what was injected and what happened.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// The injected fault.
    pub kind: FaultKind,
    /// How the pipeline responded.
    pub result: FaultResult,
}

/// Everything [`run_injection`] learned about one benchmark.
#[derive(Debug)]
pub struct InjectionOutcome {
    /// The benchmark's display name.
    pub label: String,
    /// Charged operation steps of the unbudgeted calibration run.
    pub calibration_steps: u64,
    /// Arena high-water mark of the calibration run.
    pub calibration_arena: usize,
    /// Per-fault records, in injection order.
    pub faults: Vec<FaultOutcome>,
    /// All invariant findings across every fault (empty = the governed
    /// pipeline is panic-free *and* sound on this benchmark).
    pub report: CheckReport,
}

impl InjectionOutcome {
    /// Faults that cleanly aborted construction with a typed error.
    pub fn clean_errors(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.result, FaultResult::CleanError(_)))
            .count()
    }

    /// Faults the pipeline absorbed by degrading.
    pub fn degraded(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.result, FaultResult::Degraded { .. }))
            .count()
    }

    /// Faults whose budget was never exhausted.
    pub fn unaffected(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.result, FaultResult::Unaffected { .. }))
            .count()
    }

    /// True when no invariant violation survived any fault.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} fault(s) injected — {} clean error(s), {} degraded, \
             {} unaffected; {}",
            self.label,
            self.faults.len(),
            self.clean_errors(),
            self.degraded(),
            self.unaffected(),
            if self.is_clean() {
                "no invariant violations".to_owned()
            } else {
                format!("{} violation(s)", self.report.findings().len())
            }
        )
    }
}

/// Runs the governed pipeline end to end under `budget`: build the ISF,
/// construct χ fallibly, reduce to a fixpoint with degradation, and attempt
/// cascade synthesis with degradation. An `Err` can only come from
/// construction — everything after it degrades instead of failing.
fn governed_run(
    benchmark: &dyn Benchmark,
    budget: Budget,
    options: &InjectionOptions,
    degradations: &mut DegradationReport,
) -> Result<(Cf, Option<Cascade>), BudgetError> {
    let (mut mgr, layout, isf) = build_isf_pieces(benchmark);
    mgr.set_budget(budget); // resets the step counter: faults are relative
    let mut cf = Cf::try_from_isf(mgr, layout, isf)?;
    cf.reduce_to_fixpoint_governed(&options.alg33, options.max_iterations, degradations);
    // Synthesis capacity errors (cell constraints) are not robustness
    // failures; budget errors here are already recorded in `degradations`
    // or terminal (the fault fired so late that only synthesis saw it).
    let cascade = synthesize_governed(&mut cf, &options.cascade, degradations).ok();
    Ok((cf, cascade))
}

/// Injects [`InjectionOptions::points`] deterministic faults into the
/// governed pipeline for `benchmark` and audits every survivor with the
/// full analysis stack. See the [module docs](self) for the experiment
/// design.
///
/// # Panics
///
/// Panics only if the *calibration* run (unlimited budget) fails to build
/// χ — that is a benchmark bug, not a robustness finding.
pub fn run_injection(benchmark: &dyn Benchmark, options: &InjectionOptions) -> InjectionOutcome {
    // Calibration: one unbudgeted governed run to size the fault space.
    let (calibration_steps, calibration_arena) = {
        let mut degradations = DegradationReport::new();
        let (mut mgr, layout, isf) = build_isf_pieces(benchmark);
        let built = mgr.arena_len();
        mgr.set_budget(Budget::unlimited()); // resets the step counter
        let mut cf = Cf::try_from_isf(mgr, layout, isf)
            .expect("invariant: an unlimited budget cannot be exhausted");
        cf.reduce_to_fixpoint_governed(&options.alg33, options.max_iterations, &mut degradations);
        let mut arena = built.max(cf.manager().arena_len());
        let _ = synthesize_governed(&mut cf, &options.cascade, &mut degradations);
        arena = arena.max(cf.manager().arena_len());
        debug_assert!(
            degradations.is_clean(),
            "unbudgeted calibration degraded:\n{}",
            degradations.render()
        );
        (cf.manager().steps(), arena)
    };

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut report = CheckReport::new();
    let mut faults = Vec::with_capacity(options.points);
    for i in 0..options.points {
        // Round-robin over the kinds so every kind appears even for tiny
        // `points`; the parameter draw is what the seed randomizes.
        let kind = match i % 3 {
            0 => FaultKind::NodeQuota(rng.gen_range(2..=calibration_arena.max(3))),
            1 => FaultKind::StepQuota(rng.gen_range(1..=calibration_steps.max(2))),
            _ => FaultKind::CancelAtStep(rng.gen_range(1..=calibration_steps.max(2))),
        };
        let budget = match kind {
            FaultKind::NodeQuota(q) => Budget::default().with_node_limit(q),
            FaultKind::StepQuota(s) => Budget::default().with_step_limit(s),
            FaultKind::CancelAtStep(s) => Budget::default()
                .with_cancel(CancelToken::new())
                .with_cancel_at_step(s),
        };

        let mut degradations = DegradationReport::new();
        let result = match governed_run(benchmark, budget, options, &mut degradations) {
            Err(cause) => FaultResult::CleanError(cause),
            Ok((mut cf, cascade)) => {
                // Lift the fault budget so the oracles themselves cannot
                // trip it, then audit everything that survived.
                let _ = cf.manager_mut().take_budget();
                let tag = format!("fault[{i}] {kind}");
                report.absorb(&tag, check_manager(cf.manager()));
                report.absorb(&tag, check_cf(&mut cf));
                report.absorb(&tag, check_refinement(&mut cf));
                if let Some(cascade) = &cascade {
                    report.absorb(&tag, check_cascade(cascade, &cf, options.samples));
                }
                if degradations.is_clean() {
                    FaultResult::Unaffected {
                        synthesized: cascade.is_some(),
                    }
                } else {
                    FaultResult::Degraded {
                        events: degradations.len() as usize,
                        synthesized: cascade.is_some(),
                    }
                }
            }
        };
        faults.push(FaultOutcome { kind, result });
    }

    InjectionOutcome {
        label: benchmark.name(),
        calibration_steps,
        calibration_arena,
        faults,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_funcs::RadixConverter;

    #[test]
    fn injection_is_deterministic_and_clean() {
        let options = InjectionOptions {
            points: 12,
            ..InjectionOptions::default()
        };
        let bench = RadixConverter::new(3, 2);
        let a = run_injection(&bench, &options);
        assert!(a.is_clean(), "{}", a.report);
        assert_eq!(a.faults.len(), 12);
        assert!(a.calibration_steps > 0);
        assert!(a.calibration_arena > 2);
        // Same seed → identical fault schedule and identical outcomes.
        let b = run_injection(&bench, &options);
        let kinds_a: Vec<_> = a.faults.iter().map(|f| f.kind).collect();
        let kinds_b: Vec<_> = b.faults.iter().map(|f| f.kind).collect();
        assert_eq!(kinds_a, kinds_b);
    }

    #[test]
    fn tight_faults_actually_fire() {
        // With quotas drawn from [2, high-water] and steps from
        // [1, total], a majority of the injected faults must actually
        // exhaust something — otherwise the harness is testing nothing.
        let options = InjectionOptions {
            points: 30,
            ..InjectionOptions::default()
        };
        let outcome = run_injection(&RadixConverter::new(3, 2), &options);
        assert!(outcome.is_clean(), "{}", outcome.report);
        let fired = outcome.clean_errors() + outcome.degraded();
        assert!(
            fired * 2 >= outcome.faults.len(),
            "only {fired}/{} faults fired",
            outcome.faults.len()
        );
    }

    #[test]
    fn different_seeds_draw_different_schedules() {
        let bench = RadixConverter::new(3, 2);
        let a = run_injection(
            &bench,
            &InjectionOptions {
                points: 9,
                seed: 1,
                ..InjectionOptions::default()
            },
        );
        let b = run_injection(
            &bench,
            &InjectionOptions {
                points: 9,
                seed: 2,
                ..InjectionOptions::default()
            },
        );
        assert!(a.is_clean() && b.is_clean());
        let kinds_a: Vec<_> = a.faults.iter().map(|f| f.kind).collect();
        let kinds_b: Vec<_> = b.faults.iter().map(|f| f.kind).collect();
        assert_ne!(kinds_a, kinds_b);
    }
}
