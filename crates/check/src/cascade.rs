//! Layer 4: LUT-cascade lints.
//!
//! Structural: walking the cells head to tail, each cell boundary
//! corresponds to a cut of the `BDD_for_CF` the cascade was extracted from
//! (a cell spanning levels `[s, e)` consumes `num_inputs + num_outputs`
//! variables). At each boundary the rail bundle must carry exactly
//! `⌈log₂ W⌉` wires, where `W` is the number of distinct non-zero columns
//! at that cut — Theorem 3.1. The column count is recomputed here from the
//! BDD, independently of the synthesizer's cached values.
//!
//! Semantic: the cell tables, chained through the rails, must agree with
//! the prefer-0 completion of χ ([`Cf::eval_completed`]) on every sampled
//! input, and the full output word must be admitted by the specification
//! oracle.

use crate::{CheckReport, Layer};
use bddcf_cascade::Cascade;
use bddcf_core::Cf;
use bddcf_decomp::bdd_decomp::rails_for;
use bddcf_logic::MultiOracle;
use std::collections::HashSet;

/// Checks one cascade against the (reduced) `Cf` it was synthesized from:
/// Theorem-3.1 rail counts at every cell boundary and sampled agreement
/// with the prefer-0 completion of χ.
pub fn check_cascade(cascade: &Cascade, cf: &Cf, samples: u64) -> CheckReport {
    let mut report = CheckReport::new();
    rail_counts(cascade, cf, &mut report);
    sampled_agreement(cascade, cf, samples, &mut report);
    report
}

/// Checks a cascade's sampled behaviour directly against a specification
/// oracle: on every sampled input, the word the cascade computes must be
/// admitted (specified rows must match exactly; don't-care rows admit
/// anything).
///
/// The oracle must have the all-or-nothing don't-care structure of the
/// paper's benchmark generators (a row is either fully specified or fully
/// don't care). `TruthTable`'s pointwise oracle resolves partial don't
/// cares to 0 and would report false positives here — use
/// [`check_cascade`] against the `Cf` for per-output don't-care handling.
pub fn check_cascade_against_oracle(
    cascade: &Cascade,
    oracle: &dyn MultiOracle,
    samples: u64,
) -> CheckReport {
    let mut report = CheckReport::new();
    let n = cascade.num_inputs();
    assert_eq!(n, oracle.num_inputs(), "oracle arity mismatch");
    let mut rng = SplitMix64::new(0x5eed_cafe);
    for _ in 0..samples {
        let input = random_input(&mut rng, n);
        let word = cascade.eval(&input);
        if !oracle.respond(&input).admits(word, oracle.num_outputs()) {
            report.push(
                Layer::Cascade,
                format!(
                    "cascade output {word:#b} is rejected by the specification \
                     oracle on input {input:?}"
                ),
            );
            break; // one counterexample is enough
        }
    }
    report
}

/// Sampled check of a partitioned realization against the specification
/// oracle: the reassembled full output word must be admitted on every
/// sampled input.
pub fn check_multi_cascade_against_oracle(
    multi: &bddcf_cascade::MultiCascade,
    oracle: &dyn MultiOracle,
    samples: u64,
) -> CheckReport {
    let mut report = CheckReport::new();
    let n = oracle.num_inputs();
    let mut rng = SplitMix64::new(0x0dd_ba11);
    for _ in 0..samples {
        let input = random_input(&mut rng, n);
        let word = multi.eval(&input);
        if !oracle.respond(&input).admits(word, oracle.num_outputs()) {
            report.push(
                Layer::Cascade,
                format!(
                    "partitioned cascade output {word:#b} is rejected by the \
                     specification oracle on input {input:?}"
                ),
            );
            break; // one counterexample is enough
        }
    }
    report
}

/// Theorem 3.1 at every cell boundary: rails = `⌈log₂ W⌉`.
fn rail_counts(cascade: &Cascade, cf: &Cf, report: &mut CheckReport) {
    let t = cf.layout().num_vars();
    let mut cut = 0usize;
    for (i, cell) in cascade.cells().iter().enumerate() {
        let width = columns_below(cf, cut as u32).max(1);
        let expected = rails_for(width);
        if cell.rails_in() != expected {
            report.push(
                Layer::Cascade,
                format!(
                    "cell {i} has {} incoming rails but the BDD_for_CF has \
                     {width} columns at cut {cut} (Theorem 3.1 wants {expected})",
                    cell.rails_in()
                ),
            );
        }
        // A cell spanning levels [s, e) consumes exactly the primary
        // inputs/outputs placed in that range; its rail bits are not
        // variable levels (num_inputs()/num_outputs() include rails).
        cut += cell.input_ids().len() + cell.output_ids().len();
    }
    if cut != t {
        report.push(
            Layer::Cascade,
            format!("cells cover {cut} variable levels but the layout has {t}"),
        );
    }
    if let Some(last) = cascade.cells().last() {
        if last.rails_out() != 0 {
            report.push(
                Layer::Cascade,
                format!("last cell leaves {} dangling rails", last.rails_out()),
            );
        }
    }
}

/// Distinct non-zero nodes hanging below `cut` — the rail alphabet,
/// recomputed from the BDD independently of the synthesizer. Shared with
/// the artifact lints (`netlist::lint_rail_bounds`).
pub(crate) fn columns_below(cf: &Cf, cut: u32) -> usize {
    let mgr = cf.manager();
    let root = cf.root();
    let mut set: HashSet<bddcf_bdd::NodeId> = HashSet::new();
    if root != bddcf_bdd::FALSE && mgr.level_of_node(root) >= cut {
        set.insert(root);
    }
    for n in mgr.descendants(&[root]) {
        if mgr.level_of_node(n) >= cut {
            continue; // edges out of n start at or below the cut
        }
        for child in [mgr.lo(n), mgr.hi(n)] {
            if child != bddcf_bdd::FALSE && mgr.level_of_node(child) >= cut {
                set.insert(child);
            }
        }
    }
    set.len()
}

/// The hardware model must compute exactly the BDD walk's completion.
fn sampled_agreement(cascade: &Cascade, cf: &Cf, samples: u64, report: &mut CheckReport) {
    let n = cascade.num_inputs();
    let mut rng = SplitMix64::new(0xb0a7_1e55);
    for _ in 0..samples {
        let input = random_input(&mut rng, n);
        let hardware = cascade.eval(&input);
        let software = cf.eval_completed(&input);
        if hardware != software {
            report.push(
                Layer::Cascade,
                format!(
                    "cell tables disagree with χ's completion on input {input:?}: \
                     cascade {hardware:#b}, BDD walk {software:#b}"
                ),
            );
            break; // one counterexample is enough
        }
    }
}

/// Minimal deterministic generator for input sampling (kept local so this
/// crate adds no runtime dependencies).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_input(rng: &mut SplitMix64, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.next() & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_cascade::{synthesize, CascadeOptions};
    use bddcf_logic::TruthTable;

    fn synthesized_paper_example() -> (Cascade, Cf, TruthTable) {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg33_default();
        let cascade = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .expect("paper example fits one cascade");
        (cascade, cf, table)
    }

    #[test]
    fn paper_cascade_is_clean() {
        let (cascade, cf, table) = synthesized_paper_example();
        let report = check_cascade(&cascade, &cf, 64);
        assert!(report.is_clean(), "{report}");
        // Per-output admission against the (partially specified) table.
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            let word = cascade.eval(&input);
            for j in 0..2 {
                assert!(
                    table.get(r, j).admits(word >> j & 1 == 1),
                    "row {r} output {j}"
                );
            }
        }
    }

    #[test]
    fn fully_specified_oracle_check_is_clean() {
        // On a completely specified function every completion is the
        // function itself, so the all-or-nothing oracle check applies.
        let table = TruthTable::paper_table1().completed(false);
        let mut cf = Cf::from_truth_table(&table);
        let cascade = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .expect("completed paper example fits one cascade");
        let report = check_cascade_against_oracle(&cascade, &table, 64);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn mismatched_cf_is_flagged() {
        // Check the cascade against a *different* function: the sampled
        // semantic layer must notice.
        let (cascade, _, _) = synthesized_paper_example();
        let other = TruthTable::paper_table1().completed(true);
        let other_cf = Cf::from_truth_table(&other);
        let report = check_cascade(&cascade, &other_cf, 256);
        assert!(
            !report.is_clean(),
            "cascade for the DC=1 completion must differ somewhere"
        );
    }
}
