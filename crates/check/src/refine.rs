//! Layer 3: the refinement oracle.
//!
//! Every reduction of the paper (Algorithm 3.1 merges, Algorithm 3.3
//! clique-cover merges, support-variable removal) is only allowed to
//! *complete don't cares*: the reduced χ' must admit a subset of the
//! input-output pairs the original χ admitted, i.e. `χ' ⇒ χ` as Boolean
//! functions. [`check_refinement`] re-derives the original χ from the
//! preserved ISF record ([`Cf::original_chi`]) and verifies the implication
//! by BDD reasoning — exact, not sampled.
//!
//! It also recounts the Definition-3.5 width profile with an independent
//! per-cut algorithm ([`naive_width_profile`]) and compares it against the
//! incremental difference-array implementation in `bddcf-bdd`, so a bug in
//! either is caught by the other.

use crate::{CheckReport, Layer};
use bddcf_bdd::{BddManager, NodeId, FALSE, TRUE};
use bddcf_core::Cf;
use std::collections::HashSet;

/// Checks that `cf`'s current χ refines the original specification and
/// that its width profile matches an independent recount.
pub fn check_refinement(cf: &mut Cf) -> CheckReport {
    let mut report = CheckReport::new();

    // χ_current ⇒ χ_original, by exact BDD implication.
    let original = cf.original_chi();
    let root = cf.root();
    if cf.manager_mut().implies(root, original) != TRUE {
        report.push(
            Layer::Refinement,
            "reduction is not a refinement: current χ admits an input-output \
             pair the original specification forbids (χ' ⇒ χ fails)",
        );
    }

    // Width profile: incremental implementation vs naive recount.
    let reported = cf.width_profile();
    let recount = naive_width_profile(cf.manager(), &[cf.root()]);
    if reported.cuts() != recount.as_slice() {
        report.push(
            Layer::Refinement,
            format!(
                "width profile mismatch: incremental {:?} vs naive recount {:?}",
                reported.cuts(),
                recount
            ),
        );
    }

    report
}

/// Definition 3.5 computed the slow, obviously-correct way: for every cut
/// `c`, collect the distinct non-zero nodes that hang below `c` (targets of
/// an edge from above `c` — external root pointers count as edges from
/// above every cut — whose level is at or below `c`), clamping empty cuts
/// to the defined minimum 1. Quadratic in the worst case; meant to
/// cross-check [`BddManager::width_profile`], not to replace it.
pub fn naive_width_profile(mgr: &BddManager, roots: &[NodeId]) -> Vec<usize> {
    let t = mgr.num_vars();
    // Every edge of the shared graph, as (source level, target). Root
    // pointers come from "level -1", above every cut.
    let mut edges: Vec<(i64, NodeId)> = Vec::new();
    for &root in roots {
        if root != FALSE {
            edges.push((-1, root));
        }
    }
    for n in mgr.descendants(roots) {
        let level = i64::from(mgr.level_of_node(n));
        for child in [mgr.lo(n), mgr.hi(n)] {
            if child != FALSE {
                edges.push((level, child));
            }
        }
    }
    (0..=t)
        .map(|cut| {
            let cut = cut as i64;
            let hanging: HashSet<NodeId> = edges
                .iter()
                .filter(|&&(src_level, target)| {
                    src_level < cut && i64::from(mgr.level_of_node(target)) >= cut
                })
                .map(|&(_, target)| target)
                .collect();
            hanging.len().max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_bdd::Var;
    use bddcf_core::Alg33Options;
    use bddcf_logic::TruthTable;

    #[test]
    fn naive_recount_matches_incremental_on_random_shapes() {
        let mut mgr = BddManager::new(6);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(2));
        let c = mgr.var(Var(5));
        let f = mgr.and(a, b);
        let g = mgr.xor(f, c);
        let h = mgr.or(g, a);
        for roots in [vec![g], vec![h], vec![g, h], vec![TRUE], vec![FALSE]] {
            let incremental = mgr.width_profile(&roots);
            assert_eq!(
                incremental.cuts(),
                naive_width_profile(&mgr, &roots).as_slice(),
                "roots {roots:?}"
            );
        }
    }

    #[test]
    fn reductions_pass_the_oracle() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        assert!(check_refinement(&mut cf).is_clean(), "identity refines");
        cf.reduce_alg31();
        let report = check_refinement(&mut cf);
        assert!(report.is_clean(), "{report}");
        cf.reduce_alg33(&Alg33Options::default());
        cf.reduce_support_variables();
        let report = check_refinement(&mut cf);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn widening_would_be_flagged() {
        // TRUE admits everything, which is *not* a refinement of the paper
        // example (it has OFF entries): the implication the oracle relies
        // on must reject it, while the untouched cf itself stays clean.
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let original = cf.original_chi();
        let ok = cf.manager_mut().implies(TRUE, original) == TRUE;
        assert!(!ok, "TRUE must not refine a specification with OFF rows");
        assert!(check_refinement(&mut cf).is_clean());
    }
}
