//! Phase-by-phase analysis of the full pipeline for one benchmark.
//!
//! [`check_benchmark`] drives the standard flow — build the ISF and χ,
//! reduce to a fixpoint, synthesize a partitioned cascade — and runs every
//! applicable layer at each phase boundary, collecting all findings into
//! one report. This is what the `bddcf check` CLI subcommand executes.

use crate::cascade::check_multi_cascade_against_oracle;
use crate::{
    check_cascade, check_cascade_ready, check_cf, check_manager, check_refinement, CheckReport,
    Layer,
};
use bddcf_cascade::{try_synthesize_partitioned, CascadeOptions};
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, Benchmark};

/// Knobs for [`check_benchmark`].
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Random input samples per cascade for the semantic lints.
    pub samples: u64,
    /// Iteration cap for the reduction fixpoint.
    pub max_iterations: usize,
    /// Algorithm 3.3 tuning.
    pub alg33: Alg33Options,
    /// Cell constraints for synthesis.
    pub cascade: CascadeOptions,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            samples: 128,
            max_iterations: 4,
            alg33: Alg33Options::default(),
            cascade: CascadeOptions::default(),
        }
    }
}

/// Outcome of [`check_benchmark`] for one registry function.
#[derive(Debug)]
pub struct BenchmarkCheck {
    /// The benchmark's display name.
    pub label: String,
    /// All findings across every phase (empty = the pipeline is sound
    /// on this function).
    pub report: CheckReport,
    /// Maximum χ width before and after the reduction fixpoint.
    pub max_width: (usize, usize),
    /// Cascades in the final partitioned realization (0 when synthesis
    /// failed).
    pub num_cascades: usize,
    /// Total LUT cells over all cascades.
    pub num_cells: usize,
}

/// Builds, reduces, and synthesizes `benchmark`, checking every layer at
/// each phase boundary:
///
/// * after **build**: manager integrity + CF lints on the fresh χ;
/// * after the reduction **fixpoint**: those two plus the refinement
///   oracle (`χ' ⇒ χ`, width recount);
/// * after **synthesis**: per-partition refinement and cascade lints
///   (Theorem-3.1 rails, sampled cell-table semantics), plus the sampled
///   full-word check against the benchmark's own oracle.
pub fn check_benchmark(benchmark: &dyn Benchmark, options: &CheckOptions) -> BenchmarkCheck {
    let mut report = CheckReport::new();
    let (mgr, layout, isf) = build_isf_pieces(benchmark);

    // Phase 1: construction.
    let mut cf = Cf::from_isf(mgr.clone(), layout.clone(), isf.clone());
    let width_before = cf.max_width();
    report.absorb("build", check_manager(cf.manager()));
    report.absorb("build", check_cf(&mut cf));

    // Phase 2: reduction fixpoint.
    cf.reduce_to_fixpoint(&options.alg33, options.max_iterations);
    let width_after = cf.max_width();
    report.absorb("fixpoint", check_manager(cf.manager()));
    report.absorb("fixpoint", check_cf(&mut cf));
    report.absorb("fixpoint", check_refinement(&mut cf));

    // Phase 3: partitioned synthesis (bi-partition like §5.1, splitting
    // further only where the cell constraints force it).
    let m = layout.num_outputs();
    #[allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
    let initial = if m <= 1 {
        vec![0..m]
    } else {
        vec![0..m.div_ceil(2), m.div_ceil(2)..m]
    };
    let alg33 = options.alg33.clone();
    let max_iterations = options.max_iterations;
    let (num_cascades, num_cells) =
        match try_synthesize_partitioned(&mgr, &layout, &isf, &initial, &options.cascade, |part| {
            part.reduce_to_fixpoint(&alg33, max_iterations);
        }) {
            Ok(multi) => {
                for (i, (cascade, part)) in multi.cascades.iter().zip(&multi.parts).enumerate() {
                    let mut part = part.clone();
                    report.absorb(&format!("synthesis[{i}]"), check_refinement(&mut part));
                    report.absorb(&format!("synthesis[{i}]"), check_cascade_ready(&mut part));
                    report.absorb(
                        &format!("synthesis[{i}]"),
                        check_cascade(cascade, &part, options.samples),
                    );
                }
                report.absorb(
                    "synthesis",
                    check_multi_cascade_against_oracle(&multi, benchmark, options.samples),
                );
                (multi.num_cascades(), multi.num_cells())
            }
            Err((range, err)) => {
                report.push(
                    Layer::Cascade,
                    format!(
                        "output {} cannot be synthesized under the cell \
                     constraints: {err}",
                        range.start
                    ),
                );
                (0, 0)
            }
        };

    BenchmarkCheck {
        label: benchmark.name(),
        report,
        max_width: (width_before, width_after),
        num_cascades,
        num_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_funcs::RadixConverter;

    #[test]
    fn small_converter_pipeline_is_sound() {
        let check = check_benchmark(&RadixConverter::new(3, 2), &CheckOptions::default());
        assert!(check.report.is_clean(), "{}", check.report);
        assert!(check.num_cascades >= 1);
        assert!(check.max_width.1 <= check.max_width.0);
    }
}
