//! Crash-recovery harness: kill the pipeline deterministically, resume it
//! from the latest checkpoint, and prove nothing was lost.
//!
//! The durability claim of the checkpoint subsystem
//! ([`bddcf_core::checkpoint`]) is that a run killed at *any* moment can be
//! continued from its latest checkpoint and end in exactly the state an
//! uninterrupted run reaches — not merely an equivalent one. This module
//! turns that claim into an executable experiment, reusing the calibration
//! idea of the [fault-injection harness](crate::inject):
//!
//! 1. **Calibrate**: run the checkpointed pipeline once, uninterrupted,
//!    recording the cascade text and the total number of charged operation
//!    steps.
//! 2. **Kill**: for each seeded kill point `k ∈ [1, steps]`, replay the
//!    pipeline with a deterministic `cancel_at_step(k)` budget in
//!    crash-simulation mode (the driver bails instantly, writing no further
//!    checkpoints — exactly what `kill -9` at that step would leave behind).
//! 3. **Resume**: restore from the latest checkpoint on disk (or rerun
//!    from scratch when the crash predates the first checkpoint), finish
//!    with no budget, and synthesize the cascade.
//! 4. **Assert** (a) the refinement oracle [`check_refinement`] holds on
//!    the resumed state, and (b) the resumed cascade is **byte-identical**
//!    to the uninterrupted run's.
//!
//! Byte-identity works because every checkpoint boundary garbage-collects
//! before serializing: the resumed arena equals the uninterrupted run's
//! arena at that boundary node for node, and everything downstream
//! (column collection, clique covers, rail codes, cell extraction) is a
//! deterministic function of the arena.

use crate::{check_refinement, CheckReport, Layer};
use bddcf_bdd::{Budget, CancelToken, Error as BudgetError};
use bddcf_cascade::{synthesize_governed, Cascade, CascadeOptions, SynthesisError};
use bddcf_core::checkpoint::{latest_checkpoint, load_checkpoint, CheckpointError, Checkpointer};
use bddcf_core::{Alg33Options, Cf, DegradationReport};
use bddcf_funcs::{build_isf_pieces, Benchmark};
use bddcf_io::write_cascade;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

/// Knobs for [`run_crashtest`].
#[derive(Clone, Debug)]
pub struct CrashTestOptions {
    /// RNG seed; equal seeds replay the identical kill schedule.
    pub seed: u64,
    /// Number of seeded kill points per benchmark.
    pub kill_points: usize,
    /// Iteration cap for the reduction fixpoint.
    pub max_iterations: usize,
    /// Algorithm 3.3 tuning.
    pub alg33: Alg33Options,
    /// Cell constraints for cascade synthesis.
    pub cascade: CascadeOptions,
    /// Directory for checkpoint trees (one subdirectory per benchmark,
    /// wiped at the start of each benchmark's run).
    pub dir: PathBuf,
}

impl Default for CrashTestOptions {
    fn default() -> Self {
        CrashTestOptions {
            seed: 0xc4a5_47e5,
            kill_points: 12,
            max_iterations: 4,
            alg33: Alg33Options::default(),
            cascade: CascadeOptions::default(),
            dir: std::env::temp_dir().join("bddcf-crashtest"),
        }
    }
}

/// Where one kill landed and how recovery went.
#[derive(Clone, Debug)]
pub struct KillOutcome {
    /// The step count the deterministic kill fired at.
    pub step: u64,
    /// Which phase the kill interrupted.
    pub crashed_in: &'static str,
    /// The checkpoint the run was resumed from; `None` when the crash
    /// predates the first checkpoint (recovery reruns from scratch).
    pub resumed_from: Option<PathBuf>,
    /// Whether the recovered cascade is byte-identical to the
    /// uninterrupted run's.
    pub identical: bool,
}

/// Everything [`run_crashtest`] learned about one benchmark.
#[derive(Debug)]
pub struct CrashTestOutcome {
    /// The benchmark's display name.
    pub label: String,
    /// Charged operation steps of the uninterrupted calibration run — the
    /// kill-point space.
    pub calibration_steps: u64,
    /// Per-kill records, in schedule order.
    pub kills: Vec<KillOutcome>,
    /// Refinement-oracle findings plus a finding per non-identical
    /// recovery (empty = full crash-safety on this benchmark).
    pub report: CheckReport,
}

impl CrashTestOutcome {
    /// True when every recovery was byte-identical and the refinement
    /// oracle held on every resumed state.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.kills.iter().all(|k| k.identical)
    }

    /// Kills that were recovered from an on-disk checkpoint (rather than a
    /// from-scratch rerun).
    pub fn resumed_from_checkpoint(&self) -> usize {
        self.kills
            .iter()
            .filter(|k| k.resumed_from.is_some())
            .count()
    }

    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} kill(s) over {} steps — {} resumed from checkpoints, \
             {} rerun from scratch; {}",
            self.label,
            self.kills.len(),
            self.calibration_steps,
            self.resumed_from_checkpoint(),
            self.kills.len() - self.resumed_from_checkpoint(),
            if self.is_clean() {
                "all recoveries byte-identical".to_owned()
            } else {
                format!(
                    "{} non-identical recover(ies), {} finding(s)",
                    self.kills.iter().filter(|k| !k.identical).count(),
                    self.report.findings().len()
                )
            }
        )
    }
}

/// The cascade outcome as comparable text: the cascade's canonical text
/// format on success, a deterministic marker line on synthesis failure
/// (which a faithful recovery must reproduce too).
fn render_outcome(outcome: Result<Cascade, SynthesisError>) -> String {
    match outcome {
        Ok(cascade) => write_cascade(&cascade),
        Err(e) => format!("<no cascade: {e}>\n"),
    }
}

/// One uninterrupted checkpointed run: build, reduce (checkpointing into
/// `dir`), synthesize. Returns the finished state, its report, and the
/// rendered cascade.
fn full_run(
    benchmark: &dyn Benchmark,
    options: &CrashTestOptions,
    dir: &Path,
) -> Result<(Cf, DegradationReport, String), CheckpointError> {
    let (mut mgr, layout, isf) = build_isf_pieces(benchmark);
    mgr.set_budget(Budget::unlimited()); // reset the step clock for calibration
    let mut cf = Cf::try_from_isf(mgr, layout, isf)
        .map_err(|e| CheckpointError::Invalid(format!("unlimited construction failed: {e}")))?;
    let mut report = DegradationReport::new();
    let mut ck = Checkpointer::new(dir)?;
    cf.reduce_to_fixpoint_checkpointed(
        &options.alg33,
        options.max_iterations,
        &mut report,
        &mut ck,
        false,
    )?;
    let outcome = synthesize_governed(&mut cf, &options.cascade, &mut report);
    let rendered = render_outcome(outcome);
    Ok((cf, report, rendered))
}

/// Deterministic kill budget: behave exactly like `kill -9` at charged
/// step `step` (reproducible, unlike signals or wall clocks).
fn kill_budget(step: u64) -> Budget {
    Budget::default()
        .with_cancel(CancelToken::new())
        .with_cancel_at_step(step)
}

/// Kills the pipeline at `step`, recovers, and compares against
/// `baseline`. Findings (refinement violations, non-identical recovery)
/// go into `check`.
fn run_one_kill(
    benchmark: &dyn Benchmark,
    options: &CrashTestOptions,
    kill_dir: &Path,
    step: u64,
    baseline: &str,
    check: &mut CheckReport,
) -> Result<KillOutcome, CheckpointError> {
    // Phase 1: the crashing run. In crash-simulation mode the driver
    // returns `None` the moment the kill fires, leaving only the
    // checkpoints an actual dead process would have left.
    let (mut mgr, layout, isf) = build_isf_pieces(benchmark);
    mgr.set_budget(kill_budget(step));
    let mut crashed_in = "construction";
    let completed: Option<String> = match Cf::try_from_isf(mgr, layout, isf) {
        Err(_) => None, // died before the first checkpoint could exist
        Ok(mut cf) => {
            let mut rep = DegradationReport::new();
            let mut ck = Checkpointer::new(kill_dir)?;
            crashed_in = "reduction";
            match cf.reduce_to_fixpoint_checkpointed(
                &options.alg33,
                options.max_iterations,
                &mut rep,
                &mut ck,
                true,
            )? {
                None => None,
                Some(_) => {
                    crashed_in = "synthesis";
                    match synthesize_governed(&mut cf, &options.cascade, &mut rep) {
                        Err(SynthesisError::Budget(BudgetError::Cancelled)) => None,
                        outcome => {
                            // The kill point lay beyond this run's total
                            // work; it completed like an uninterrupted run.
                            crashed_in = "completed";
                            Some(render_outcome(outcome))
                        }
                    }
                }
            }
        }
    };

    let tag = format!("kill@{step}");
    let (recovered, resumed_from) = match completed {
        Some(rendered) => (rendered, None),
        None => match latest_checkpoint(kill_dir)? {
            None => {
                // Crash predates the first checkpoint: recovery is a rerun
                // from scratch, which must still match the baseline.
                let (mut cf, _rep, rendered) = full_run(benchmark, options, kill_dir)?;
                check.absorb(&tag, check_refinement(&mut cf));
                (rendered, None)
            }
            Some(path) => {
                let loaded = load_checkpoint(&path)?;
                let mut ck = Checkpointer::new(kill_dir)?; // continues the sequence
                let (mut cf, mut rep, _stats) =
                    loaded.resume(&options.alg33, options.max_iterations, &mut ck, false)?;
                let outcome = synthesize_governed(&mut cf, &options.cascade, &mut rep);
                check.absorb(&tag, check_refinement(&mut cf));
                (render_outcome(outcome), Some(path))
            }
        },
    };

    let identical = recovered == *baseline;
    if !identical {
        check.absorb(&tag, {
            let mut r = CheckReport::new();
            r.push(
                Layer::Cascade,
                format!(
                    "recovered cascade differs from the uninterrupted run \
                     (killed during {crashed_in}, {} vs {} byte(s))",
                    recovered.len(),
                    baseline.len()
                ),
            );
            r
        });
    }
    Ok(KillOutcome {
        step,
        crashed_in,
        resumed_from,
        identical,
    })
}

/// Runs the crash-recovery experiment on one benchmark: calibrate, then
/// kill/resume/compare at [`CrashTestOptions::kill_points`] seeded steps.
pub fn run_crashtest(
    benchmark: &dyn Benchmark,
    options: &CrashTestOptions,
) -> Result<CrashTestOutcome, CheckpointError> {
    let label = benchmark.name();
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let bench_dir = options.dir.join(slug);
    let _ = fs::remove_dir_all(&bench_dir); // stale trees from previous runs

    let (mut baseline_cf, _baseline_report, baseline) =
        full_run(benchmark, options, &bench_dir.join("baseline"))?;
    let calibration_steps = baseline_cf.manager().steps();
    let mut report = CheckReport::new();
    report.absorb("baseline", check_refinement(&mut baseline_cf));

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut kills = Vec::with_capacity(options.kill_points);
    for i in 0..options.kill_points {
        let step = rng.gen_range(1..=calibration_steps.max(2));
        let kill_dir = bench_dir.join(format!("kill-{i:03}"));
        kills.push(run_one_kill(
            benchmark,
            options,
            &kill_dir,
            step,
            &baseline,
            &mut report,
        )?);
    }
    Ok(CrashTestOutcome {
        label,
        calibration_steps,
        kills,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quarantine::{run_quarantined, with_quiet_panics, PanicProbe};
    use bddcf_funcs::registry::small_benchmarks;

    fn test_options(tag: &str, kill_points: usize) -> CrashTestOptions {
        CrashTestOptions {
            kill_points,
            dir: std::env::temp_dir()
                .join(format!("bddcf-crashtest-test-{tag}-{}", std::process::id())),
            ..CrashTestOptions::default()
        }
    }

    #[test]
    fn every_seeded_kill_recovers_byte_identically_on_a_small_benchmark() {
        let entry = &small_benchmarks()[0]; // 3-5 RNS
        let options = test_options("rns", 6);
        let outcome = run_crashtest(entry.benchmark.as_ref(), &options).expect("harness runs");
        assert!(outcome.calibration_steps > 0);
        assert_eq!(outcome.kills.len(), 6);
        assert!(
            outcome.is_clean(),
            "crash recovery failed:\n{}\n{}",
            outcome.summary(),
            outcome.report
        );
        // At least one kill should land late enough to resume from a real
        // checkpoint rather than rerunning from scratch.
        assert!(
            outcome.resumed_from_checkpoint() > 0,
            "kill schedule never exercised checkpoint resume: {:?}",
            outcome.kills
        );
        let _ = fs::remove_dir_all(&options.dir);
    }

    #[test]
    fn panicking_benchmark_quarantines_without_aborting_the_batch() {
        let options = test_options("quarantine", 2);
        let mut completed = 0usize;
        let mut quarantined = Vec::new();
        with_quiet_panics(|| {
            // A healthy benchmark, the panic probe, then another healthy
            // one: the probe must not stop the third entry from running.
            let suite = small_benchmarks();
            let probe = PanicProbe;
            let entries: Vec<(&str, &dyn Benchmark)> = vec![
                (suite[1].label, suite[1].benchmark.as_ref()),
                ("panic probe", &probe),
                (suite[4].label, suite[4].benchmark.as_ref()),
            ];
            for (label, benchmark) in entries {
                match run_quarantined(label, || run_crashtest(benchmark, &options)) {
                    Ok(result) => {
                        let outcome = result.expect("harness runs");
                        assert!(outcome.is_clean(), "{}", outcome.report);
                        completed += 1;
                    }
                    Err(q) => quarantined.push(q),
                }
            }
        });
        assert_eq!(completed, 2, "both healthy benchmarks must finish");
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].payload.contains("quarantine probe"));
        let _ = fs::remove_dir_all(&options.dir);
    }
}
