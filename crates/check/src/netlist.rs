//! Layer 5, part 1: a bit-level netlist IR for emitted artifacts.
//!
//! `bddcf lint` validates the *artifacts* the pipeline writes (Verilog
//! modules, cascade text files), not the in-memory objects they came from.
//! Both artifact formats lower into the IR defined here — buses of named
//! bits, copy drivers, and combinational ROM cells — and every analysis
//! then runs on the IR:
//!
//! * **structural lints** ([`lint_netlist`]): multiply-driven and undriven
//!   bits, dead wires, combinational loops, `case` completeness and
//!   overlap, vacuous ROM address bits;
//! * **reconstruction** ([`netlist_to_cascade`]): rebuilding a
//!   [`Cascade`] from the wiring pattern, which powers the byte-faithful
//!   emit → parse → re-emit round-trip check and the Theorem-3.1 rail
//!   bound recount ([`lint_rail_bounds`]);
//! * **translation validation** ([`netlist_chi`],
//!   [`check_netlist_refinement`]): re-deriving the characteristic
//!   function χ_netlist of the artifact *symbolically* — no simulation —
//!   and proving `χ_netlist ⇒ χ_spec` with the PR 1 refinement oracle
//!   ([`Cf::original_chi`]).
//!
//! Findings carry a machine-readable catalog id (`NL…` for netlist
//! structure, `TV…` for translation validation) plus the artifact file
//! name and 1-based line, so CI can gate on them.

use bddcf_bdd::{BddManager, NodeId, FALSE, TRUE};
use bddcf_cascade::{Cascade, LutCell};
use bddcf_core::{Cf, CfLayout};
use bddcf_decomp::bdd_decomp::rails_for;
use bddcf_io::verilog_parse::{BitRef, Expr, PortDir, VerilogItem, VerilogModule};
use std::collections::HashMap;
use std::fmt;

/// NL001: a bit has more than one driver.
pub const NL001_MULTIPLE_DRIVERS: &str = "NL001";
/// NL002: a read (or output-port) bit has no driver.
pub const NL002_UNDRIVEN: &str = "NL002";
/// NL003: an internal bus is never read.
pub const NL003_UNUSED_WIRE: &str = "NL003";
/// NL004: the combinational logic contains a cycle.
pub const NL004_COMB_LOOP: &str = "NL004";
/// NL005: a ROM `case` does not enumerate its full address space.
pub const NL005_CASE_INCOMPLETE: &str = "NL005";
/// NL006: a ROM `case` matches the same address twice.
pub const NL006_CASE_OVERLAP: &str = "NL006";
/// NL007: a ROM address bit never affects the stored word.
pub const NL007_UNUSED_ADDRESS_BIT: &str = "NL007";
/// NL008: a rail bundle is wider/narrower than Theorem 3.1's `⌈log₂ W⌉`.
pub const NL008_RAIL_WIDTH: &str = "NL008";
/// NL009: a structural defect (unknown bus, width mismatch, bad index).
pub const NL009_STRUCTURE: &str = "NL009";
/// TV001: the artifact does not parse (or re-emission failed).
pub const TV001_PARSE: &str = "TV001";
/// TV002: emit → parse → re-emit is not byte-faithful.
pub const TV002_ROUNDTRIP: &str = "TV002";
/// TV003: the netlist does not reconstruct to an equivalent cascade.
pub const TV003_RECONSTRUCTION: &str = "TV003";
/// TV004: the reconstructed χ does not refine the specification χ.
pub const TV004_REFINEMENT: &str = "TV004";

/// One artifact-lint finding: catalog id + file + 1-based line (0 = the
/// whole artifact) + description. This is the machine-readable unit the
/// `bddcf lint` CLI prints one-per-line.
#[derive(Clone, Debug)]
pub struct LintFinding {
    /// Artifact (or synthetic stem) the finding is about.
    pub file: String,
    /// 1-based line within the artifact; 0 for whole-artifact findings.
    pub line: usize,
    /// Catalog id, e.g. [`NL001_MULTIPLE_DRIVERS`].
    pub id: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.id, self.message
        )
    }
}

/// A (possibly empty) list of [`LintFinding`]s.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    findings: Vec<LintFinding>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Records a finding.
    pub fn push(&mut self, file: &str, line: usize, id: &'static str, message: impl Into<String>) {
        self.findings.push(LintFinding {
            file: file.to_owned(),
            line,
            id,
            message: message.into(),
        });
    }

    /// Absorbs another report.
    pub fn extend(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
    }

    /// True when no finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// All findings, in discovery order.
    pub fn findings(&self) -> &[LintFinding] {
        &self.findings
    }

    /// True when some finding carries catalog id `id`.
    pub fn has(&self, id: &str) -> bool {
        self.findings.iter().any(|f| f.id == id)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(f, "{} finding(s)", self.findings.len())
    }
}

// ---------------------------------------------------------------------
// The IR
// ---------------------------------------------------------------------

/// What a bus is, from the artifact's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusKind {
    /// A module input port (driven by the environment).
    Input,
    /// A module output port (read by the environment).
    Output,
    /// An internal wire.
    Wire,
    /// An internal reg (ROM targets).
    Reg,
}

/// One named bus of `width` bits.
#[derive(Clone, Debug)]
pub struct Bus {
    /// Bus name as written in the artifact.
    pub name: String,
    /// Role of the bus.
    pub kind: BusKind,
    /// Width in bits.
    pub width: usize,
    /// 1-based declaration line (0 for synthetic netlists).
    pub line: usize,
}

/// One bit of one bus (`bus` indexes [`Netlist::buses`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NetBit {
    /// Index into [`Netlist::buses`].
    pub bus: usize,
    /// Bit position (LSB = 0).
    pub bit: usize,
}

/// What drives a bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// The bit copies another bit (wire initializer / `assign`).
    Copy {
        /// 1-based source line of the connection.
        line: usize,
        /// The copied bit.
        src: NetBit,
    },
    /// Bit `bit` of ROM `rom`'s data word.
    Rom {
        /// Index into [`Netlist::roms`].
        rom: usize,
        /// Word bit position.
        bit: usize,
    },
}

/// A combinational ROM: a full-word lookup of `target` by `addr`.
#[derive(Clone, Debug)]
pub struct NetRom {
    /// 1-based line of the ROM block (0 for synthetic netlists).
    pub line: usize,
    /// Bus index of the data word written by every arm.
    pub target: usize,
    /// Bus index of the address scrutinee.
    pub addr: usize,
    /// Explicit arms: `(line, address, word)` in source order.
    pub arms: Vec<(usize, u64, u64)>,
    /// Default word, when present.
    pub default: Option<(usize, u64)>,
}

/// A lowered artifact: buses, ROMs, and per-bit driver lists.
#[derive(Clone, Debug)]
pub struct Netlist {
    /// Module / artifact name.
    pub name: String,
    /// All buses.
    pub buses: Vec<Bus>,
    /// All ROM cells.
    pub roms: Vec<NetRom>,
    /// `drivers[bus][bit]` — every driver recorded for that bit. More
    /// than one is NL001; zero on a read bit is NL002.
    pub drivers: Vec<Vec<Vec<Driver>>>,
}

impl Netlist {
    /// Index of the bus called `name`.
    pub fn bus(&self, name: &str) -> Option<usize> {
        self.buses.iter().position(|b| b.name == name)
    }

    /// The single [`BusKind::Input`] bus, when there is exactly one.
    pub fn input_bus(&self) -> Option<usize> {
        exactly_one(&self.buses, BusKind::Input)
    }

    /// The single [`BusKind::Output`] bus, when there is exactly one.
    pub fn output_bus(&self) -> Option<usize> {
        exactly_one(&self.buses, BusKind::Output)
    }

    fn bit_name(&self, bit: NetBit) -> String {
        format!("{}[{}]", self.buses[bit.bus].name, bit.bit)
    }
}

fn exactly_one(buses: &[Bus], kind: BusKind) -> Option<usize> {
    let mut it = buses.iter().enumerate().filter(|(_, b)| b.kind == kind);
    match (it.next(), it.next()) {
        (Some((i, _)), None) => Some(i),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Lowering: Verilog AST → netlist
// ---------------------------------------------------------------------

/// Lowers a parsed Verilog module into the IR. Structural defects
/// (unknown buses, width mismatches, out-of-range indices) become NL009
/// findings; lowering continues past them so one defect does not hide
/// the rest.
pub fn netlist_from_verilog(module: &VerilogModule, file: &str) -> (Netlist, LintReport) {
    let mut report = LintReport::new();
    let mut buses: Vec<Bus> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();

    let mut declare = |name: &str, kind, width, line, report: &mut LintReport| {
        if index.contains_key(name) {
            report.push(
                file,
                line,
                NL009_STRUCTURE,
                format!("duplicate declaration of bus `{name}`"),
            );
            return;
        }
        index.insert(name.to_owned(), buses.len());
        buses.push(Bus {
            name: name.to_owned(),
            kind,
            width,
            line,
        });
    };

    // Pass 1: declare every bus so forward references resolve.
    for port in &module.ports {
        let kind = match port.dir {
            PortDir::Input => BusKind::Input,
            PortDir::Output => BusKind::Output,
        };
        declare(&port.name, kind, port.width, port.line, &mut report);
    }
    for item in &module.items {
        match item {
            VerilogItem::Wire {
                line, name, width, ..
            } => declare(name, BusKind::Wire, *width, *line, &mut report),
            VerilogItem::Reg { line, name, width } => {
                declare(name, BusKind::Reg, *width, *line, &mut report)
            }
            _ => {}
        }
    }

    let mut net = Netlist {
        name: module.name.clone(),
        buses,
        roms: Vec::new(),
        drivers: Vec::new(),
    };
    net.drivers = net
        .buses
        .iter()
        .map(|b| vec![Vec::new(); b.width])
        .collect();

    let resolve = |net: &Netlist, r: &BitRef, line: usize, report: &mut LintReport| {
        let Some(bus) = net.bus(&r.bus) else {
            report.push(
                file,
                line,
                NL009_STRUCTURE,
                format!("reference to undeclared bus `{}`", r.bus),
            );
            return None;
        };
        if r.index >= net.buses[bus].width {
            report.push(
                file,
                line,
                NL009_STRUCTURE,
                format!(
                    "bit index {} out of range for `{}` (width {})",
                    r.index, r.bus, net.buses[bus].width
                ),
            );
            return None;
        }
        Some(NetBit { bus, bit: r.index })
    };

    // Pass 2: connect drivers.
    for item in &module.items {
        match item {
            VerilogItem::Wire {
                line,
                name,
                width,
                init: Some(init),
            } => {
                let Some(bus) = net.bus(name) else { continue };
                let srcs = lower_expr(&net, init, *width, *line, file, &resolve, &mut report);
                for (bit, src) in srcs.into_iter().enumerate() {
                    if let Some(src) = src {
                        net.drivers[bus][bit].push(Driver::Copy { line: *line, src });
                    }
                }
            }
            VerilogItem::Assign {
                line,
                target,
                value,
            } => {
                let Some(tgt) = resolve(&net, target, *line, &mut report) else {
                    continue;
                };
                if net.buses[tgt.bus].kind == BusKind::Input {
                    report.push(
                        file,
                        *line,
                        NL009_STRUCTURE,
                        format!("assignment drives input port `{}`", net.buses[tgt.bus].name),
                    );
                    continue;
                }
                let srcs = lower_expr(&net, value, 1, *line, file, &resolve, &mut report);
                if let Some(Some(src)) = srcs.first() {
                    net.drivers[tgt.bus][tgt.bit].push(Driver::Copy {
                        line: *line,
                        src: *src,
                    });
                }
            }
            VerilogItem::Rom(rom) => {
                let Some(target) = net.bus(&rom.target) else {
                    report.push(
                        file,
                        rom.line,
                        NL009_STRUCTURE,
                        format!("ROM writes undeclared bus `{}`", rom.target),
                    );
                    continue;
                };
                let Some(addr) = net.bus(&rom.addr) else {
                    report.push(
                        file,
                        rom.line,
                        NL009_STRUCTURE,
                        format!("ROM scrutinizes undeclared bus `{}`", rom.addr),
                    );
                    continue;
                };
                if net.buses[target].kind != BusKind::Reg {
                    report.push(
                        file,
                        rom.line,
                        NL009_STRUCTURE,
                        format!("ROM target `{}` is not a reg", rom.target),
                    );
                }
                let (aw, ww) = (net.buses[addr].width, net.buses[target].width);
                let mut arms = Vec::with_capacity(rom.arms.len());
                for arm in &rom.arms {
                    if arm.addr_width != aw {
                        report.push(
                            file,
                            arm.line,
                            NL009_STRUCTURE,
                            format!(
                                "case label width {} does not match `{}` (width {aw})",
                                arm.addr_width, rom.addr
                            ),
                        );
                    }
                    if arm.word_width != ww {
                        report.push(
                            file,
                            arm.line,
                            NL009_STRUCTURE,
                            format!(
                                "data word width {} does not match `{}` (width {ww})",
                                arm.word_width, rom.target
                            ),
                        );
                    }
                    if aw < 64 && arm.address >> aw != 0 {
                        report.push(
                            file,
                            arm.line,
                            NL009_STRUCTURE,
                            format!(
                                "case label {} exceeds the {aw}-bit address space",
                                arm.address
                            ),
                        );
                    }
                    arms.push((arm.line, arm.address, arm.word));
                }
                let rom_idx = net.roms.len();
                net.roms.push(NetRom {
                    line: rom.line,
                    target,
                    addr,
                    arms,
                    default: rom.default,
                });
                for bit in 0..ww {
                    net.drivers[target][bit].push(Driver::Rom { rom: rom_idx, bit });
                }
            }
            _ => {}
        }
    }
    (net, report)
}

/// Lowers an initializer/assign RHS into one source bit per target bit
/// (LSB first). `None` marks bits whose source failed to resolve.
#[allow(clippy::too_many_arguments)]
fn lower_expr(
    net: &Netlist,
    expr: &Expr,
    width: usize,
    line: usize,
    file: &str,
    resolve: &dyn Fn(&Netlist, &BitRef, usize, &mut LintReport) -> Option<NetBit>,
    report: &mut LintReport,
) -> Vec<Option<NetBit>> {
    match expr {
        Expr::Bit(r) => {
            if width != 1 {
                report.push(
                    file,
                    line,
                    NL009_STRUCTURE,
                    format!("single-bit value drives a {width}-bit target"),
                );
                return vec![None; width];
            }
            vec![resolve(net, r, line, report)]
        }
        Expr::Slice { bus, hi, lo } => {
            if hi - lo + 1 != width {
                report.push(
                    file,
                    line,
                    NL009_STRUCTURE,
                    format!(
                        "slice `{bus}[{hi}:{lo}]` is {} bits wide but the target has {width}",
                        hi - lo + 1
                    ),
                );
                return vec![None; width];
            }
            (0..width)
                .map(|k| {
                    resolve(
                        net,
                        &BitRef {
                            bus: bus.clone(),
                            index: lo + k,
                        },
                        line,
                        report,
                    )
                })
                .collect()
        }
        Expr::Concat(parts) => {
            if parts.len() != width {
                report.push(
                    file,
                    line,
                    NL009_STRUCTURE,
                    format!(
                        "concatenation has {} bits but the target has {width}",
                        parts.len()
                    ),
                );
                return vec![None; width];
            }
            // Concatenations are written MSB first: part 0 drives the top bit.
            (0..width)
                .map(|bit| resolve(net, &parts[width - 1 - bit], line, report))
                .collect()
        }
    }
}

// ---------------------------------------------------------------------
// Lowering: Cascade → netlist (the cascade-text artifact path)
// ---------------------------------------------------------------------

/// Lowers an in-memory [`Cascade`] into the IR with the exact bus
/// topology `emit_verilog` writes (`x`/`y` ports, `addr`/`data`/`rail`
/// per cell). This is how `.cas` artifacts reach the shared analyses:
/// parse → [`Cascade`] → netlist. All lines are 0 (the topology is
/// synthetic).
pub fn cascade_to_netlist(cascade: &Cascade, name: &str) -> Netlist {
    let mut buses = vec![
        Bus {
            name: "x".into(),
            kind: BusKind::Input,
            width: cascade.num_inputs().max(1),
            line: 0,
        },
        Bus {
            name: "y".into(),
            kind: BusKind::Output,
            width: cascade.num_outputs().max(1),
            line: 0,
        },
    ];
    let mut roms = Vec::new();
    let mut connections: Vec<(NetBit, Driver)> = Vec::new();
    let mut rail_bus_of_prev: Option<usize> = None;

    // Mirror the emitter: hardware no-op cells are not part of the
    // artifact topology, and live cells are numbered consecutively.
    for (i, cell) in cascade.cells().iter().filter(|c| !c.is_noop()).enumerate() {
        let abits = cell.num_inputs();
        let wbits = cell.num_outputs();
        let addr_bus = buses.len();
        buses.push(Bus {
            name: format!("addr{i}"),
            kind: BusKind::Wire,
            width: abits.max(1),
            line: 0,
        });
        let data_bus = buses.len();
        buses.push(Bus {
            name: format!("data{i}"),
            kind: BusKind::Reg,
            width: wbits.max(1),
            line: 0,
        });
        for t in 0..cell.rails_in() {
            let prev = rail_bus_of_prev.expect("invariant: from_cells validated the rail chain");
            connections.push((
                NetBit {
                    bus: addr_bus,
                    bit: t,
                },
                Driver::Copy {
                    line: 0,
                    src: NetBit { bus: prev, bit: t },
                },
            ));
        }
        for (k, &input_id) in cell.input_ids().iter().enumerate() {
            connections.push((
                NetBit {
                    bus: addr_bus,
                    bit: cell.rails_in() + k,
                },
                Driver::Copy {
                    line: 0,
                    src: NetBit {
                        bus: 0,
                        bit: input_id,
                    },
                },
            ));
        }
        let rom_idx = roms.len();
        let mut arms = Vec::with_capacity(1 << abits);
        for address in 0..1u64 << abits {
            let rail_in = if cell.rails_in() == 0 {
                0
            } else {
                address & ((1u64 << cell.rails_in()) - 1)
            };
            let inputs: Vec<bool> = (0..cell.input_ids().len())
                .map(|k| address >> (cell.rails_in() + k) & 1 == 1)
                .collect();
            let (outs, rail_out) = cell.lookup(rail_in, &inputs);
            arms.push((0, address, outs | (rail_out << cell.output_ids().len())));
        }
        roms.push(NetRom {
            line: 0,
            target: data_bus,
            addr: addr_bus,
            arms,
            default: Some((0, 0)),
        });
        for bit in 0..wbits {
            connections.push((
                NetBit { bus: data_bus, bit },
                Driver::Rom { rom: rom_idx, bit },
            ));
        }
        for (k, &output_id) in cell.output_ids().iter().enumerate() {
            connections.push((
                NetBit {
                    bus: 1,
                    bit: output_id,
                },
                Driver::Copy {
                    line: 0,
                    src: NetBit {
                        bus: data_bus,
                        bit: k,
                    },
                },
            ));
        }
        if cell.rails_out() > 0 {
            let rail_bus = buses.len();
            buses.push(Bus {
                name: format!("rail{i}"),
                kind: BusKind::Wire,
                width: cell.rails_out(),
                line: 0,
            });
            for t in 0..cell.rails_out() {
                connections.push((
                    NetBit {
                        bus: rail_bus,
                        bit: t,
                    },
                    Driver::Copy {
                        line: 0,
                        src: NetBit {
                            bus: data_bus,
                            bit: cell.output_ids().len() + t,
                        },
                    },
                ));
            }
            rail_bus_of_prev = Some(rail_bus);
        } else {
            rail_bus_of_prev = None;
        }
    }

    let mut net = Netlist {
        name: name.to_owned(),
        buses,
        roms,
        drivers: Vec::new(),
    };
    net.drivers = net
        .buses
        .iter()
        .map(|b| vec![Vec::new(); b.width])
        .collect();
    for (bit, driver) in connections {
        net.drivers[bit.bus][bit.bit].push(driver);
    }
    net
}

// ---------------------------------------------------------------------
// Structural lints (NL001–NL007)
// ---------------------------------------------------------------------

/// ROM address spaces wider than this are not enumerated (the paper's
/// cells stay ≤ 12–14 address bits; anything bigger is itself suspect).
const MAX_ENUM_ADDR_BITS: usize = 20;

/// Runs the structural lint battery over a lowered netlist.
pub fn lint_netlist(net: &Netlist, file: &str) -> LintReport {
    lint_netlist_with_spec(net, file, &[])
}

/// [`lint_netlist`] with specification knowledge: `spec_vacuous_inputs`
/// lists primary input indices the specification is known to ignore.
/// A cell must still consume its layout level even when χ no longer
/// depends on it (e.g. the padding inputs of widened benchmarks), so an
/// NL007 finding whose address bit traces back — through copy chains —
/// to such an input is expected hardware, not a translation defect, and
/// is suppressed.
pub fn lint_netlist_with_spec(
    net: &Netlist,
    file: &str,
    spec_vacuous_inputs: &[usize],
) -> LintReport {
    let mut report = LintReport::new();

    // Which bits does anything read?
    let mut read = vec![false; net.buses.len()];
    for per_bus in &net.drivers {
        for drivers in per_bus {
            for d in drivers {
                if let Driver::Copy { src, .. } = d {
                    read[src.bus] = true;
                }
            }
        }
    }
    for rom in &net.roms {
        read[rom.addr] = true;
    }

    for (b, bus) in net.buses.iter().enumerate() {
        for bit in 0..bus.width {
            let drivers = &net.drivers[b][bit];
            if drivers.len() > 1 {
                let line = driver_line(net, &drivers[1]);
                report.push(
                    file,
                    line,
                    NL001_MULTIPLE_DRIVERS,
                    format!(
                        "`{}[{bit}]` has {} drivers (first at line {})",
                        bus.name,
                        drivers.len(),
                        driver_line(net, &drivers[0])
                    ),
                );
            }
            if drivers.is_empty()
                && bus.kind != BusKind::Input
                && (bus.kind == BusKind::Output || read[b])
            {
                report.push(
                    file,
                    bus.line,
                    NL002_UNDRIVEN,
                    format!("`{}[{bit}]` is read but has no driver", bus.name),
                );
            }
        }
        if matches!(bus.kind, BusKind::Wire | BusKind::Reg) && !read[b] {
            report.push(
                file,
                bus.line,
                NL003_UNUSED_WIRE,
                format!("`{}` is never read", bus.name),
            );
        }
    }

    lint_loops(net, file, &mut report);
    for rom in &net.roms {
        lint_rom(net, rom, file, spec_vacuous_inputs, &mut report);
    }
    report
}

fn driver_line(net: &Netlist, d: &Driver) -> usize {
    match d {
        Driver::Copy { line, .. } => *line,
        Driver::Rom { rom, .. } => net.roms[*rom].line,
    }
}

/// NL004: depth-first search over the bit dependency graph. A ROM-driven
/// bit depends on every bit of its address bus.
fn lint_loops(net: &Netlist, file: &str, report: &mut LintReport) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: HashMap<NetBit, Mark> = HashMap::new();
    let mut flagged = false;

    // Iterative DFS with an explicit stack; Enter/Exit frames give the
    // grey (on-path) window that detects back edges.
    enum Frame {
        Enter(NetBit),
        Exit(NetBit),
    }
    for b in 0..net.buses.len() {
        for bit in 0..net.buses[b].width {
            let start = NetBit { bus: b, bit };
            if marks.get(&start).copied().unwrap_or(Mark::White) != Mark::White {
                continue;
            }
            let mut stack = vec![Frame::Enter(start)];
            while let Some(frame) = stack.pop() {
                match frame {
                    Frame::Exit(n) => {
                        marks.insert(n, Mark::Black);
                    }
                    Frame::Enter(n) => {
                        match marks.get(&n).copied().unwrap_or(Mark::White) {
                            Mark::Black => continue,
                            Mark::Grey => {
                                if !flagged {
                                    report.push(
                                        file,
                                        0,
                                        NL004_COMB_LOOP,
                                        format!("combinational loop through `{}`", net.bit_name(n)),
                                    );
                                    flagged = true; // one cycle report is enough
                                }
                                continue;
                            }
                            Mark::White => {}
                        }
                        marks.insert(n, Mark::Grey);
                        stack.push(Frame::Exit(n));
                        for d in &net.drivers[n.bus][n.bit] {
                            match d {
                                Driver::Copy { src, .. } => stack.push(Frame::Enter(*src)),
                                Driver::Rom { rom, .. } => {
                                    let addr = net.roms[*rom].addr;
                                    for k in 0..net.buses[addr].width {
                                        stack.push(Frame::Enter(NetBit { bus: addr, bit: k }));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// NL005–NL007 for one ROM.
fn lint_rom(
    net: &Netlist,
    rom: &NetRom,
    file: &str,
    spec_vacuous_inputs: &[usize],
    report: &mut LintReport,
) {
    let w = net.buses[rom.addr].width;
    let addr_name = &net.buses[rom.addr].name;

    let mut seen: HashMap<u64, usize> = HashMap::new();
    for &(line, address, _) in &rom.arms {
        if let Some(first) = seen.insert(address, line) {
            report.push(
                file,
                line,
                NL006_CASE_OVERLAP,
                format!("address {address} matched twice (first at line {first})"),
            );
        }
    }
    if w > MAX_ENUM_ADDR_BITS {
        report.push(
            file,
            rom.line,
            NL009_STRUCTURE,
            format!("address bus `{addr_name}` is {w} bits wide; case analysis skipped"),
        );
        return;
    }
    let total = 1usize << w;
    if seen.len() < total {
        report.push(
            file,
            rom.line,
            NL005_CASE_INCOMPLETE,
            format!(
                "case enumerates {} of {total} addresses{}",
                seen.len(),
                if rom.default.is_some() {
                    " (the default silently zero-fills the rest)"
                } else {
                    " and has no default"
                }
            ),
        );
    }

    // NL007: a vacuous address bit means the cell memory could be halved.
    let words = rom_words(rom, w);
    for k in 0..w {
        let mask = 1u64 << k;
        let vacuous = (0..total as u64)
            .filter(|a| a & mask == 0)
            .all(|a| words[a as usize] == words[(a | mask) as usize]);
        if vacuous {
            // Expected when the bit is fed by an input the spec ignores.
            let from_spec_vacuous_input = matches!(
                resolve_root(net, NetBit { bus: rom.addr, bit: k }),
                Ok(Root::Input(i)) if spec_vacuous_inputs.contains(&i)
            );
            if from_spec_vacuous_input {
                continue;
            }
            report.push(
                file,
                rom.line,
                NL007_UNUSED_ADDRESS_BIT,
                format!("address bit `{addr_name}[{k}]` never affects the stored word"),
            );
        }
    }
}

/// The full 2^w word table: explicit arms, then the default, then 0.
fn rom_words(rom: &NetRom, w: usize) -> Vec<u64> {
    let fill = rom.default.map_or(0, |(_, word)| word);
    let mut words = vec![fill; 1 << w];
    for &(_, address, word) in &rom.arms {
        if (address as usize) < words.len() {
            words[address as usize] = word;
        }
    }
    words
}

// ---------------------------------------------------------------------
// Reconstruction: netlist → Cascade (TV003) and rail bounds (NL008)
// ---------------------------------------------------------------------

/// Where a bit ultimately comes from, after collapsing copy chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Root {
    /// Primary input bit `i`.
    Input(usize),
    /// Bit `bit` of ROM `rom`'s word.
    Rom(usize, usize),
}

fn resolve_root(net: &Netlist, start: NetBit) -> Result<Root, String> {
    let mut cur = start;
    let mut hops = 0usize;
    loop {
        if net.buses[cur.bus].kind == BusKind::Input {
            return Ok(Root::Input(cur.bit));
        }
        let drivers = &net.drivers[cur.bus][cur.bit];
        match drivers.first() {
            None => return Err(format!("`{}` is undriven", net.bit_name(cur))),
            Some(Driver::Rom { rom, bit }) => return Ok(Root::Rom(*rom, *bit)),
            Some(Driver::Copy { src, .. }) => {
                cur = *src;
                hops += 1;
                if hops > net.buses.iter().map(|b| b.width).sum::<usize>() {
                    return Err(format!("copy cycle through `{}`", net.bit_name(start)));
                }
            }
        }
    }
}

/// Rebuilds a [`Cascade`] from the wiring pattern of a lowered artifact:
/// ROMs are cells, copy chains from data words into the next address bus
/// are rails, copies into the output port are primary outputs.
///
/// # Errors
///
/// Returns a report of [`TV003_RECONSTRUCTION`] findings when the
/// topology is not a single linear LUT-cascade chain.
pub fn netlist_to_cascade(net: &Netlist, file: &str) -> Result<Cascade, LintReport> {
    let fail = |line: usize, msg: String| -> LintReport {
        let mut r = LintReport::new();
        r.push(file, line, TV003_RECONSTRUCTION, msg);
        r
    };

    let Some(input) = net.input_bus() else {
        return Err(fail(
            0,
            "the netlist does not have exactly one input bus".into(),
        ));
    };
    let Some(output) = net.output_bus() else {
        return Err(fail(
            0,
            "the netlist does not have exactly one output bus".into(),
        ));
    };

    // Primary outputs: each output-port bit must root at a ROM word bit.
    let mut rom_outputs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); net.roms.len()];
    for j in 0..net.buses[output].width {
        match resolve_root(
            net,
            NetBit {
                bus: output,
                bit: j,
            },
        ) {
            Ok(Root::Rom(r, k)) => rom_outputs[r].push((k, j)),
            Ok(Root::Input(i)) => {
                return Err(fail(
                    0,
                    format!("output bit y[{j}] is wired straight to input x[{i}]"),
                ))
            }
            Err(e) => return Err(fail(0, format!("output bit y[{j}]: {e}"))),
        }
    }
    let mut num_primary_outs = vec![0usize; net.roms.len()];
    for (r, outs) in rom_outputs.iter_mut().enumerate() {
        outs.sort_unstable();
        for (slot, &(k, _)) in outs.iter().enumerate() {
            if k != slot {
                return Err(fail(
                    net.roms[r].line,
                    format!(
                        "ROM `{}` exposes word bit {k} as a primary output but bit {slot} \
                         is not a primary output (outputs must occupy the low word bits)",
                        net.buses[net.roms[r].target].name
                    ),
                ));
            }
        }
        num_primary_outs[r] = outs.len();
    }

    // Address buses: the low bits must be the previous ROM's rail code,
    // the rest primary inputs — exactly the LutCell addressing layout.
    struct RomShape {
        rails_in: usize,
        input_ids: Vec<usize>,
        prev: Option<usize>,
    }
    let mut shapes: Vec<RomShape> = Vec::with_capacity(net.roms.len());
    for rom in &net.roms {
        let w = net.buses[rom.addr].width;
        if w > MAX_ENUM_ADDR_BITS {
            return Err(fail(
                rom.line,
                format!(
                    "address bus `{}` too wide to reconstruct",
                    net.buses[rom.addr].name
                ),
            ));
        }
        let mut rails_in = 0usize;
        let mut input_ids = Vec::new();
        let mut prev: Option<usize> = None;
        for p in 0..w {
            let root = resolve_root(
                net,
                NetBit {
                    bus: rom.addr,
                    bit: p,
                },
            )
            .map_err(|e| fail(rom.line, format!("address bit {p}: {e}")))?;
            match root {
                Root::Rom(src, bit) => {
                    if !input_ids.is_empty() {
                        return Err(fail(
                            rom.line,
                            format!(
                                "address bit {p} carries a rail above a primary input \
                                 (rails must be the low address bits)"
                            ),
                        ));
                    }
                    if prev.is_some_and(|q| q != src) {
                        return Err(fail(
                            rom.line,
                            "address bus mixes rails from two different cells".into(),
                        ));
                    }
                    prev = Some(src);
                    let expect = num_primary_outs[src] + rails_in;
                    if bit != expect {
                        return Err(fail(
                            rom.line,
                            format!(
                                "address bit {p} taps word bit {bit} of `{}` but the rail \
                                 code starts at bit {} (expected bit {expect})",
                                net.buses[net.roms[src].target].name, num_primary_outs[src]
                            ),
                        ));
                    }
                    rails_in += 1;
                }
                Root::Input(i) => input_ids.push(i),
            }
        }
        shapes.push(RomShape {
            rails_in,
            input_ids,
            prev,
        });
    }

    // Chain the ROMs head to tail.
    let mut next = vec![None; net.roms.len()];
    let mut heads = Vec::new();
    for (r, shape) in shapes.iter().enumerate() {
        match shape.prev {
            None => heads.push(r),
            Some(p) => {
                if next[p].replace(r).is_some() {
                    return Err(fail(
                        net.roms[r].line,
                        format!(
                            "ROM `{}` feeds rails into two downstream cells",
                            net.buses[net.roms[p].target].name
                        ),
                    ));
                }
            }
        }
    }
    if heads.len() != 1 {
        return Err(fail(
            0,
            format!(
                "expected one head cell (no incoming rails), found {}",
                heads.len()
            ),
        ));
    }
    let mut order = Vec::with_capacity(net.roms.len());
    let mut cur = Some(heads[0]);
    while let Some(r) = cur {
        order.push(r);
        cur = next[r];
    }
    if order.len() != net.roms.len() {
        return Err(fail(
            0,
            format!(
                "the rail chain covers {} of {} cells (disconnected or cyclic topology)",
                order.len(),
                net.roms.len()
            ),
        ));
    }

    // Materialize the cells.
    let mut cells = Vec::with_capacity(order.len());
    for &r in &order {
        let rom = &net.roms[r];
        let w = net.buses[rom.addr].width;
        let width = net.buses[rom.target].width;
        let shape = &shapes[r];
        let rails_out = width - num_primary_outs[r];
        let words = rom_words(rom, w);
        if width < 64 {
            if let Some(&bad) = words.iter().find(|&&word| word >> width != 0) {
                return Err(fail(
                    rom.line,
                    format!(
                        "stored word {bad} sets bits beyond the {width}-bit data bus of `{}`",
                        net.buses[rom.target].name
                    ),
                ));
            }
        }
        // The output-port bit each low word bit maps to, in slot order.
        let output_ids: Vec<usize> = rom_outputs[r].iter().map(|&(_, j)| j).collect();
        cells.push(LutCell::new(
            shape.rails_in,
            shape.input_ids.clone(),
            rails_out,
            output_ids,
            words,
        ));
    }

    Cascade::from_cells(cells, net.buses[input].width, net.buses[output].width)
        .map_err(|e| fail(0, format!("cell chain is not a valid cascade: {e}")))
}

/// NL008: recomputes Theorem 3.1's `⌈log₂ W⌉` rail bound at every cell
/// boundary of a (reconstructed) cascade from the specification BDD,
/// independently of whatever widths the artifact declares.
pub fn lint_rail_bounds(cascade: &Cascade, cf: &Cf, file: &str) -> LintReport {
    let mut report = LintReport::new();
    let mut cut = 0usize;
    for (i, cell) in cascade.cells().iter().enumerate() {
        let width = crate::cascade::columns_below(cf, cut as u32).max(1);
        let expected = rails_for(width);
        if cell.rails_in() != expected {
            report.push(
                file,
                0,
                NL008_RAIL_WIDTH,
                format!(
                    "cell {i} has a {}-bit rail bundle but the BDD_for_CF has {width} \
                     columns at cut {cut} (Theorem 3.1 wants {expected})",
                    cell.rails_in()
                ),
            );
        }
        cut += cell.input_ids().len() + cell.output_ids().len();
    }
    report
}

/// First difference between two cascades, cell by cell and word by word;
/// `None` when they are structurally identical.
pub fn cascade_structural_diff(a: &Cascade, b: &Cascade) -> Option<String> {
    if a.num_inputs() != b.num_inputs() {
        return Some(format!(
            "input count {} vs {}",
            a.num_inputs(),
            b.num_inputs()
        ));
    }
    if a.num_outputs() != b.num_outputs() {
        return Some(format!(
            "output count {} vs {}",
            a.num_outputs(),
            b.num_outputs()
        ));
    }
    if a.num_cells() != b.num_cells() {
        return Some(format!("cell count {} vs {}", a.num_cells(), b.num_cells()));
    }
    for (i, (ca, cb)) in a.cells().iter().zip(b.cells()).enumerate() {
        if ca.rails_in() != cb.rails_in()
            || ca.rails_out() != cb.rails_out()
            || ca.input_ids() != cb.input_ids()
            || ca.output_ids() != cb.output_ids()
        {
            return Some(format!("cell {i} geometry differs"));
        }
        for address in 0..1u64 << ca.num_inputs() {
            let rail_in = if ca.rails_in() == 0 {
                0
            } else {
                address & ((1u64 << ca.rails_in()) - 1)
            };
            let inputs: Vec<bool> = (0..ca.input_ids().len())
                .map(|k| address >> (ca.rails_in() + k) & 1 == 1)
                .collect();
            if ca.lookup(rail_in, &inputs) != cb.lookup(rail_in, &inputs) {
                return Some(format!("cell {i} table differs at address {address}"));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Translation validation: χ_netlist (TV004)
// ---------------------------------------------------------------------

/// Rebuilds the characteristic function of the artifact symbolically:
/// every bit's BDD is derived from its driver (ROM bits by Shannon
/// expansion over the address-bit BDDs), and
/// `χ_netlist = ∧_j (y_j ↔ f_j)` over the output port. No simulation is
/// involved — this is the translation-validation obligation.
///
/// # Errors
///
/// Returns [`TV003_RECONSTRUCTION`]-class findings when the netlist
/// shape prevents the derivation (undriven bits, loops, port/layout
/// arity mismatches).
pub fn netlist_chi(
    net: &Netlist,
    mgr: &mut BddManager,
    layout: &CfLayout,
    file: &str,
) -> Result<NodeId, LintReport> {
    let fail = |line: usize, msg: String| -> LintReport {
        let mut r = LintReport::new();
        r.push(file, line, TV003_RECONSTRUCTION, msg);
        r
    };
    let Some(input) = net.input_bus() else {
        return Err(fail(
            0,
            "the netlist does not have exactly one input bus".into(),
        ));
    };
    let Some(output) = net.output_bus() else {
        return Err(fail(
            0,
            "the netlist does not have exactly one output bus".into(),
        ));
    };
    if net.buses[input].width != layout.num_inputs().max(1) {
        return Err(fail(
            net.buses[input].line,
            format!(
                "input port is {} bits wide but the specification has {} inputs",
                net.buses[input].width,
                layout.num_inputs()
            ),
        ));
    }
    if net.buses[output].width != layout.num_outputs().max(1) {
        return Err(fail(
            net.buses[output].line,
            format!(
                "output port is {} bits wide but the specification has {} outputs",
                net.buses[output].width,
                layout.num_outputs()
            ),
        ));
    }

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        InProgress,
        Done(NodeId),
    }
    let mut memo: HashMap<NetBit, State> = HashMap::new();

    fn bit_bdd(
        net: &Netlist,
        mgr: &mut BddManager,
        layout: &CfLayout,
        input: usize,
        memo: &mut HashMap<NetBit, State>,
        bit: NetBit,
    ) -> Result<NodeId, String> {
        if bit.bus == input {
            if bit.bit >= layout.num_inputs() {
                return Ok(FALSE); // width-padded degenerate input port
            }
            return Ok(mgr.var(layout.input_var(bit.bit)));
        }
        match memo.get(&bit) {
            Some(State::Done(id)) => return Ok(*id),
            Some(State::InProgress) => {
                return Err(format!(
                    "combinational loop through `{}`",
                    net.bit_name(bit)
                ))
            }
            None => {}
        }
        memo.insert(bit, State::InProgress);
        let result = match net.drivers[bit.bus][bit.bit].first() {
            None => Err(format!("`{}` is undriven", net.bit_name(bit))),
            Some(Driver::Copy { src, .. }) => {
                let src = *src;
                bit_bdd(net, mgr, layout, input, memo, src)
            }
            Some(Driver::Rom { rom, bit: word_bit }) => {
                let (rom, word_bit) = (*rom, *word_bit);
                let addr = net.roms[rom].addr;
                let w = net.buses[addr].width;
                if w > MAX_ENUM_ADDR_BITS {
                    return Err(format!(
                        "address bus `{}` too wide to expand",
                        net.buses[addr].name
                    ));
                }
                let mut addr_bdds = Vec::with_capacity(w);
                for k in 0..w {
                    addr_bdds.push(bit_bdd(
                        net,
                        mgr,
                        layout,
                        input,
                        memo,
                        NetBit { bus: addr, bit: k },
                    )?);
                }
                let words = rom_words(&net.roms[rom], w);
                Ok(shannon(mgr, &addr_bdds, &words, word_bit))
            }
        };
        match result {
            Ok(id) => {
                memo.insert(bit, State::Done(id));
                Ok(id)
            }
            Err(e) => Err(e),
        }
    }

    let mut conjuncts = Vec::with_capacity(layout.num_outputs());
    for j in 0..layout.num_outputs() {
        let f = bit_bdd(
            net,
            mgr,
            layout,
            input,
            &mut memo,
            NetBit {
                bus: output,
                bit: j,
            },
        )
        .map_err(|e| fail(0, format!("output bit y[{j}]: {e}")))?;
        let y = mgr.var(layout.output_var(j));
        conjuncts.push(mgr.iff(y, f));
    }
    Ok(mgr.and_many(&conjuncts))
}

/// Shannon-expands bit `bit` of a ROM word table over the address-bit
/// BDDs (`addr` LSB first, `words.len() == 2^addr.len()`).
fn shannon(mgr: &mut BddManager, addr: &[NodeId], words: &[u64], bit: usize) -> NodeId {
    debug_assert_eq!(words.len(), 1 << addr.len());
    if addr.is_empty() {
        return if words[0] >> bit & 1 == 1 {
            TRUE
        } else {
            FALSE
        };
    }
    let k = addr.len() - 1; // split on the MSB: low half has MSB = 0
    let half = 1usize << k;
    let lo = shannon(mgr, &addr[..k], &words[..half], bit);
    let hi = shannon(mgr, &addr[..k], &words[half..], bit);
    mgr.ite(addr[k], hi, lo)
}

/// The TV004 obligation: `χ_netlist ⇒ χ_spec`, proved on the BDDs with
/// the same oracle `bddcf check` uses for reductions
/// ([`Cf::original_chi`]). The artifact realizes a *completion* of the
/// specification, so the implication — never equivalence — is the
/// correct refinement direction.
pub fn check_netlist_refinement(net: &Netlist, cf: &mut Cf, file: &str) -> LintReport {
    let layout = cf.layout().clone();
    let original = cf.original_chi();
    let chi_net = match netlist_chi(net, cf.manager_mut(), &layout, file) {
        Ok(chi) => chi,
        Err(report) => return report,
    };
    let mut report = LintReport::new();
    if cf.manager_mut().implies(chi_net, original) != TRUE {
        report.push(
            file,
            0,
            TV004_REFINEMENT,
            "the artifact's characteristic function does not refine the \
             specification: χ_netlist ⇏ χ_spec",
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_cascade::{synthesize, CascadeOptions};
    use bddcf_io::verilog_parse::parse_verilog;
    use bddcf_io::{cascade_to_verilog, read_cascade, write_cascade};
    use bddcf_logic::TruthTable;

    fn sample() -> (Cascade, Cf) {
        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_alg33_default();
        let cascade = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .expect("paper example fits");
        (cascade, cf)
    }

    fn lowered(cascade: &Cascade) -> Netlist {
        let text = cascade_to_verilog(cascade, "m").expect("valid name");
        let module = parse_verilog(&text).expect("emitted Verilog parses");
        let (net, report) = netlist_from_verilog(&module, "m.v");
        assert!(report.is_clean(), "{report}");
        net
    }

    #[test]
    fn emitted_verilog_lowers_and_lints_clean() {
        let (cascade, _) = sample();
        let net = lowered(&cascade);
        let report = lint_netlist(&net, "m.v");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn emitted_verilog_reconstructs_the_same_cascade() {
        let (cascade, _) = sample();
        let net = lowered(&cascade);
        let rebuilt = netlist_to_cascade(&net, "m.v").expect("reconstructs");
        assert!(cascade_structural_diff(&cascade, &rebuilt).is_none());
        // Byte-faithful round trip.
        let original = cascade_to_verilog(&cascade, "m").expect("valid name");
        let re_emitted = cascade_to_verilog(&rebuilt, "m").expect("valid name");
        assert_eq!(
            original, re_emitted,
            "emit → parse → re-emit must be identity"
        );
    }

    #[test]
    fn cascade_text_path_matches_the_verilog_path() {
        let (cascade, _) = sample();
        let loaded = read_cascade(&write_cascade(&cascade)).expect("round trips");
        let net = cascade_to_netlist(&loaded, "m");
        let report = lint_netlist(&net, "m.cas");
        assert!(report.is_clean(), "{report}");
        let rebuilt = netlist_to_cascade(&net, "m.cas").expect("reconstructs");
        assert!(cascade_structural_diff(&cascade, &rebuilt).is_none());
    }

    #[test]
    fn chi_reconstruction_refines_the_specification() {
        let (cascade, mut cf) = sample();
        let net = lowered(&cascade);
        let report = check_netlist_refinement(&net, &mut cf, "m.v");
        assert!(report.is_clean(), "{report}");
        let report = lint_rail_bounds(&cascade, &cf, "m.v");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn a_corrupted_rom_word_breaks_refinement() {
        let (cascade, mut cf) = sample();
        let mut net = lowered(&cascade);
        // Flip one care data bit in the first ROM: TV004 must catch it.
        // (Search for an arm whose flip violates the specification; with
        // don't cares, not every flip does, so try them all.)
        let mut caught = false;
        'outer: for rom in 0..net.roms.len() {
            for arm in 0..net.roms[rom].arms.len() {
                let mut mutant = net.clone();
                mutant.roms[rom].arms[arm].2 ^= 1;
                let report = check_netlist_refinement(&mutant, &mut cf, "m.v");
                if report.has(TV004_REFINEMENT) {
                    net = mutant;
                    caught = true;
                    break 'outer;
                }
            }
        }
        assert!(caught, "no single-bit ROM corruption was caught");
        let _ = net;
    }
}
