//! Workspace-wide structural and semantic invariant analysis for the
//! `BDD_for_CF` pipeline (`bddcf check`).
//!
//! The paper's pipeline — characteristic-function construction
//! (Definition 2.3), width reductions (Algorithms 3.1/3.3, support-variable
//! removal), and LUT-cascade synthesis (Theorem 3.1) — relies on a stack of
//! invariants that the implementation crates *assume* but do not audit on
//! every operation. This crate re-derives them from first principles and
//! checks real pipeline states against them, in four layers:
//!
//! 1. **Manager integrity** ([`check_manager`]) — the ROBDD arena audit of
//!    [`bddcf_bdd::BddManager::check_integrity`]: canonical unique-table ↔
//!    arena bijection, strict reduction, level monotonicity under the
//!    current variable permutation, live operation caches.
//! 2. **CF lints** ([`check_cf`]) — semantic well-formedness of a
//!    `BDD_for_CF`: the Definition-2.4 ordering rule (each output variable
//!    below the support of its function), no output variable repeated on
//!    any path of χ, ON/OFF/DC partitioning the input space, and validity
//!    `∀X ∃Y. χ = 1`.
//! 3. **Refinement oracle** ([`check_refinement`]) — reductions may only
//!    complete don't cares: the current χ must imply the χ rebuilt from the
//!    preserved original specification, and the incremental
//!    [`bddcf_bdd::WidthProfile`] must agree with an independent
//!    per-cut recount of Definition 3.5.
//! 4. **Cascade lints** ([`check_cascade`],
//!    [`check_cascade_against_oracle`]) — Theorem 3.1 rail counts
//!    (`⌈log₂ W⌉` at every cell boundary) and sampled agreement of the cell
//!    tables with the specification oracle.
//!
//! [`check_benchmark`] chains all four layers over the standard pipeline
//! (build → reduce to fixpoint → synthesize) for one registry benchmark;
//! the `bddcf check` CLI subcommand is a thin wrapper around it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod audit;
pub mod cascade;
pub mod cf;
pub mod crashtest;
pub mod inject;
pub mod lint;
pub mod manager;
pub mod netlist;
pub mod pipeline;
pub mod quarantine;
pub mod refine;

pub use audit::audit_artifact_text;
pub use cascade::{
    check_cascade, check_cascade_against_oracle, check_multi_cascade_against_oracle,
};
pub use cf::{check_cascade_ready, check_cf};
pub use crashtest::{run_crashtest, CrashTestOptions, CrashTestOutcome, KillOutcome};
pub use inject::{
    run_injection, FaultKind, FaultOutcome, FaultResult, InjectionOptions, InjectionOutcome,
};
pub use lint::{lint_benchmark, lint_cascade_artifacts, BenchmarkLint, LintOptions};
pub use manager::check_manager;
pub use netlist::{
    cascade_structural_diff, cascade_to_netlist, check_netlist_refinement, lint_netlist,
    lint_netlist_with_spec, lint_rail_bounds, netlist_chi, netlist_from_verilog,
    netlist_to_cascade, LintFinding, LintReport, Netlist,
};
pub use pipeline::{check_benchmark, BenchmarkCheck, CheckOptions};
pub use quarantine::{
    panic_payload_text, quarantine_op, run_quarantined, with_quiet_panics, FindingProbe,
    PanicProbe, Quarantine, PANIC_PROBE_MESSAGE,
};
pub use refine::{check_refinement, naive_width_profile};

/// The four analysis layers, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// ROBDD arena / unique-table / cache integrity.
    Manager,
    /// `BDD_for_CF` semantic lints (Definitions 2.3 and 2.4).
    CfLints,
    /// Reduction refinement (`χ' ⇒ χ`) and width-profile recount.
    Refinement,
    /// LUT-cascade structure (Theorem 3.1) and sampled semantics.
    Cascade,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Manager => "manager",
            Layer::CfLints => "cf",
            Layer::Refinement => "refinement",
            Layer::Cascade => "cascade",
        })
    }
}

/// One invariant violation, attributed to a layer and (optionally) the
/// pipeline phase that produced the state.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which analysis layer flagged it.
    pub layer: Layer,
    /// Pipeline phase label (`"build"`, `"fixpoint"`, …) or empty when the
    /// check ran on a free-standing object.
    pub phase: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.phase.is_empty() {
            write!(f, "[{}] {}", self.layer, self.message)
        } else {
            write!(f, "[{}/{}] {}", self.layer, self.phase, self.message)
        }
    }
}

/// The outcome of one or more checks: a (possibly empty) list of findings.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    findings: Vec<Finding>,
}

impl CheckReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        CheckReport::default()
    }

    /// Records a violation.
    pub fn push(&mut self, layer: Layer, message: impl Into<String>) {
        self.findings.push(Finding {
            layer,
            phase: String::new(),
            message: message.into(),
        });
    }

    /// Absorbs another report, tagging its findings with `phase` (existing
    /// phase labels are kept).
    pub fn absorb(&mut self, phase: &str, other: CheckReport) {
        for mut finding in other.findings {
            if finding.phase.is_empty() {
                finding.phase = phase.to_owned();
            }
            self.findings.push(finding);
        }
    }

    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// All findings, in discovery order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Panics with the full report when it is not clean. The `check`
    /// feature of `bddcf-core` and `bddcf-bench` uses this as a
    /// phase-boundary assertion.
    #[track_caller]
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "invariant check failed at {context}:\n{self}"
        );
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "clean: no invariant violations");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(f, "{} violation(s)", self.findings.len())
    }
}
