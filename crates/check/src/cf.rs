//! Layer 2: `BDD_for_CF` semantic lints.
//!
//! Checks the invariants Definition 2.3/2.4 of the paper give a
//! characteristic function χ(X, Y):
//!
//! * **Ordering rule** (Definition 2.4): each output variable `y_j` sits
//!   strictly below the *essential* support of its function (inputs that
//!   only influence the don't-care set impose no constraint — they are
//!   what legitimizes interleaved orders like the decimal adder's carry
//!   chain) in the current variable order.
//! * **Single occurrence**: no path of χ tests an output variable twice
//!   (trivially true in a sound ROBDD, but checked independently here so a
//!   broken manager cannot mask it).
//! * **Partition**: for every output, ON/OFF/DC are pairwise disjoint and
//!   cover the whole input space.
//! * **Validity**: `∀X ∃Y. χ = 1` — every input admits at least one output
//!   word (Definition 2.3 guarantees it on construction; reductions must
//!   preserve it).
//!
//! A sixth lint, [`check_cascade_ready`], is deliberately *not* part of
//! [`check_cf`]: the Fig.-1 forced-output shape (exactly one 0-edge per
//! output node) is a precondition of cascade **cell extraction**, not of χ
//! itself. Constrained sifting keeps outputs below their *essential*
//! support only, so a legal interleaved order — and the reductions run in
//! it — can give an output node two live children while χ stays a perfect
//! narrowing of the specification; synthesis re-orders or reports a typed
//! [`ChoiceError`](bddcf_core::ChoiceError) when it actually matters.
//! Audit cascade inputs (and synthesized partitions) with
//! [`check_cascade_ready`]; audit reduction phase boundaries with
//! [`check_cf`].

use crate::{CheckReport, Layer};
use bddcf_core::{Cf, Role};
use std::collections::HashMap;

/// Runs every CF lint on `cf`. Needs `&mut` because partition and validity
/// checks build scratch BDDs in the shared manager.
pub fn check_cf(cf: &mut Cf) -> CheckReport {
    let mut report = CheckReport::new();
    ordering_rule(cf, &mut report);
    single_occurrence(cf, &mut report);
    partition(cf, &mut report);
    validity(cf, &mut report);
    report
}

/// Definition 2.4: `y_j` strictly below the essential support of its
/// function (needs `&mut Cf` — the incompatible-cofactor test builds
/// scratch BDDs).
fn ordering_rule(cf: &mut Cf, report: &mut CheckReport) {
    let isf = cf.isf().clone();
    for j in 0..cf.layout().num_outputs() {
        let essential = isf.essential_support_of_output(cf.manager_mut(), j);
        let mgr = cf.manager();
        let layout = cf.layout();
        let y = layout.output_var(j);
        let y_level = mgr.level_of(y);
        for var in essential {
            if mgr.level_of(var) >= y_level {
                report.push(
                    Layer::CfLints,
                    format!(
                        "Definition 2.4 violated: output {} (level {y_level}) is not \
                         strictly below essential support variable {} (level {})",
                        layout.var_name(y),
                        layout.var_name(var),
                        mgr.level_of(var)
                    ),
                );
            }
        }
    }
}

/// No output variable twice on any path of χ. Computed bottom-up: for each
/// node, the set of output variables occurring anywhere below it; a node
/// testing `y_j` with `y_j` already below it lies on a repeating path.
fn single_occurrence(cf: &Cf, report: &mut CheckReport) {
    let mgr = cf.manager();
    let layout = cf.layout();
    let m = layout.num_outputs();
    let words = m.div_ceil(64).max(1);

    let mut nodes = mgr.descendants(&[cf.root()]);
    // Deepest first, so children are always processed before parents.
    nodes.sort_by_key(|&n| std::cmp::Reverse(mgr.level_of_node(n)));
    let mut below: HashMap<bddcf_bdd::NodeId, Vec<u64>> = HashMap::new();
    for &n in &nodes {
        let mut set = vec![0u64; words];
        for child in [mgr.lo(n), mgr.hi(n)] {
            if let Some(child_set) = below.get(&child) {
                for (acc, w) in set.iter_mut().zip(child_set) {
                    *acc |= w;
                }
            }
        }
        if let Role::Output(j) = layout.role(mgr.var_of(n)) {
            if set[j / 64] >> (j % 64) & 1 == 1 {
                report.push(
                    Layer::CfLints,
                    format!(
                        "output variable {} occurs more than once on a path of χ",
                        layout.var_name(mgr.var_of(n))
                    ),
                );
            }
            set[j / 64] |= 1 << (j % 64);
        }
        below.insert(n, set);
    }
}

/// ON/OFF/DC partition the input space for every output.
fn partition(cf: &mut Cf, report: &mut CheckReport) {
    let isf = cf.isf().clone();
    if !isf.validate(cf.manager_mut()) {
        report.push(
            Layer::CfLints,
            "ON/OFF/DC sets do not partition the input space",
        );
    }
}

/// `∀X ∃Y. χ = 1`: the function admits an output word on every input.
fn validity(cf: &mut Cf, report: &mut CheckReport) {
    if !cf.is_fully_live() {
        report.push(
            Layer::CfLints,
            "χ is not fully live: some input admits no output word (∀X ∃Y χ = 1 violated)",
        );
    }
}

/// Is this χ a sound input for cascade cell extraction? Every reachable
/// output node must be forced (one 0-edge, the Fig.-1 shape) or covered
/// by the cascade choice map. Constrained sifting keeps outputs below
/// their *essential* support only, so a legal order may interleave
/// don't-care structure below an output and give it two live children;
/// such a node is fine as long as one child covers its live set. Only an
/// entangled node — no sound hard-wired choice — is a defect.
///
/// Not part of [`check_cf`]: an entangled node can legally appear after a
/// reduction in an interleaved order, and the remedy (re-order or
/// re-partition) belongs to the synthesis caller. Run this lint on what
/// cascade extraction is actually about to consume.
pub fn check_cascade_ready(cf: &mut Cf) -> CheckReport {
    let mut report = CheckReport::new();
    if cf.output_nodes_well_formed() {
        return report;
    }
    if let Err(node) = cf.cascade_output_choices() {
        report.push(
            Layer::CfLints,
            format!(
                "output node {node:?} of χ is entangled: two live children and \
                 neither covers its live set (no sound cascade choice)"
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    #[test]
    fn paper_example_is_clean() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        assert!(check_cf(&mut cf).is_clean());
    }

    #[test]
    fn reduced_paper_example_stays_clean() {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        cf.reduce_alg33_default();
        let report = check_cf(&mut cf);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn interleaved_order_with_resolvable_choices_is_cascade_ready() {
        use bddcf_bdd::Var;
        use bddcf_core::{CfLayout, IsfBdds};
        // y1 sits right below its essential support {x1,x2}, above x3/x4
        // which only steer the don't-care set (digit code 3 invalid). The
        // Fig.-1 forced shape breaks, but every two-live-children output
        // node is resolvable, so both lints must stay clean.
        let order = vec![Var(0), Var(1), Var(4), Var(2), Var(3), Var(5)];
        let mut cf = Cf::build_with_order(CfLayout::new(4, 2), &order, |mgr, layout| {
            let x: Vec<_> = (0..4).map(|i| mgr.var(layout.input_var(i))).collect();
            let a_invalid = mgr.and(x[0], x[1]);
            let b_invalid = mgr.and(x[2], x[3]);
            let invalid = mgr.or(a_invalid, b_invalid);
            let valid = mgr.not(invalid);
            let nx0 = mgr.not(x[0]);
            let y1 = mgr.and(nx0, x[1]);
            let y2 = mgr.xor(x[0], x[2]);
            let on = vec![mgr.and(valid, y1), mgr.and(valid, y2)];
            let dc = vec![invalid, invalid];
            IsfBdds::from_on_dc(mgr, on, dc)
        });
        assert!(!cf.output_nodes_well_formed(), "the order must interleave");
        let report = check_cf(&mut cf);
        assert!(report.is_clean(), "{report}");
        let ready = check_cascade_ready(&mut cf);
        assert!(ready.is_clean(), "{ready}");
    }
}
