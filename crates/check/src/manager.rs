//! Layer 1: ROBDD manager integrity.
//!
//! Thin adapter over [`BddManager::check_integrity`] (which lives in
//! `bddcf-bdd` because it needs private arena access) that renders the
//! typed violations into a [`CheckReport`].

use crate::{CheckReport, Layer};
use bddcf_bdd::BddManager;

/// Audits the manager's arena, unique table, variable permutation, and
/// operation caches. See [`BddManager::check_integrity`] for the exact
/// invariant list.
pub fn check_manager(mgr: &BddManager) -> CheckReport {
    let mut report = CheckReport::new();
    if let Err(violations) = mgr.check_integrity() {
        for violation in violations {
            report.push(Layer::Manager, violation.to_string());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_bdd::manager::TestCorruption;
    use bddcf_bdd::Var;

    #[test]
    fn clean_manager_passes() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let f = mgr.and(a, b);
        let _ = mgr.or(f, a);
        assert!(check_manager(&mgr).is_clean());
    }

    #[test]
    fn corrupted_manager_is_flagged() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(Var(0));
        let b = mgr.var(Var(1));
        let _ = mgr.xor(a, b);
        mgr.corrupt_for_testing(TestCorruption::RedundantNode);
        let report = check_manager(&mgr);
        assert!(!report.is_clean());
        assert!(report.findings().iter().all(|f| f.layer == Layer::Manager));
    }
}
