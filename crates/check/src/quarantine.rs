//! Panic isolation for batch workloads.
//!
//! A bug in one benchmark must not take down a whole `bddcf check` /
//! `bddcf inject` / bench batch. This module provides the containment
//! pieces:
//!
//! * [`run_quarantined`] wraps one benchmark's work in
//!   [`std::panic::catch_unwind`]; a panic becomes a [`Quarantine`] record
//!   (label + panic payload + last good checkpoint, if any) and the batch
//!   moves on to the next benchmark.
//! * [`quarantine_op`] wraps one operation against a live [`BddManager`];
//!   if the operation panics, the manager is [poisoned]
//!   (BddManager::poison) so every further budgeted operation returns
//!   [`Error::Poisoned`](bddcf_bdd::Error::Poisoned) instead of silently
//!   building on a possibly half-written arena.
//! * [`with_quiet_panics`] suppresses the default panic-hook backtrace
//!   spam for the duration of a batch, so one quarantined benchmark does
//!   not bury the report under stack traces.
//!
//! The workspace forbids `unsafe` code, so the poisoning state machine is
//! the *only* thing standing between a caught panic and reuse of a manager
//! whose invariants may no longer hold — which is why the flag is sticky
//! and checked at the root of every budgeted operation.

use bddcf_bdd::BddManager;
use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// A benchmark removed from a batch after panicking.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// The benchmark's display name.
    pub label: String,
    /// The panic payload, downcast to text when possible.
    pub payload: String,
    /// The last checkpoint written before the panic, when the workload was
    /// checkpointed — the restart point for a post-mortem resume.
    pub last_checkpoint: Option<PathBuf>,
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: panicked with {:?}", self.label, self.payload)?;
        match &self.last_checkpoint {
            Some(path) => write!(f, " (last good checkpoint: {})", path.display()),
            None => write!(f, " (no checkpoint written)"),
        }
    }
}

/// Renders a caught panic payload as text (`&str` and `String` payloads
/// verbatim, anything else a placeholder).
pub fn panic_payload_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs one benchmark's closure inside `catch_unwind`. On panic, returns a
/// [`Quarantine`] (with `last_checkpoint` unset — callers that checkpoint
/// fill it in) instead of unwinding into the batch loop.
///
/// The closure's captured state is considered lost on panic: anything that
/// must survive (e.g. a manager that should be poisoned rather than
/// dropped) belongs outside the closure — see [`quarantine_op`].
pub fn run_quarantined<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, Quarantine> {
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|payload| Quarantine {
        label: label.to_owned(),
        payload: panic_payload_text(payload.as_ref()),
        last_checkpoint: None,
    })
}

/// Runs one operation against a manager inside `catch_unwind`; if the
/// operation panics, the manager is [poisoned](BddManager::poison) before
/// the panic payload is returned, so the caller may keep the manager
/// around (for diagnostics, snapshots, …) but can never accidentally
/// compute with it again.
pub fn quarantine_op<R>(
    mgr: &mut BddManager,
    op: impl FnOnce(&mut BddManager) -> R,
) -> Result<R, String> {
    match panic::catch_unwind(AssertUnwindSafe(|| op(mgr))) {
        Ok(value) => Ok(value),
        Err(payload) => {
            mgr.poison();
            Err(panic_payload_text(payload.as_ref()))
        }
    }
}

/// Runs `f` with the default panic hook replaced by a silent one, so
/// quarantined panics inside a batch do not print backtraces. The previous
/// hook is restored afterwards, even if `f` itself panics.
///
/// The panic hook is process-global: use this once around a whole batch
/// (as the CLI does), not from concurrently running threads.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let saved = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(saved);
    match result {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// A deliberately panicking [`Benchmark`](bddcf_funcs::Benchmark): its ISF
/// construction panics before building anything. Batch harnesses append it
/// to prove that one poisoned entry quarantines without aborting the rest
/// of the batch (`bddcf crashtest --panic-probe`, and the quarantine tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct PanicProbe;

/// The panic message [`PanicProbe`] raises.
pub const PANIC_PROBE_MESSAGE: &str = "deliberate panic: quarantine probe";

impl bddcf_logic::MultiOracle for PanicProbe {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn respond(&self, _inputs: &[bool]) -> bddcf_logic::Response {
        bddcf_logic::Response::Value(0)
    }
}

impl bddcf_funcs::Benchmark for PanicProbe {
    fn name(&self) -> String {
        "panic probe".to_owned()
    }

    fn build_isf(
        &self,
        _mgr: &mut BddManager,
        _layout: &bddcf_core::CfLayout,
    ) -> bddcf_core::IsfBdds {
        panic!("{PANIC_PROBE_MESSAGE}");
    }

    fn dc_ratio(&self) -> f64 {
        0.0
    }
}

/// A deliberately *finding-producing* [`Benchmark`](bddcf_funcs::Benchmark):
/// its function is `f = x₀`, but its preferred order puts the output
/// variable **above** `x₀`, violating Definition 2.4 (outputs strictly
/// below their essential support). The CF lints must report it — without
/// any panic — so batch harnesses append it (`bddcf check
/// --finding-probe`) to prove the findings exit path (exit code 1) end to
/// end.
#[derive(Clone, Copy, Debug, Default)]
pub struct FindingProbe;

impl bddcf_logic::MultiOracle for FindingProbe {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn respond(&self, inputs: &[bool]) -> bddcf_logic::Response {
        bddcf_logic::Response::Value(u64::from(inputs[0]))
    }
}

impl bddcf_funcs::Benchmark for FindingProbe {
    fn name(&self) -> String {
        "finding probe".to_owned()
    }

    fn build_isf(
        &self,
        mgr: &mut BddManager,
        layout: &bddcf_core::CfLayout,
    ) -> bddcf_core::IsfBdds {
        let x0 = mgr.var(layout.input_var(0));
        bddcf_core::IsfBdds::from_on_dc(mgr, vec![x0], vec![bddcf_bdd::FALSE])
    }

    fn dc_ratio(&self) -> f64 {
        0.0
    }

    fn preferred_order(&self) -> Option<Vec<bddcf_bdd::Var>> {
        let layout = bddcf_funcs::Benchmark::layout(self);
        // Output above its essential support: the Definition 2.4 lint
        // must flag this.
        Some(vec![layout.output_var(0), layout.input_var(0)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_bdd::{Error as BudgetError, Var, FALSE, TRUE};
    use bddcf_funcs::build_isf_pieces;

    #[test]
    fn quarantined_panic_is_contained_and_labelled() {
        let out =
            with_quiet_panics(|| run_quarantined("bad one", || -> usize { panic!("boom {}", 42) }));
        let q = out.expect_err("must quarantine");
        assert_eq!(q.label, "bad one");
        assert_eq!(q.payload, "boom 42");
        assert!(q.last_checkpoint.is_none());
        // A healthy closure passes through untouched.
        let ok = run_quarantined("good one", || 7usize).expect("no panic");
        assert_eq!(ok, 7);
    }

    #[test]
    fn panicked_manager_is_poisoned_and_refuses_ops() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(Var(0));
        let err = with_quiet_panics(|| {
            quarantine_op(&mut mgr, |m| {
                let _ = m.var(Var(1));
                panic!("mid-operation failure");
            })
        })
        .expect_err("must report the panic");
        assert_eq!(err, "mid-operation failure");
        assert!(mgr.is_poisoned());
        assert_eq!(mgr.try_mk(Var(2), FALSE, TRUE), Err(BudgetError::Poisoned));
        assert_eq!(mgr.try_and(a, a), Err(BudgetError::Poisoned));
        // Poisoning survives a snapshot round trip.
        let restored =
            BddManager::from_snapshot_bytes(&mgr.snapshot_bytes()).expect("snapshot round trip");
        assert!(restored.is_poisoned());
    }

    #[test]
    fn panic_probe_panics_in_build_and_batch_survives() {
        let probe = PanicProbe;
        let quarantined = with_quiet_panics(|| {
            run_quarantined("panic probe", || {
                let (mgr, layout, isf) = build_isf_pieces(&probe);
                (mgr.arena_len(), layout.num_vars(), isf.num_outputs())
            })
        })
        .expect_err("probe must panic");
        assert!(quarantined.payload.contains("quarantine probe"));
    }
}
