//! Layer 5, part 2: the artifact lint pipeline (`bddcf lint`).
//!
//! [`lint_benchmark`] drives the standard flow for one registry
//! benchmark — build, reduce, partitioned synthesis — then, for every
//! cascade of the realization, *emits both artifact formats and analyzes
//! the artifacts* instead of the in-memory objects:
//!
//! 1. Verilog: emit → parse → lower to the netlist IR → structural
//!    lints → reconstruct a cascade → byte-faithful re-emission →
//!    Theorem-3.1 rail recount → symbolic `χ_netlist ⇒ χ_spec` proof.
//! 2. Cascade text: write → read → lower → the same battery.
//!
//! A clean report certifies the whole translation chain, not just the
//! synthesizer: any emitter, parser, or format drift shows up as a
//! `TV…` finding with the artifact file and line.

use crate::netlist::{
    cascade_structural_diff, cascade_to_netlist, check_netlist_refinement, lint_netlist_with_spec,
    lint_rail_bounds, netlist_from_verilog, netlist_to_cascade, LintReport, TV001_PARSE,
    TV002_ROUNDTRIP, TV003_RECONSTRUCTION,
};
use bddcf_cascade::{try_synthesize_partitioned, Cascade, CascadeOptions};
use bddcf_core::{Alg33Options, Cf};
use bddcf_funcs::{build_isf_pieces, Benchmark};
use bddcf_io::{
    cascade_to_verilog, is_valid_module_name, parse_verilog, read_cascade, write_cascade,
};

/// Knobs for [`lint_benchmark`].
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Iteration cap for the reduction fixpoint.
    pub max_iterations: usize,
    /// Algorithm 3.3 tuning.
    pub alg33: Alg33Options,
    /// Cell constraints for synthesis.
    pub cascade: CascadeOptions,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_iterations: 4,
            alg33: Alg33Options::default(),
            cascade: CascadeOptions::default(),
        }
    }
}

/// Outcome of [`lint_benchmark`] for one registry function.
#[derive(Debug)]
pub struct BenchmarkLint {
    /// The benchmark's display name.
    pub label: String,
    /// All findings over every emitted artifact (empty = the translation
    /// chain is sound on this function).
    pub report: LintReport,
    /// Artifacts analyzed (two per cascade: `.v` and `.cas`).
    pub artifacts: usize,
}

/// A Verilog-safe artifact stem for a benchmark label.
fn slug(label: &str) -> String {
    let mut s: String = label
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if !is_valid_module_name(&s) {
        s = format!("m_{s}");
    }
    s
}

/// 1-based line of the first difference between two texts (0 when one is
/// a strict prefix of the other at a line boundary).
fn first_diff_line(a: &str, b: &str) -> usize {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return i + 1;
        }
    }
    if a.lines().count() == b.lines().count() {
        0
    } else {
        a.lines().count().min(b.lines().count()) + 1
    }
}

/// Builds, reduces, and synthesizes `benchmark`, then runs the full
/// artifact-lint battery ([`lint_cascade_artifacts`]) over every cascade
/// of the partitioned realization.
pub fn lint_benchmark(benchmark: &dyn Benchmark, options: &LintOptions) -> BenchmarkLint {
    let mut report = LintReport::new();
    let (mgr, layout, isf) = build_isf_pieces(benchmark);
    let stem_base = slug(&benchmark.name());

    // The same §5.1 bi-partition `bddcf check` uses.
    let m = layout.num_outputs();
    #[allow(clippy::single_range_in_vec_init)] // the partition API takes lists of ranges
    let initial = if m <= 1 {
        vec![0..m]
    } else {
        vec![0..m.div_ceil(2), m.div_ceil(2)..m]
    };
    let alg33 = options.alg33.clone();
    let max_iterations = options.max_iterations;
    let mut artifacts = 0usize;
    match try_synthesize_partitioned(&mgr, &layout, &isf, &initial, &options.cascade, |part| {
        part.reduce_to_fixpoint(&alg33, max_iterations);
    }) {
        Ok(multi) => {
            for (i, (cascade, part)) in multi.cascades.iter().zip(&multi.parts).enumerate() {
                let mut part = part.clone();
                let stem = format!("{stem_base}_p{i}");
                report.extend(lint_cascade_artifacts(cascade, &mut part, &stem));
                artifacts += 2;
            }
        }
        Err((range, err)) => {
            report.push(
                &stem_base,
                0,
                TV001_PARSE,
                format!(
                    "no artifact to lint: output {} cannot be synthesized under \
                     the cell constraints: {err}",
                    range.start
                ),
            );
        }
    }
    BenchmarkLint {
        label: benchmark.name(),
        report,
        artifacts,
    }
}

/// Emits both artifact formats for one cascade and runs every artifact
/// analysis on them. `cf` is the (reduced) specification the cascade was
/// synthesized from; `stem` names the artifacts (`<stem>.v`,
/// `<stem>.cas`).
pub fn lint_cascade_artifacts(cascade: &Cascade, cf: &mut Cf, stem: &str) -> LintReport {
    let mut report = LintReport::new();
    let module = slug(stem);

    // Inputs χ no longer depends on (reductions or widened-benchmark
    // padding): cells still consume those layout levels, so address bits
    // fed by them are expected to be vacuous — not NL007 defects.
    let live = cf.support_inputs();
    let spec_vacuous: Vec<usize> = (0..cf.layout().num_inputs())
        .filter(|i| !live.contains(i))
        .collect();

    // --- The Verilog artifact ---------------------------------------
    let vfile = format!("{stem}.v");
    match cascade_to_verilog(cascade, &module) {
        Err(e) => report.push(&vfile, 0, TV001_PARSE, format!("emission failed: {e}")),
        Ok(text) => match parse_verilog(&text) {
            Err(e) => report.push(&vfile, e.line, TV001_PARSE, e.message),
            Ok(parsed) => {
                let (net, lowering) = netlist_from_verilog(&parsed, &vfile);
                report.extend(lowering);
                report.extend(lint_netlist_with_spec(&net, &vfile, &spec_vacuous));
                // The artifact contains only the live cells; the rail
                // recount runs on the full cascade (whose cell boundaries
                // cover every layout level), and the reconstruction must
                // match the cascade with no-op cells pruned.
                report.extend(lint_rail_bounds(cascade, cf, &vfile));
                let reference = cascade.without_noop_cells();
                match netlist_to_cascade(&net, &vfile) {
                    Ok(rebuilt) => {
                        if let Some(diff) = cascade_structural_diff(&reference, &rebuilt) {
                            report.push(
                                &vfile,
                                0,
                                TV003_RECONSTRUCTION,
                                format!(
                                    "reconstructed cascade differs from the synthesized \
                                     one: {diff}"
                                ),
                            );
                        }
                        match cascade_to_verilog(&rebuilt, &module) {
                            Ok(second) if second == text => {}
                            Ok(second) => report.push(
                                &vfile,
                                first_diff_line(&text, &second),
                                TV002_ROUNDTRIP,
                                "emit → parse → re-emit is not byte-faithful",
                            ),
                            Err(e) => report.push(
                                &vfile,
                                0,
                                TV001_PARSE,
                                format!("re-emission failed: {e}"),
                            ),
                        }
                    }
                    Err(r) => report.extend(r),
                }
                report.extend(check_netlist_refinement(&net, cf, &vfile));
            }
        },
    }

    // --- The cascade-text artifact ----------------------------------
    let casfile = format!("{stem}.cas");
    let cas_text = write_cascade(cascade);
    match read_cascade(&cas_text) {
        Err(e) => report.push(&casfile, e.line, TV001_PARSE, e.message),
        Ok(loaded) => {
            let second = write_cascade(&loaded);
            if second != cas_text {
                report.push(
                    &casfile,
                    first_diff_line(&cas_text, &second),
                    TV002_ROUNDTRIP,
                    "write → read → re-write is not byte-faithful",
                );
            }
            if let Some(diff) = cascade_structural_diff(cascade, &loaded) {
                report.push(
                    &casfile,
                    0,
                    TV003_RECONSTRUCTION,
                    format!("loaded cascade differs from the synthesized one: {diff}"),
                );
            }
            let net = cascade_to_netlist(&loaded, stem);
            report.extend(lint_netlist_with_spec(&net, &casfile, &spec_vacuous));
            report.extend(check_netlist_refinement(&net, cf, &casfile));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_funcs::RadixConverter;

    #[test]
    fn small_converter_artifacts_lint_clean() {
        let lint = lint_benchmark(&RadixConverter::new(3, 2), &LintOptions::default());
        assert!(lint.report.is_clean(), "{}", lint.report);
        assert!(lint.artifacts >= 2, "at least one cascade, two artifacts");
    }

    #[test]
    fn slugs_are_valid_module_names() {
        for label in ["3-5 RNS", "12 words", "1-digit decimal adder", ""] {
            assert!(bddcf_io::is_valid_module_name(&slug(label)), "{label:?}");
        }
    }
}
