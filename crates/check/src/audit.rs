//! Artifact audit for *received* artifacts (serving-layer cache hits and
//! the chaos harness).
//!
//! [`crate::lint_cascade_artifacts`] validates artifacts the process just
//! emitted itself. The serving layer has the dual problem: it holds
//! artifact **text** that crossed a trust boundary — a cache entry that
//! may have rotted, a response recovered from a crashed daemon's spool —
//! plus the specification it claims to realize, and must decide whether to
//! vouch for it. [`audit_artifact_text`] re-derives everything from the
//! text alone:
//!
//! 1. the cascade text parses ([`TV001`](crate::netlist::TV001_PARSE)) and
//!    re-emits byte-faithfully ([`TV002`](crate::netlist::TV002_ROUNDTRIP));
//! 2. the Verilog text equals the canonical emission of the parsed cascade
//!    (same catalog ids — the pair must describe *one* circuit);
//! 3. the parsed cascade's χ refines the specification χ
//!    ([`TV004`](crate::netlist::TV004_REFINEMENT)) — the same symbolic
//!    `χ_netlist ⇒ χ_spec` proof `bddcf lint` runs, against a χ built
//!    fresh from the spec, so a stale or corrupted artifact can never be
//!    served as if it still answered the request.

use crate::netlist::{
    cascade_to_netlist, check_netlist_refinement, LintReport, TV001_PARSE, TV002_ROUNDTRIP,
};
use bddcf_core::Cf;
use bddcf_io::{cascade_to_verilog, read_cascade, write_cascade};

/// Audits received artifact text against a freshly built specification χ.
///
/// `spec_cf` must be the *unreduced* `BDD_for_CF` of the request (any
/// correctly reduced artifact refines it, since reductions only complete
/// don't cares). `stem` labels findings (e.g. `"cache:<hash>"`).
pub fn audit_artifact_text(
    cascade_text: &str,
    verilog_text: &str,
    module: &str,
    spec_cf: &mut Cf,
    stem: &str,
) -> LintReport {
    let mut report = LintReport::new();
    let cas_file = format!("{stem}.cas");
    let v_file = format!("{stem}.v");

    // 1. The cascade text is the canonical serialization of a real cascade.
    let cascade = match read_cascade(cascade_text) {
        Ok(cascade) => cascade,
        Err(e) => {
            report.push(&cas_file, 0, TV001_PARSE, format!("cascade text: {e}"));
            return report;
        }
    };
    let reemitted = write_cascade(&cascade);
    if reemitted != cascade_text {
        report.push(
            &cas_file,
            0,
            TV002_ROUNDTRIP,
            "cascade text is not the canonical emission of the cascade it parses to",
        );
    }

    // 2. The Verilog is the canonical emission of the *same* cascade.
    match cascade_to_verilog(&cascade, module) {
        Ok(expected) => {
            if expected != verilog_text {
                report.push(
                    &v_file,
                    0,
                    TV002_ROUNDTRIP,
                    "verilog text differs from the canonical emission of the cascade artifact",
                );
            }
        }
        Err(e) => {
            report.push(&v_file, 0, TV001_PARSE, format!("verilog re-emission: {e}"));
        }
    }

    // 3. Refinement: χ_netlist ⇒ χ_spec on the BDDs.
    let net = cascade_to_netlist(&cascade, module);
    report.extend(check_netlist_refinement(&net, spec_cf, &v_file));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::TruthTable;

    fn paper_artifacts() -> (Cf, String, String) {
        use bddcf_cascade::{synthesize, CascadeOptions};

        let table = TruthTable::paper_table1();
        let mut cf = Cf::from_truth_table(&table);
        cf.reduce_to_fixpoint(&Default::default(), 4);
        let cascade = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .expect("paper function synthesizes");
        let cas = write_cascade(&cascade);
        let v = cascade_to_verilog(&cascade, "m_audit").expect("emit");
        (Cf::from_truth_table(&table), cas, v)
    }

    #[test]
    fn clean_artifacts_audit_clean() {
        let (mut spec_cf, cas, v) = paper_artifacts();
        let report = audit_artifact_text(&cas, &v, "m_audit", &mut spec_cf, "audit");
        assert!(report.is_clean(), "{:?}", report.findings());
    }

    #[test]
    fn artifact_for_the_wrong_function_is_caught() {
        use bddcf_cascade::{synthesize, CascadeOptions};
        use bddcf_logic::Ternary;

        // Two fully specified 2-input functions that differ on care
        // points: AND and OR. A cascade realizing AND can never refine
        // the OR specification.
        let mut and_table = TruthTable::new(2, 1);
        let mut or_table = TruthTable::new(2, 1);
        for row in 0..4usize {
            let (a, b) = (row & 1 == 1, row >> 1 & 1 == 1);
            and_table.set(row, 0, Ternary::from_bool(a && b));
            or_table.set(row, 0, Ternary::from_bool(a || b));
        }
        let mut and_cf = Cf::from_truth_table(&and_table);
        let cascade = synthesize(
            &mut and_cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .expect("AND synthesizes");
        let cas = write_cascade(&cascade);
        let v = cascade_to_verilog(&cascade, "m_audit").expect("emit");
        let mut or_cf = Cf::from_truth_table(&or_table);
        let report = audit_artifact_text(&cas, &v, "m_audit", &mut or_cf, "audit");
        assert!(
            !report.is_clean(),
            "an AND cascade must not audit clean against an OR spec"
        );
    }

    #[test]
    fn mismatched_verilog_is_caught() {
        let (mut spec_cf, cas, v) = paper_artifacts();
        let wrong_v = v.replace("m_audit", "m_other");
        let report = audit_artifact_text(&cas, &wrong_v, "m_audit", &mut spec_cf, "audit");
        assert!(report.has(TV002_ROUNDTRIP), "{:?}", report.findings());
    }

    #[test]
    fn unparsable_text_is_a_tv001() {
        let (mut spec_cf, _, v) = paper_artifacts();
        let report = audit_artifact_text("not a cascade", &v, "m_audit", &mut spec_cf, "audit");
        assert!(report.has(TV001_PARSE));
    }
}
