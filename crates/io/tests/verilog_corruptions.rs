//! Corruption table for the Verilog artifact parser: every entry plants
//! one byte-level defect in a known-good emitted module and asserts a
//! *typed, line-numbered* [`VerilogParseError`] — the same contract the
//! PLA and cascade-text readers honor. A parser that starts panicking,
//! mis-numbering lines, or silently accepting garbage fails here.

use bddcf_cascade::{synthesize, CascadeOptions, Segmentation};
use bddcf_core::Cf;
use bddcf_io::{cascade_to_verilog, parse_verilog, VerilogParseError};
use bddcf_logic::TruthTable;

fn clean_artifact() -> String {
    let table = TruthTable::paper_table1();
    let mut cf = Cf::from_truth_table(&table);
    let cascade = synthesize(
        &mut cf,
        &CascadeOptions {
            max_cell_inputs: 4,
            max_cell_outputs: 4,
            segmentation: Segmentation::MinCells,
        },
    )
    .expect("paper_table1 fits a 4-input cell");
    cascade_to_verilog(&cascade, "m").expect("valid module name")
}

/// One corruption: replace the first `from` with `to`, expect a parse
/// error whose message contains `msg` and whose line is 0 (end of input)
/// or within two lines after the corruption site.
struct Corruption {
    name: &'static str,
    from: &'static str,
    to: &'static str,
    msg: &'static str,
}

const TABLE: &[Corruption] = &[
    Corruption {
        name: "digit-leading module name",
        from: "module m (",
        to: "module 0m (",
        msg: "module name",
    },
    Corruption {
        name: "misspelled port direction",
        from: "input  wire",
        to: "inpt  wire",
        msg: "expected `input` or `output`",
    },
    Corruption {
        name: "wire range not dropping to zero",
        from: "wire [3:0] addr0",
        to: "wire [3:2] addr0",
        msg: "must be [N:0]",
    },
    Corruption {
        name: "missing semicolon after declaration",
        from: "reg [1:0] data0;",
        to: "reg [1:0] data0",
        msg: "expected `;`",
    },
    Corruption {
        name: "unsized case label",
        from: "4'd4: data0",
        to: "4: data0",
        msg: "case label",
    },
    Corruption {
        name: "sized literal without the d base",
        from: "4'd4: data0",
        to: "4'x4: data0",
        msg: "expected `d` after `'`",
    },
    Corruption {
        name: "non-numeric bit index",
        from: "assign y[0]",
        to: "assign y[z]",
        msg: "",
    },
    Corruption {
        name: "unknown module item",
        from: "  assign y[0]",
        to: "  assgin y[0]",
        msg: "expected `wire`, `reg`, `always`, `assign`, or `endmodule`",
    },
    Corruption {
        name: "trailing tokens after endmodule",
        from: "endmodule",
        to: "endmodule\nwire [0:0] late;",
        msg: "trailing tokens",
    },
];

#[test]
fn every_corruption_yields_a_typed_line_numbered_error() {
    let clean = clean_artifact();
    assert!(parse_verilog(&clean).is_ok(), "baseline must parse");
    for c in TABLE {
        assert!(
            clean.contains(c.from),
            "{}: anchor {:?} missing",
            c.name,
            c.from
        );
        let anchor = clean
            .lines()
            .position(|l| l.contains(c.from))
            .expect("anchor line exists")
            + 1;
        let corrupted = clean.replacen(c.from, c.to, 1);
        let e: VerilogParseError =
            parse_verilog(&corrupted).expect_err(&format!("{}: corruption must not parse", c.name));
        assert!(
            e.message.contains(c.msg),
            "{}: message {:?} lacks {:?}",
            c.name,
            e.message,
            c.msg
        );
        assert!(
            e.line == 0 || (anchor..=anchor + 2).contains(&e.line),
            "{}: error line {} far from corruption at line {anchor} ({})",
            c.name,
            e.line,
            e.message
        );
    }
}

#[test]
fn truncation_at_every_quarter_fails_with_a_bounded_line() {
    let clean = clean_artifact();
    for cut in [clean.len() / 4, clean.len() / 2, 3 * clean.len() / 4] {
        let e = parse_verilog(&clean[..cut]).expect_err("truncation must not parse");
        assert!(
            e.line <= clean[..cut].lines().count(),
            "cut {cut}: line {} out of range ({})",
            e.line,
            e.message
        );
    }
}

#[test]
fn error_display_carries_the_line() {
    let e = parse_verilog("module 0m ();").expect_err("bad name");
    let rendered = e.to_string();
    assert!(rendered.contains("line 1"), "{rendered}");
}
