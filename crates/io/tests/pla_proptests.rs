//! Property tests for the PLA layer: arbitrary explicit ISFs written and
//! re-parsed must mean the same function, and arbitrary cube files must
//! never panic the parser.

use bddcf_io::{parse_pla, write_pla};
use bddcf_logic::{Ternary, TruthTable};
use proptest::prelude::*;

fn arb_table(n: usize, m: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(0u8..3, (1 << n) * m).prop_map(move |digits| {
        let mut t = TruthTable::new(n, m);
        for r in 0..1 << n {
            for j in 0..m {
                t.set(
                    r,
                    j,
                    match digits[r * m + j] {
                        0 => Ternary::Zero,
                        1 => Ternary::One,
                        _ => Ternary::DontCare,
                    },
                );
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_parse_roundtrip_preserves_semantics(table in arb_table(4, 2)) {
        let text = write_pla(&table, None);
        let pla = parse_pla(&text).expect("self-written PLA parses");
        let mut cf = pla.to_cf().expect("minterm PLAs cannot conflict");
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            for w in 0..4u64 {
                let expect = (0..2).all(|j| table.get(r, j).admits(w >> j & 1 == 1));
                prop_assert_eq!(cf.admits(&input, w), expect, "row {} word {:02b}", r, w);
            }
        }
    }

    #[test]
    fn parser_never_panics_on_random_cube_soup(
        cubes in prop::collection::vec(
            (prop::collection::vec(0u8..4, 3), prop::collection::vec(0u8..4, 2)),
            0..12
        )
    ) {
        let mut text = String::from(".i 3\n.o 2\n");
        for (ins, outs) in &cubes {
            for &c in ins {
                text.push(match c { 0 => '0', 1 => '1', 2 => '-', _ => 'z' });
            }
            text.push(' ');
            for &c in outs {
                text.push(match c { 0 => '0', 1 => '1', 2 => '-', _ => '9' });
            }
            text.push('\n');
        }
        text.push_str(".e\n");
        // Must return Ok or a structured error — never panic.
        let _ = parse_pla(&text);
    }

    #[test]
    fn valid_cubes_always_build_or_conflict(
        cubes in prop::collection::vec(
            (prop::collection::vec(0u8..3, 3), prop::collection::vec(0u8..3, 2)),
            1..10
        )
    ) {
        let mut text = String::from(".i 3\n.o 2\n");
        for (ins, outs) in &cubes {
            for &c in ins {
                text.push(['0', '1', '-'][c as usize]);
            }
            text.push(' ');
            for &c in outs {
                text.push(['0', '1', '-'][c as usize]);
            }
            text.push('\n');
        }
        text.push_str(".e\n");
        let pla = parse_pla(&text).expect("well-formed cube file");
        let mut mgr = pla.layout().new_manager();
        match pla.build_isf(&mut mgr) {
            Ok(isf) => prop_assert!(isf.validate(&mut mgr)),
            Err(bddcf_io::PlaError::Conflict { .. }) => {} // legitimate
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}
