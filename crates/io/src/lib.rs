//! Interchange formats for the `bddcf` workspace.
//!
//! * [`pla`] — Espresso-style PLA files: the lingua franca of
//!   two-level logic synthesis, with don't cares. Parsing yields an
//!   incompletely specified multiple-output function ready for
//!   [`Cf`](bddcf_core::Cf) construction; writing serializes explicit
//!   truth tables and completions.
//! * [`verilog`] — synthesizable Verilog emission for LUT cascades: one
//!   ROM process per cell, rails as internal wires.
//! * [`verilog_parse`] — the matching reader: parses the emitted
//!   Verilog-2001 subset back into an AST so artifacts can be statically
//!   validated (`bddcf lint`) instead of trusted write-only.
//! * [`cascade_text`] — a plain-text save/load format for synthesized
//!   cascades (generate tables once, ship them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade_text;
pub mod pla;
pub mod verilog;
pub mod verilog_parse;

pub use cascade_text::{emit_cascade, read_cascade, write_cascade, CascadeTextError};
pub use pla::{parse_pla, write_pla, Pla, PlaError};
pub use verilog::{cascade_to_verilog, emit_verilog, is_valid_module_name, VerilogEmitError};
pub use verilog_parse::{parse_verilog, VerilogModule, VerilogParseError};
