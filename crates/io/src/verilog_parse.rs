//! Parser for the Verilog-2001 subset `emit_verilog` produces.
//!
//! The emitters in this crate were write-only until PR 5: nothing ever read
//! an artifact back, so an emitter bug would ship silently even though
//! `bddcf check` passed on the in-memory cascade. This module closes the
//! synthesize → emit → re-read loop: it parses the emitted subset —
//! `module` with one input and one output bus, `wire` declarations with
//! concatenation/slice initializers, `reg` declarations, `always @*`
//! combinational `case` ROMs, and single-bit `assign`s — into a small AST
//! that `bddcf_check::netlist` lowers into a netlist IR for structural
//! lints and a BDD-based translation-validation proof.
//!
//! Errors are typed and line-numbered ([`VerilogParseError`]), mirroring
//! the PLA and cascade-text parsers.

use std::fmt;

/// Parse failure: 1-based line plus a description (line 0 = end of input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogParseError {
    /// 1-based line of the problem (0 = end of input).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerilogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogParseError {}

fn err(line: usize, message: impl Into<String>) -> VerilogParseError {
    VerilogParseError {
        line,
        message: message.into(),
    }
}

/// One bit of a named bus, e.g. `x[3]` or `data0[1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitRef {
    /// Bus name.
    pub bus: String,
    /// Bit index.
    pub index: usize,
}

/// Right-hand side of a `wire` initializer or `assign`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// `{a[1], b[0], ...}` — parts as written, MSB first.
    Concat(Vec<BitRef>),
    /// `bus[hi:lo]` — a contiguous slice.
    Slice {
        /// Source bus name.
        bus: String,
        /// High bit (inclusive).
        hi: usize,
        /// Low bit (inclusive).
        lo: usize,
    },
    /// `bus[i]` — a single bit.
    Bit(BitRef),
}

/// One explicit `case` arm: `W'dADDR: target = W'dWORD;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RomArm {
    /// 1-based source line of the arm.
    pub line: usize,
    /// The matched address value.
    pub address: u64,
    /// Declared width of the address literal.
    pub addr_width: usize,
    /// The assigned data word.
    pub word: u64,
    /// Declared width of the data literal.
    pub word_width: usize,
}

/// An `always @* begin case (addr) … endcase end` ROM process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RomBlock {
    /// 1-based line of the `always`.
    pub line: usize,
    /// The `reg` bus every arm assigns.
    pub target: String,
    /// The bus scrutinized by the `case`.
    pub addr: String,
    /// Explicit arms in source order.
    pub arms: Vec<RomArm>,
    /// The `default:` word, when present, with its line.
    pub default: Option<(usize, u64)>,
}

/// A module-body item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerilogItem {
    /// `wire [w-1:0] name;` or `wire [w-1:0] name = expr;`
    Wire {
        /// 1-based source line.
        line: usize,
        /// Bus name.
        name: String,
        /// Bus width in bits.
        width: usize,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `reg [w-1:0] name;`
    Reg {
        /// 1-based source line.
        line: usize,
        /// Bus name.
        name: String,
        /// Bus width in bits.
        width: usize,
    },
    /// A combinational `case` ROM.
    Rom(RomBlock),
    /// `assign bus[i] = expr;`
    Assign {
        /// 1-based source line.
        line: usize,
        /// Assigned bit.
        target: BitRef,
        /// Driven value.
        value: Expr,
    },
}

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortDir {
    /// `input wire [..:0]`.
    Input,
    /// `output wire [..:0]`.
    Output,
}

/// One module port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// 1-based source line.
    pub line: usize,
    /// Direction.
    pub dir: PortDir,
    /// Bus name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
}

/// A parsed module of the emitted subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogModule {
    /// Module name.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<VerilogItem>,
}

impl VerilogModule {
    /// The single input port, when the module has exactly one.
    pub fn input_port(&self) -> Option<&Port> {
        let mut inputs = self.ports.iter().filter(|p| p.dir == PortDir::Input);
        match (inputs.next(), inputs.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }

    /// The single output port, when the module has exactly one.
    pub fn output_port(&self) -> Option<&Port> {
        let mut outputs = self.ports.iter().filter(|p| p.dir == PortDir::Output);
        match (outputs.next(), outputs.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    /// Plain decimal number.
    Number(u64),
    /// Sized literal `W'dN`.
    Sized(usize, u64),
    Punct(char),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number(n) => write!(f, "`{n}`"),
            Tok::Sized(w, n) => write!(f, "`{w}'d{n}`"),
            Tok::Punct(c) => write!(f, "`{c}`"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<(usize, Tok)>, VerilogParseError> {
    let mut tokens = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let code = raw.split("//").next().unwrap_or("");
        let bytes: Vec<char> = code.chars().collect();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let c = bytes[pos];
            if c.is_whitespace() {
                pos += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = pos;
                while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == '_')
                {
                    pos += 1;
                }
                tokens.push((line, Tok::Ident(bytes[start..pos].iter().collect())));
            } else if c.is_ascii_digit() {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let digits: String = bytes[start..pos].iter().collect();
                let value: u64 = digits
                    .parse()
                    .map_err(|e| err(line, format!("number {digits:?}: {e}")))?;
                if pos < bytes.len() && bytes[pos] == '\'' {
                    // Sized literal: W'dN (only decimal, as emitted).
                    pos += 1;
                    if pos >= bytes.len() || bytes[pos] != 'd' {
                        return Err(err(line, "expected `d` after `'` in sized literal"));
                    }
                    pos += 1;
                    let vstart = pos;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                    if vstart == pos {
                        return Err(err(line, "sized literal has no value digits"));
                    }
                    let vdigits: String = bytes[vstart..pos].iter().collect();
                    let v: u64 = vdigits
                        .parse()
                        .map_err(|e| err(line, format!("sized literal {vdigits:?}: {e}")))?;
                    let width = usize::try_from(value)
                        .map_err(|_| err(line, format!("literal width {value} too large")))?;
                    tokens.push((line, Tok::Sized(width, v)));
                } else {
                    tokens.push((line, Tok::Number(value)));
                }
            } else if "()[]{}:;,=@*".contains(c) {
                tokens.push((line, Tok::Punct(c)));
                pos += 1;
            } else {
                return Err(err(line, format!("unexpected character {c:?}")));
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |(l, _)| *l)
    }

    fn next(&mut self, what: &str) -> Result<(usize, Tok), VerilogParseError> {
        let got = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| err(0, format!("unexpected end of input, expected {what}")))?;
        self.pos += 1;
        Ok(got)
    }

    fn expect_punct(&mut self, c: char) -> Result<usize, VerilogParseError> {
        let (line, tok) = self.next(&format!("`{c}`"))?;
        if tok == Tok::Punct(c) {
            Ok(line)
        } else {
            Err(err(line, format!("expected `{c}`, got {tok}")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<usize, VerilogParseError> {
        let (line, tok) = self.next(&format!("`{kw}`"))?;
        match tok {
            Tok::Ident(ref s) if s == kw => Ok(line),
            other => Err(err(line, format!("expected `{kw}`, got {other}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(usize, String), VerilogParseError> {
        let (line, tok) = self.next(what)?;
        match tok {
            Tok::Ident(s) => Ok((line, s)),
            other => Err(err(line, format!("expected {what}, got {other}"))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<(usize, u64), VerilogParseError> {
        let (line, tok) = self.next(what)?;
        match tok {
            Tok::Number(n) => Ok((line, n)),
            other => Err(err(line, format!("expected {what}, got {other}"))),
        }
    }

    /// `[hi:0]` (declarations) or `[hi:lo]` — returns (hi, lo).
    fn range(&mut self) -> Result<(usize, usize), VerilogParseError> {
        self.expect_punct('[')?;
        let (line, hi) = self.expect_number("range high bound")?;
        let hi = usize::try_from(hi).map_err(|_| err(line, "range bound too large"))?;
        self.expect_punct(':')?;
        let (line, lo) = self.expect_number("range low bound")?;
        let lo = usize::try_from(lo).map_err(|_| err(line, "range bound too large"))?;
        self.expect_punct(']')?;
        if lo > hi {
            return Err(err(line, format!("descending range [{hi}:{lo}]")));
        }
        Ok((hi, lo))
    }

    /// `bus[i]`.
    fn bit_ref(&mut self) -> Result<BitRef, VerilogParseError> {
        let (_, bus) = self.expect_ident("bus name")?;
        self.expect_punct('[')?;
        let (line, index) = self.expect_number("bit index")?;
        let index = usize::try_from(index).map_err(|_| err(line, "bit index too large"))?;
        self.expect_punct(']')?;
        Ok(BitRef { bus, index })
    }

    /// Concat, slice, or single bit.
    fn expr(&mut self) -> Result<Expr, VerilogParseError> {
        if self.peek() == Some(&Tok::Punct('{')) {
            self.expect_punct('{')?;
            let mut parts = Vec::new();
            if self.peek() != Some(&Tok::Punct('}')) {
                loop {
                    parts.push(self.bit_ref()?);
                    if self.peek() == Some(&Tok::Punct(',')) {
                        self.expect_punct(',')?;
                    } else {
                        break;
                    }
                }
            }
            self.expect_punct('}')?;
            return Ok(Expr::Concat(parts));
        }
        let (_, bus) = self.expect_ident("bus name")?;
        self.expect_punct('[')?;
        let (line, first) = self.expect_number("bit index")?;
        let first = usize::try_from(first).map_err(|_| err(line, "bit index too large"))?;
        if self.peek() == Some(&Tok::Punct(':')) {
            self.expect_punct(':')?;
            let (line, lo) = self.expect_number("slice low bound")?;
            let lo = usize::try_from(lo).map_err(|_| err(line, "slice bound too large"))?;
            self.expect_punct(']')?;
            if lo > first {
                return Err(err(line, format!("descending slice [{first}:{lo}]")));
            }
            return Ok(Expr::Slice { bus, hi: first, lo });
        }
        self.expect_punct(']')?;
        Ok(Expr::Bit(BitRef { bus, index: first }))
    }

    /// `always @* begin case (addr) arms… endcase end`.
    fn rom(&mut self, line: usize) -> Result<RomBlock, VerilogParseError> {
        self.expect_punct('@')?;
        self.expect_punct('*')?;
        self.expect_keyword("begin")?;
        self.expect_keyword("case")?;
        self.expect_punct('(')?;
        let (_, addr) = self.expect_ident("case scrutinee")?;
        self.expect_punct(')')?;
        let mut arms = Vec::new();
        let mut default = None;
        let mut target: Option<String> = None;
        loop {
            let (arm_line, tok) = self.next("case arm or `endcase`")?;
            match tok {
                Tok::Ident(ref s) if s == "endcase" => break,
                Tok::Ident(ref s) if s == "default" => {
                    self.expect_punct(':')?;
                    let (tline, t) = self.expect_ident("assignment target")?;
                    check_target(&mut target, &t, tline)?;
                    self.expect_punct('=')?;
                    let (_, word) = self.sized("default data word")?;
                    self.expect_punct(';')?;
                    if default.replace((arm_line, word.1)).is_some() {
                        return Err(err(arm_line, "duplicate `default` arm"));
                    }
                }
                Tok::Sized(addr_width, address) => {
                    self.expect_punct(':')?;
                    let (tline, t) = self.expect_ident("assignment target")?;
                    check_target(&mut target, &t, tline)?;
                    self.expect_punct('=')?;
                    let (word_width, word) = self.sized("case data word")?.1;
                    self.expect_punct(';')?;
                    arms.push(RomArm {
                        line: arm_line,
                        address,
                        addr_width,
                        word,
                        word_width,
                    });
                }
                other => {
                    return Err(err(
                        arm_line,
                        format!(
                            "expected a sized case label, `default`, or `endcase`, got {other}"
                        ),
                    ))
                }
            }
        }
        self.expect_keyword("end")?;
        let target = target.ok_or_else(|| err(line, "case block assigns nothing"))?;
        Ok(RomBlock {
            line,
            target,
            addr,
            arms,
            default,
        })
    }

    fn sized(&mut self, what: &str) -> Result<(usize, (usize, u64)), VerilogParseError> {
        let (line, tok) = self.next(what)?;
        match tok {
            Tok::Sized(w, v) => Ok((line, (w, v))),
            other => Err(err(line, format!("expected {what} (`W'dN`), got {other}"))),
        }
    }
}

fn check_target(
    target: &mut Option<String>,
    t: &str,
    line: usize,
) -> Result<(), VerilogParseError> {
    match target {
        None => {
            *target = Some(t.to_owned());
            Ok(())
        }
        Some(prev) if prev == t => Ok(()),
        Some(prev) => Err(err(
            line,
            format!("case block assigns both `{prev}` and `{t}`"),
        )),
    }
}

/// Parses a module of the emitted Verilog subset.
///
/// # Errors
///
/// Returns a line-numbered [`VerilogParseError`] on any construct outside
/// the subset, malformed syntax, or truncation.
pub fn parse_verilog(text: &str) -> Result<VerilogModule, VerilogParseError> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };

    p.expect_keyword("module")?;
    let (_, name) = p.expect_ident("module name")?;
    p.expect_punct('(')?;
    let mut ports = Vec::new();
    loop {
        let (line, tok) = p.next("port declaration or `)`")?;
        let dir = match tok {
            Tok::Ident(ref s) if s == "input" => PortDir::Input,
            Tok::Ident(ref s) if s == "output" => PortDir::Output,
            Tok::Punct(')') if !ports.is_empty() => break,
            other => {
                return Err(err(
                    line,
                    format!("expected `input` or `output`, got {other}"),
                ))
            }
        };
        p.expect_keyword("wire")?;
        let (hi, lo) = p.range()?;
        if lo != 0 {
            return Err(err(line, "port ranges must be [N:0]"));
        }
        let (_, pname) = p.expect_ident("port name")?;
        ports.push(Port {
            line,
            dir,
            name: pname,
            width: hi + 1,
        });
        match p.peek() {
            Some(Tok::Punct(',')) => {
                p.expect_punct(',')?;
            }
            Some(Tok::Punct(')')) => {
                p.expect_punct(')')?;
                break;
            }
            _ => return Err(err(p.line(), "expected `,` or `)` in port list")),
        }
    }
    p.expect_punct(';')?;

    let mut items = Vec::new();
    loop {
        let (line, tok) = p.next("module item or `endmodule`")?;
        match tok {
            Tok::Ident(ref s) if s == "endmodule" => break,
            Tok::Ident(ref s) if s == "wire" => {
                let (hi, lo) = p.range()?;
                if lo != 0 {
                    return Err(err(line, "wire ranges must be [N:0]"));
                }
                let (_, wname) = p.expect_ident("wire name")?;
                let init = if p.peek() == Some(&Tok::Punct('=')) {
                    p.expect_punct('=')?;
                    Some(p.expr()?)
                } else {
                    None
                };
                p.expect_punct(';')?;
                items.push(VerilogItem::Wire {
                    line,
                    name: wname,
                    width: hi + 1,
                    init,
                });
            }
            Tok::Ident(ref s) if s == "reg" => {
                let (hi, lo) = p.range()?;
                if lo != 0 {
                    return Err(err(line, "reg ranges must be [N:0]"));
                }
                let (_, rname) = p.expect_ident("reg name")?;
                p.expect_punct(';')?;
                items.push(VerilogItem::Reg {
                    line,
                    name: rname,
                    width: hi + 1,
                });
            }
            Tok::Ident(ref s) if s == "always" => {
                items.push(VerilogItem::Rom(p.rom(line)?));
            }
            Tok::Ident(ref s) if s == "assign" => {
                let target = p.bit_ref()?;
                p.expect_punct('=')?;
                let value = p.expr()?;
                p.expect_punct(';')?;
                items.push(VerilogItem::Assign {
                    line,
                    target,
                    value,
                });
            }
            other => {
                return Err(err(
                    line,
                    format!(
                        "expected `wire`, `reg`, `always`, `assign`, or `endmodule`, got {other}"
                    ),
                ))
            }
        }
    }
    if p.pos != p.tokens.len() {
        return Err(err(p.line(), "trailing tokens after `endmodule`"));
    }
    Ok(VerilogModule { name, ports, items })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::cascade_to_verilog;
    use bddcf_cascade::{synthesize, CascadeOptions};
    use bddcf_core::Cf;
    use bddcf_logic::TruthTable;

    fn sample_verilog() -> String {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        let cascade = synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .expect("fits");
        cascade_to_verilog(&cascade, "paper_table1").expect("valid module name")
    }

    #[test]
    fn parses_emitted_module() {
        let text = sample_verilog();
        let module = parse_verilog(&text).expect("emitted Verilog parses");
        assert_eq!(module.name, "paper_table1");
        assert_eq!(module.input_port().expect("one input").width, 4);
        assert_eq!(module.output_port().expect("one output").width, 2);
        let roms = module
            .items
            .iter()
            .filter(|i| matches!(i, VerilogItem::Rom(_)))
            .count();
        assert!(roms >= 1, "at least one ROM process");
    }

    #[test]
    fn case_arms_carry_lines_and_widths() {
        let text = sample_verilog();
        let module = parse_verilog(&text).expect("parses");
        for item in &module.items {
            if let VerilogItem::Rom(rom) = item {
                assert!(!rom.arms.is_empty());
                assert!(rom.default.is_some(), "emitter always writes a default");
                for arm in &rom.arms {
                    assert!(arm.line > 0);
                    assert!(arm.addr_width > 0);
                }
            }
        }
    }

    #[test]
    fn truncation_is_an_error() {
        let text = sample_verilog();
        // Cutting anywhere strictly inside the module must fail: either at
        // the cut line (mid-construct) or at line 0 (missing `endmodule`).
        for cut in [text.len() / 3, text.len() / 2, text.len() - 10] {
            let e = parse_verilog(&text[..cut]).expect_err("truncated input must fail");
            assert!(e.line <= text.lines().count(), "{e}");
        }
    }

    #[test]
    fn junk_is_rejected_with_line_numbers() {
        let e = parse_verilog(
            "module m (\n  input wire [3:0] x,\n  output wire [1:0] y\n);\n  junk;\nendmodule\n",
        )
        .expect_err("junk item");
        assert_eq!(e.line, 5);
        assert!(e.message.contains("junk"), "{e}");
    }

    #[test]
    fn comments_are_skipped() {
        let text = "// header\nmodule m ( // ports\n  input wire [0:0] x,\n  output wire [0:0] y\n);\n  assign y[0] = x[0];\nendmodule\n";
        let module = parse_verilog(text).expect("comments tolerated");
        assert_eq!(module.items.len(), 1);
    }
}
