//! A plain-text serialization of synthesized LUT cascades, so tables can
//! be generated once and shipped (or diffed) without re-running synthesis.
//!
//! Format (line oriented, `#` comments allowed):
//!
//! ```text
//! bddcf-cascade v1
//! inputs <n> outputs <m>
//! cell rails_in=<r> inputs=<i1,i2,..> rails_out=<s> outputs=<j1,..>
//! table <hex> <hex> ...          # 2^(r+k) entries, LSB-address first
//! ...
//! end
//! ```

use bddcf_cascade::{Cascade, LutCell};
use std::fmt;
use std::io;

/// Parse failures for the cascade text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CascadeTextError {
    /// 1-based line of the problem (0 = end of input).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CascadeTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CascadeTextError {}

fn err(line: usize, message: impl Into<String>) -> CascadeTextError {
    CascadeTextError {
        line,
        message: message.into(),
    }
}

/// Streams a cascade's text form into `out`, propagating writer failures
/// (disk full, broken pipe, …) instead of swallowing them.
///
/// # Errors
///
/// Returns the first error the underlying writer reports.
pub fn emit_cascade<W: io::Write>(cascade: &Cascade, out: &mut W) -> io::Result<()> {
    writeln!(out, "bddcf-cascade v1")?;
    writeln!(
        out,
        "inputs {} outputs {}",
        cascade.num_inputs(),
        cascade.num_outputs()
    )?;
    for cell in cascade.cells() {
        let ids = |v: &[usize]| -> String {
            v.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
        };
        writeln!(
            out,
            "cell rails_in={} inputs={} rails_out={} outputs={}",
            cell.rails_in(),
            ids(cell.input_ids()),
            cell.rails_out(),
            ids(cell.output_ids())
        )?;
        write!(out, "table")?;
        for address in 0..1u64 << cell.num_inputs() {
            let rail_in = if cell.rails_in() == 0 {
                0
            } else {
                address & ((1u64 << cell.rails_in()) - 1)
            };
            let inputs: Vec<bool> = (0..cell.input_ids().len())
                .map(|k| address >> (cell.rails_in() + k) & 1 == 1)
                .collect();
            let (outs, rail_out) = cell.lookup(rail_in, &inputs);
            let word = outs | (rail_out << cell.output_ids().len());
            write!(out, " {word:x}")?;
        }
        writeln!(out)?;
    }
    writeln!(out, "end")?;
    Ok(())
}

/// Serializes a cascade to a `String` (in-memory [`emit_cascade`]).
pub fn write_cascade(cascade: &Cascade) -> String {
    let mut buf = Vec::new();
    emit_cascade(cascade, &mut buf).expect("invariant: writing cascade text to memory cannot fail");
    String::from_utf8(buf).expect("invariant: cascade text is ASCII")
}

/// Parses a cascade previously written by [`write_cascade`].
///
/// # Errors
///
/// Returns [`CascadeTextError`] on malformed input.
pub fn read_cascade(text: &str) -> Result<Cascade, CascadeTextError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (line, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "bddcf-cascade v1" {
        return Err(err(line, "missing `bddcf-cascade v1` header"));
    }
    let (line, sizes) = lines.next().ok_or_else(|| err(0, "missing sizes line"))?;
    let mut parts = sizes.split_whitespace();
    let num_inputs = expect_kv(&mut parts, "inputs", line)?;
    let num_outputs = expect_kv(&mut parts, "outputs", line)?;

    let mut cells: Vec<LutCell> = Vec::new();
    loop {
        let (line, decl) = lines.next().ok_or_else(|| err(0, "missing `end`"))?;
        if decl == "end" {
            break;
        }
        let Some(rest) = decl.strip_prefix("cell ") else {
            return Err(err(
                line,
                format!("expected `cell …` or `end`, got {decl:?}"),
            ));
        };
        let mut rails_in = None;
        let mut rails_out = None;
        let mut input_ids = None;
        let mut output_ids = None;
        for field in rest.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(line, format!("malformed field {field:?}")))?;
            match key {
                "rails_in" => rails_in = Some(parse_num(value, line)?),
                "rails_out" => rails_out = Some(parse_num(value, line)?),
                "inputs" => input_ids = Some(parse_ids(value, line)?),
                "outputs" => output_ids = Some(parse_ids(value, line)?),
                other => return Err(err(line, format!("unknown field {other:?}"))),
            }
        }
        let rails_in = rails_in.ok_or_else(|| err(line, "missing rails_in"))?;
        let rails_out = rails_out.ok_or_else(|| err(line, "missing rails_out"))?;
        let input_ids = input_ids.unwrap_or_default();
        let output_ids = output_ids.unwrap_or_default();

        let (tline, tdecl) = lines.next().ok_or_else(|| err(0, "missing table line"))?;
        let Some(entries) = tdecl.strip_prefix("table") else {
            return Err(err(tline, "expected `table …`"));
        };
        let table: Vec<u64> = entries
            .split_whitespace()
            .map(|h| u64::from_str_radix(h, 16).map_err(|e| err(tline, format!("{h:?}: {e}"))))
            .collect::<Result<_, _>>()?;
        let expected_len = 1usize << (rails_in + input_ids.len());
        if table.len() != expected_len {
            return Err(err(
                tline,
                format!("expected {expected_len} table entries, got {}", table.len()),
            ));
        }
        cells.push(LutCell::new(
            rails_in, input_ids, rails_out, output_ids, table,
        ));
    }
    Cascade::from_cells(cells, num_inputs, num_outputs).map_err(|message| err(0, message))
}

fn expect_kv<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    key: &str,
    line: usize,
) -> Result<usize, CascadeTextError> {
    match (parts.next(), parts.next()) {
        (Some(k), Some(v)) if k == key => parse_num(v, line),
        _ => Err(err(line, format!("expected `{key} <n>`"))),
    }
}

fn parse_num(value: &str, line: usize) -> Result<usize, CascadeTextError> {
    value
        .parse()
        .map_err(|e| err(line, format!("{value:?}: {e}")))
}

fn parse_ids(value: &str, line: usize) -> Result<Vec<usize>, CascadeTextError> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value.split(',').map(|v| parse_num(v, line)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_cascade::{synthesize, CascadeOptions};
    use bddcf_core::Cf;
    use bddcf_logic::TruthTable;

    fn sample() -> Cascade {
        let mut cf = Cf::from_truth_table(&TruthTable::paper_table1());
        synthesize(
            &mut cf,
            &CascadeOptions {
                max_cell_inputs: 4,
                max_cell_outputs: 4,
                ..CascadeOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let original = sample();
        let text = write_cascade(&original);
        let restored = read_cascade(&text).expect("self-written text parses");
        assert_eq!(restored.num_cells(), original.num_cells());
        assert_eq!(restored.memory_bits(), original.memory_bits());
        for r in 0..16u32 {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            assert_eq!(restored.eval(&input), original.eval(&input), "input {r}");
        }
    }

    #[test]
    fn emit_propagates_writer_errors() {
        struct Full;
        impl std::io::Write for Full {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::StorageFull))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let e = emit_cascade(&sample(), &mut Full).expect_err("writer error must surface");
        assert_eq!(e.kind(), std::io::ErrorKind::StorageFull);
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let original = sample();
        let mut text = String::from("# saved by a test\n\n");
        text.push_str(&write_cascade(&original));
        let restored = read_cascade(&text).unwrap();
        assert_eq!(restored.num_cells(), original.num_cells());
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(read_cascade("").is_err());
        assert!(read_cascade("wrong header\n").is_err());
        let e = read_cascade("bddcf-cascade v1\ninputs 2 outputs 1\ncell rails_in=0 inputs=0,1 rails_out=0 outputs=0\ntable 0 1\nend\n")
            .unwrap_err();
        assert!(e.message.contains("expected 4 table entries"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_rails() {
        // Second cell claims 3 incoming rails but the first provides 0.
        let text = "bddcf-cascade v1\n\
                    inputs 2 outputs 1\n\
                    cell rails_in=0 inputs=0 rails_out=0 outputs=\n\
                    table 0 0\n\
                    cell rails_in=3 inputs=1 rails_out=0 outputs=0\n\
                    table 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n\
                    end\n";
        let e = read_cascade(text).unwrap_err();
        assert!(e.message.contains("rail"), "{e}");
    }
}
