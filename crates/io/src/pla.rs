//! Espresso-style PLA reading and writing.
//!
//! Supported directives: `.i`, `.o`, `.p` (ignored count), `.ilb`, `.ob`,
//! `.type` (accepted, recorded), `.e`/`.end`, `#` comments. Cube lines have
//! an input part over `{0,1,-}` and an output part over `{0,1,-,~,d}`.
//!
//! # Semantics
//!
//! The parsed object is an *incompletely specified* multiple-output
//! function with clean ISF semantics:
//!
//! * a minterm covered by a cube whose output char is `1` joins that
//!   output's ON set,
//! * covered with `0` or `~` joins the OFF set,
//! * `-`/`d` leaves it unconstrained by this cube,
//! * minterms covered by no cube (or only by don't-care outputs) are
//!   **don't care**,
//! * a minterm driven both ON and OFF for the same output is a
//!   [`PlaError::Conflict`].
//!
//! (This is the `fr`-type reading; plain `f`-type files that rely on
//! "unlisted means 0" should be completed by the caller — see
//! [`Pla::with_default_off`].)

use bddcf_bdd::{BddManager, NodeId, Var, FALSE};
use bddcf_core::{CfLayout, IsfBdds};
use bddcf_logic::TruthTable;
use std::fmt;

/// A parsed PLA file.
#[derive(Clone, Debug)]
pub struct Pla {
    /// Number of inputs.
    pub num_inputs: usize,
    /// Number of outputs.
    pub num_outputs: usize,
    /// Input names (`.ilb`), defaulting to `x1..xn`.
    pub input_names: Vec<String>,
    /// Output names (`.ob`), defaulting to `f1..fm`.
    pub output_names: Vec<String>,
    /// Cubes: (input literals as `Option<bool>` per input, output chars).
    pub cubes: Vec<(Vec<Option<bool>>, Vec<OutputSpec>)>,
    /// Whether uncovered minterms default to OFF instead of don't care.
    pub default_off: bool,
}

/// What one cube says about one output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputSpec {
    /// `1` — the covered minterms are ON.
    On,
    /// `0` / `~` — the covered minterms are OFF.
    Off,
    /// `-` / `d` — this cube does not constrain the output.
    Unspecified,
}

/// Parse or conversion failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlaError {
    /// A malformed line, with its 1-based number and a description.
    Syntax(usize, String),
    /// `.i`/`.o` missing before the first cube.
    MissingHeader,
    /// Some minterm is driven both ON and OFF for an output.
    Conflict {
        /// The 0-based output index with contradictory cubes.
        output: usize,
    },
}

impl fmt::Display for PlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaError::Syntax(line, what) => write!(f, "line {line}: {what}"),
            PlaError::MissingHeader => write!(f, ".i/.o must precede the first cube"),
            PlaError::Conflict { output } => {
                write!(
                    f,
                    "output {} is driven both 0 and 1 on some minterm",
                    output + 1
                )
            }
        }
    }
}

impl std::error::Error for PlaError {}

/// Parses PLA text.
///
/// # Example
///
/// ```
/// let pla = bddcf_io::parse_pla(".i 2\n.o 1\n11 1\n0- 0\n.e\n").unwrap();
/// let mut cf = pla.to_cf().unwrap();
/// assert_eq!(cf.allowed_words(&[true, true]), vec![1]);
/// assert_eq!(cf.allowed_words(&[false, true]), vec![0]);
/// assert_eq!(cf.allowed_words(&[true, false]), vec![0, 1]); // uncovered => dc
/// ```
///
/// # Errors
///
/// Returns [`PlaError`] on malformed input.
pub fn parse_pla(text: &str) -> Result<Pla, PlaError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut input_names: Option<Vec<String>> = None;
    let mut output_names: Option<Vec<String>> = None;
    let mut ilb_line = 0usize;
    let mut ob_line = 0usize;
    let mut cubes = Vec::new();
    let mut default_off = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let directive = parts
                .next()
                .ok_or_else(|| PlaError::Syntax(line_no, "empty directive".into()))?;
            match directive {
                "i" => {
                    if num_inputs.is_some() {
                        return Err(PlaError::Syntax(line_no, ".i redefined".into()));
                    }
                    num_inputs = Some(parse_count(parts.next(), line_no)?);
                    reject_trailing(parts.next(), ".i", line_no)?;
                }
                "o" => {
                    if num_outputs.is_some() {
                        return Err(PlaError::Syntax(line_no, ".o redefined".into()));
                    }
                    num_outputs = Some(parse_count(parts.next(), line_no)?);
                    reject_trailing(parts.next(), ".o", line_no)?;
                }
                "p" => { /* cube count hint — ignored */ }
                "ilb" => {
                    ilb_line = line_no;
                    input_names = Some(parts.map(str::to_owned).collect());
                }
                "ob" => {
                    ob_line = line_no;
                    output_names = Some(parts.map(str::to_owned).collect());
                }
                "type" => {
                    let t = parts.next().unwrap_or("");
                    if !matches!(t, "f" | "r" | "fd" | "fr" | "dr" | "fdr") {
                        return Err(PlaError::Syntax(
                            line_no,
                            format!("unknown .type {t:?} (expected f|r|fd|fr|dr|fdr)"),
                        ));
                    }
                    default_off = matches!(t, "f" | "fd");
                }
                "e" | "end" => break,
                other => {
                    return Err(PlaError::Syntax(
                        line_no,
                        format!("unknown directive .{other}"),
                    ))
                }
            }
            continue;
        }
        // A cube line.
        let (n, m) = match (num_inputs, num_outputs) {
            (Some(n), Some(m)) => (n, m),
            _ => {
                return Err(PlaError::Syntax(
                    line_no,
                    "cube before the .i/.o header".into(),
                ))
            }
        };
        let mut fields = line.split_whitespace();
        let inputs_part = fields
            .next()
            .ok_or_else(|| PlaError::Syntax(line_no, "missing input part".into()))?;
        // Outputs may be space-separated from inputs or glued when unambiguous.
        let outputs_part: String = fields.collect::<Vec<_>>().concat();
        let (inputs_part, outputs_part) = if outputs_part.is_empty() && inputs_part.len() == n + m {
            inputs_part.split_at(n)
        } else {
            (inputs_part, outputs_part.as_str())
        };
        if inputs_part.len() != n {
            return Err(PlaError::Syntax(
                line_no,
                format!("expected {n} input literals, got {}", inputs_part.len()),
            ));
        }
        if outputs_part.len() != m {
            return Err(PlaError::Syntax(
                line_no,
                format!("expected {m} output literals, got {}", outputs_part.len()),
            ));
        }
        let input_lits = inputs_part
            .chars()
            .map(|c| match c {
                '0' => Ok(Some(false)),
                '1' => Ok(Some(true)),
                '-' | 'x' | 'X' => Ok(None),
                other => Err(PlaError::Syntax(
                    line_no,
                    format!("invalid input literal {other:?}"),
                )),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let output_specs = outputs_part
            .chars()
            .map(|c| match c {
                '1' => Ok(OutputSpec::On),
                '0' | '~' => Ok(OutputSpec::Off),
                '-' | 'd' | 'D' => Ok(OutputSpec::Unspecified),
                other => Err(PlaError::Syntax(
                    line_no,
                    format!("invalid output literal {other:?}"),
                )),
            })
            .collect::<Result<Vec<_>, _>>()?;
        cubes.push((input_lits, output_specs));
    }

    let (n, m) = match (num_inputs, num_outputs) {
        (Some(n), Some(m)) if n > 0 && m > 0 => (n, m),
        _ => return Err(PlaError::MissingHeader),
    };
    let input_names = input_names.unwrap_or_else(|| (1..=n).map(|i| format!("x{i}")).collect());
    let output_names = output_names.unwrap_or_else(|| (1..=m).map(|j| format!("f{j}")).collect());
    if input_names.len() != n {
        return Err(PlaError::Syntax(
            ilb_line,
            format!(".ilb names {} input(s), .i says {n}", input_names.len()),
        ));
    }
    if output_names.len() != m {
        return Err(PlaError::Syntax(
            ob_line,
            format!(".ob names {} output(s), .o says {m}", output_names.len()),
        ));
    }
    Ok(Pla {
        num_inputs: n,
        num_outputs: m,
        input_names,
        output_names,
        cubes,
        default_off,
    })
}

fn parse_count(field: Option<&str>, line: usize) -> Result<usize, PlaError> {
    field
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0 && v <= 64)
        .ok_or_else(|| PlaError::Syntax(line, "expected a count in 1..=64".into()))
}

fn reject_trailing(field: Option<&str>, directive: &str, line: usize) -> Result<(), PlaError> {
    match field {
        None => Ok(()),
        Some(extra) => Err(PlaError::Syntax(
            line,
            format!("trailing {extra:?} after {directive}"),
        )),
    }
}

impl Pla {
    /// The layout matching this file's arity.
    pub fn layout(&self) -> CfLayout {
        CfLayout::new(self.num_inputs, self.num_outputs)
    }

    /// Reinterprets the file with `f`-type semantics: uncovered minterms
    /// are OFF rather than don't care.
    pub fn with_default_off(mut self, default_off: bool) -> Pla {
        self.default_off = default_off;
        self
    }

    /// Builds the ON/OFF/DC sets in `mgr` (laid out per
    /// [`Pla::layout`]).
    ///
    /// # Errors
    ///
    /// [`PlaError::Conflict`] if some output is driven both ways on a
    /// minterm.
    pub fn build_isf(&self, mgr: &mut BddManager) -> Result<IsfBdds, PlaError> {
        let layout = self.layout();
        let mut on = vec![FALSE; self.num_outputs];
        let mut off = vec![FALSE; self.num_outputs];
        for (lits, outs) in &self.cubes {
            let cube = cube_bdd(mgr, &layout, lits);
            for (j, spec) in outs.iter().enumerate() {
                match spec {
                    OutputSpec::On => on[j] = mgr.or(on[j], cube),
                    OutputSpec::Off => off[j] = mgr.or(off[j], cube),
                    OutputSpec::Unspecified => {}
                }
            }
        }
        let mut dc = Vec::with_capacity(self.num_outputs);
        for j in 0..self.num_outputs {
            if mgr.and(on[j], off[j]) != FALSE {
                return Err(PlaError::Conflict { output: j });
            }
            if self.default_off {
                off[j] = mgr.not(on[j]);
                dc.push(FALSE);
            } else {
                let covered = mgr.or(on[j], off[j]);
                dc.push(mgr.not(covered));
            }
        }
        Ok(IsfBdds { on, off, dc })
    }

    /// Parses and builds the characteristic function in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`PlaError::Conflict`].
    pub fn to_cf(&self) -> Result<bddcf_core::Cf, PlaError> {
        let layout = self.layout();
        let mut mgr = layout.new_manager();
        let isf = self.build_isf(&mut mgr)?;
        Ok(bddcf_core::Cf::from_isf(mgr, layout, isf))
    }
}

fn cube_bdd(mgr: &mut BddManager, layout: &CfLayout, lits: &[Option<bool>]) -> NodeId {
    let literals: Vec<(Var, bool)> = lits
        .iter()
        .enumerate()
        .filter_map(|(i, &lit)| lit.map(|v| (layout.input_var(i), v)))
        .collect();
    mgr.cube(&literals)
}

/// Serializes an explicit truth table as a minterm-per-line PLA
/// (don't cares become `-` outputs; all-don't-care rows are omitted).
pub fn write_pla(table: &TruthTable, input_names: Option<&[String]>) -> String {
    use std::fmt::Write as _;
    let n = table.num_inputs();
    let m = table.num_outputs();
    let mut out = String::new();
    let _ = writeln!(out, ".i {n}");
    let _ = writeln!(out, ".o {m}");
    if let Some(names) = input_names {
        let _ = writeln!(out, ".ilb {}", names.join(" "));
    }
    let rows: Vec<usize> = (0..table.num_rows())
        .filter(|&r| table.row(r).iter().any(|v| !v.is_dont_care()))
        .collect();
    let _ = writeln!(out, ".p {}", rows.len());
    for r in rows {
        // Input bits MSB-first per PLA convention: leftmost char = input 0.
        for i in 0..n {
            out.push(if r >> i & 1 == 1 { '1' } else { '0' });
        }
        out.push(' ');
        for j in 0..m {
            out.push(match table.get(r, j).specified() {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            });
        }
        out.push('\n');
    }
    out.push_str(".e\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_logic::MultiOracle;

    const SAMPLE: &str = "\
# the paper's Table 1 in cube form (partial, for parsing tests)
.i 4
.o 2
.ilb x1 x2 x3 x4
.ob f1 f2
.p 4
0-0- d1
001- 00
1-10 10
111- d0
.e
";

    #[test]
    fn parses_headers_and_cubes() {
        let pla = parse_pla(SAMPLE).expect("valid file");
        assert_eq!(pla.num_inputs, 4);
        assert_eq!(pla.num_outputs, 2);
        assert_eq!(pla.input_names[0], "x1");
        assert_eq!(pla.output_names[1], "f2");
        assert_eq!(pla.cubes.len(), 4);
        assert_eq!(pla.cubes[0].0, vec![Some(false), None, Some(false), None]);
        assert_eq!(
            pla.cubes[0].1,
            vec![OutputSpec::Unspecified, OutputSpec::On]
        );
    }

    #[test]
    fn isf_semantics_of_cubes() {
        let pla = parse_pla(SAMPLE).unwrap();
        let mut cf = pla.to_cf().expect("no conflicts");
        // 0-0- d1: input x1=0, x3=0 -> f2 = 1 forced, f1 free.
        let words = cf.allowed_words(&[false, false, false, false]);
        assert_eq!(words, vec![0b10, 0b11]);
        // 001-: f1=0, f2=0.
        let words = cf.allowed_words(&[false, false, true, false]);
        assert_eq!(words, vec![0b00]);
        // Uncovered minterm: everything allowed.
        let words = cf.allowed_words(&[true, false, false, false]);
        assert_eq!(words.len(), 4);
    }

    #[test]
    fn conflict_detection() {
        let text = ".i 2\n.o 1\n0- 1\n00 0\n.e\n";
        let pla = parse_pla(text).unwrap();
        let mut mgr = pla.layout().new_manager();
        assert_eq!(
            pla.build_isf(&mut mgr).unwrap_err(),
            PlaError::Conflict { output: 0 }
        );
    }

    #[test]
    fn type_f_defaults_to_off() {
        let text = ".i 2\n.o 1\n.type fd\n11 1\n.e\n";
        let pla = parse_pla(text).unwrap();
        assert!(pla.default_off);
        let mut cf = pla.to_cf().unwrap();
        assert_eq!(cf.allowed_words(&[false, false]), vec![0]);
        assert_eq!(cf.allowed_words(&[true, true]), vec![1]);
    }

    #[test]
    fn glued_cube_format() {
        let text = ".i 3\n.o 2\n00111\n.e\n";
        let pla = parse_pla(text).unwrap();
        assert_eq!(pla.cubes.len(), 1);
        assert_eq!(pla.cubes[0].1, vec![OutputSpec::On, OutputSpec::On]);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let text = ".i 2\n.o 1\n0z 1\n";
        match parse_pla(text).unwrap_err() {
            PlaError::Syntax(3, what) => assert!(what.contains("invalid input")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_pla(".i 2\n.o 1\n.bogus\n").is_err());
    }

    /// Regression table: every way a file can be malformed must produce a
    /// [`PlaError::Syntax`] pointing at the offending 1-based line, with a
    /// recognizable description — never a panic, never silent acceptance.
    #[test]
    fn malformed_inputs_report_line_and_reason() {
        let cases: &[(&str, usize, &str)] = &[
            // (input text, expected line, expected message fragment)
            ("01 1\n", 1, "cube before"),
            (".o 1\n01 1\n", 2, "cube before"),
            (".i\n.o 1\n", 1, "count in 1..=64"),
            (".i 0\n.o 1\n", 1, "count in 1..=64"),
            (".i 65\n.o 1\n", 1, "count in 1..=64"),
            (".i -3\n.o 1\n", 1, "count in 1..=64"),
            (".i two\n.o 1\n", 1, "count in 1..=64"),
            (".i 2 junk\n.o 1\n", 1, "trailing"),
            (".i 2\n.i 3\n.o 1\n", 2, ".i redefined"),
            (".i 2\n.o 1\n.o 2\n", 3, ".o redefined"),
            (".i 2\n.o 1\n.type q\n", 3, "unknown .type"),
            (".i 2\n.o 1\n.bogus\n", 3, "unknown directive"),
            (".i 2\n.o 1\n.\n", 3, "empty directive"),
            (".i 2\n.o 1\n0 1\n", 3, "expected 2 input"),
            (".i 2\n.o 1\n000 1\n", 3, "expected 2 input"),
            (".i 2\n.o 1\n00 11\n", 3, "expected 1 output"),
            (".i 2\n.o 1\n00\n", 3, "expected 1 output"),
            (".i 2\n.o 1\n0z 1\n", 3, "invalid input literal"),
            (".i 2\n.o 1\n00 2\n", 3, "invalid output literal"),
            (".i 2\n.o 2\n.ilb a b c\n00 11\n", 3, ".ilb names 3"),
            (".i 2\n.o 2\n.ob f\n00 11\n", 3, ".ob names 1"),
        ];
        for &(text, line, fragment) in cases {
            match parse_pla(text) {
                Err(PlaError::Syntax(l, what)) => {
                    assert_eq!(l, line, "wrong line for {text:?}: {what}");
                    assert!(
                        what.contains(fragment),
                        "error for {text:?} is {what:?}, expected fragment {fragment:?}"
                    );
                }
                other => panic!("{text:?} produced {other:?}, expected a syntax error"),
            }
        }
        // A file that ends without ever declaring arity is the one
        // remaining non-positional error.
        assert!(matches!(
            parse_pla("# nothing\n").unwrap_err(),
            PlaError::MissingHeader
        ));
        assert!(matches!(
            parse_pla("").unwrap_err(),
            PlaError::MissingHeader
        ));
    }

    #[test]
    fn truncated_file_without_terminator_still_parses() {
        // espresso files often lack .e; truncation mid-cube-list must not
        // invent cubes or panic.
        let pla = parse_pla(".i 2\n.o 1\n00 1").unwrap();
        assert_eq!(pla.cubes.len(), 1);
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let table = TruthTable::paper_table1();
        let text = write_pla(&table, None);
        let pla = parse_pla(&text).expect("self-written file parses");
        let mut cf = pla.to_cf().expect("no conflicts");
        for r in 0..16usize {
            let input: Vec<bool> = (0..4).map(|i| r >> i & 1 == 1).collect();
            for w in 0..4u64 {
                let expect = (0..2).all(|j| table.get(r, j).admits(w >> j & 1 == 1));
                assert_eq!(cf.admits(&input, w), expect, "row {r} word {w:02b}");
            }
        }
        let _ = table.respond(&[false; 4]); // silence unused-import lints
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n.i 1\n.o 1  # inline\n\n0 1\n.e\n";
        let pla = parse_pla(text).unwrap();
        assert_eq!(pla.cubes.len(), 1);
    }
}
