//! Black-box oracles for large multiple-output incompletely specified
//! functions.
//!
//! The paper's benchmark functions have up to 40 inputs; their truth tables
//! cannot be materialized. A [`MultiOracle`] answers point queries instead:
//! given one input assignment, it either returns the specified output word
//! or reports that the whole row is don't care. (All of the paper's
//! benchmarks have this all-or-nothing structure — unused input codes make
//! *every* output unspecified; the general per-output case is covered by
//! [`TruthTable`].)
//!
//! Oracles are the ground truth for the sampled end-to-end verification of
//! synthesized LUT cascades.

use crate::table::TruthTable;

/// The answer of a [`MultiOracle`] for one input assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// All outputs specified, packed LSB-first (`bit j` = output `j`).
    Value(u64),
    /// Every output is don't care on this input.
    DontCare,
}

impl Response {
    /// Does the concrete output word `word` satisfy this specification row?
    pub fn admits(self, word: u64, num_outputs: usize) -> bool {
        match self {
            Response::DontCare => true,
            Response::Value(v) => {
                let mask = if num_outputs >= 64 {
                    u64::MAX
                } else {
                    (1u64 << num_outputs) - 1
                };
                v & mask == word & mask
            }
        }
    }
}

/// A multiple-output incompletely specified function queried pointwise.
pub trait MultiOracle {
    /// Number of input bits.
    fn num_inputs(&self) -> usize;

    /// Number of output bits (at most 64).
    fn num_outputs(&self) -> usize;

    /// Evaluates the specification on one input assignment
    /// (`input.len() == num_inputs()`, `input[i]` = input bit `i`).
    fn respond(&self, input: &[bool]) -> Response;

    /// Convenience: evaluate on a packed input word (`bit i` = input `i`).
    fn respond_word(&self, word: u64) -> Response {
        let input: Vec<bool> = (0..self.num_inputs()).map(|i| word >> i & 1 == 1).collect();
        self.respond(&input)
    }
}

impl MultiOracle for TruthTable {
    fn num_inputs(&self) -> usize {
        TruthTable::num_inputs(self)
    }

    fn num_outputs(&self) -> usize {
        TruthTable::num_outputs(self)
    }

    fn respond(&self, input: &[bool]) -> Response {
        let r = self.row_index(input);
        let row = self.row(r);
        if row.iter().all(|v| v.is_dont_care()) {
            return Response::DontCare;
        }
        // Partially specified rows are reported as a value with don't cares
        // resolved to 0 — callers needing exact per-output don't care
        // handling should use the TruthTable API directly.
        let mut word = 0u64;
        for (j, v) in row.iter().enumerate() {
            if v.specified() == Some(true) {
                word |= 1 << j;
            }
        }
        Response::Value(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_admits_masks_outputs() {
        assert!(Response::Value(0b101).admits(0b101, 3));
        assert!(Response::Value(0b101).admits(0b1101, 3), "bit 3 ignored");
        assert!(!Response::Value(0b101).admits(0b100, 3));
        assert!(Response::DontCare.admits(0b111, 3));
    }

    #[test]
    fn truth_table_as_oracle() {
        let t = TruthTable::from_rows(&["01", "10", "dd", "11"]);
        assert_eq!(t.respond(&[false, false]), Response::Value(0b10));
        assert_eq!(t.respond(&[true, false]), Response::Value(0b01));
        assert_eq!(t.respond(&[false, true]), Response::DontCare);
        assert_eq!(t.respond_word(0b11), Response::Value(0b11));
    }
}
