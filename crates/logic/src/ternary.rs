//! The three-valued codomain `{0, 1, d}` of incompletely specified
//! functions.

use std::fmt;

/// A value of an incompletely specified Boolean function: `0`, `1`, or
/// don't care (`d`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ternary {
    /// Specified 0.
    Zero,
    /// Specified 1.
    One,
    /// Unspecified — may be realized as either value.
    DontCare,
}

impl Ternary {
    /// Parses `'0'`, `'1'`, `'d'`/`'D'`/`'-'`/`'*'`.
    pub fn from_char(c: char) -> Option<Ternary> {
        match c {
            '0' => Some(Ternary::Zero),
            '1' => Some(Ternary::One),
            'd' | 'D' | '-' | '*' => Some(Ternary::DontCare),
            _ => None,
        }
    }

    /// The specified value wrapped in `Some`, or `None` for don't care.
    pub fn specified(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::DontCare => None,
        }
    }

    /// Lifts a Boolean into a specified ternary value.
    pub fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }

    /// Is this value the don't care?
    pub fn is_dont_care(self) -> bool {
        self == Ternary::DontCare
    }

    /// Pointwise compatibility (Definition 3.7): two values are compatible
    /// unless one is a specified 0 and the other a specified 1.
    pub fn compatible(self, other: Ternary) -> bool {
        !matches!(
            (self, other),
            (Ternary::Zero, Ternary::One) | (Ternary::One, Ternary::Zero)
        )
    }

    /// Intersection of the realizable sets: the "logical product" the paper
    /// takes when merging compatible columns (Lemma 3.1). Returns `None`
    /// for incompatible values.
    pub fn intersect(self, other: Ternary) -> Option<Ternary> {
        match (self, other) {
            (Ternary::DontCare, x) => Some(x),
            (x, Ternary::DontCare) => Some(x),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// Does a concrete Boolean value realize this specification point?
    pub fn admits(self, value: bool) -> bool {
        match self {
            Ternary::Zero => !value,
            Ternary::One => value,
            Ternary::DontCare => true,
        }
    }
}

impl fmt::Display for Ternary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Ternary::Zero => '0',
            Ternary::One => '1',
            Ternary::DontCare => 'd',
        };
        write!(f, "{c}")
    }
}

impl From<bool> for Ternary {
    fn from(b: bool) -> Ternary {
        Ternary::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Ternary::*;

    #[test]
    fn parsing_and_display_roundtrip() {
        for (c, v) in [('0', Zero), ('1', One), ('d', DontCare)] {
            assert_eq!(Ternary::from_char(c), Some(v));
        }
        assert_eq!(Ternary::from_char('-'), Some(DontCare));
        assert_eq!(Ternary::from_char('x'), None);
        assert_eq!(One.to_string(), "1");
        assert_eq!(DontCare.to_string(), "d");
    }

    #[test]
    fn compatibility_table() {
        assert!(Zero.compatible(Zero));
        assert!(One.compatible(One));
        assert!(!Zero.compatible(One));
        assert!(!One.compatible(Zero));
        for v in [Zero, One, DontCare] {
            assert!(DontCare.compatible(v));
            assert!(v.compatible(DontCare));
        }
    }

    #[test]
    fn intersection_narrows_dont_cares() {
        assert_eq!(DontCare.intersect(One), Some(One));
        assert_eq!(Zero.intersect(DontCare), Some(Zero));
        assert_eq!(DontCare.intersect(DontCare), Some(DontCare));
        assert_eq!(One.intersect(One), Some(One));
        assert_eq!(One.intersect(Zero), None);
    }

    #[test]
    fn intersection_is_commutative_and_matches_compatibility() {
        for a in [Zero, One, DontCare] {
            for b in [Zero, One, DontCare] {
                assert_eq!(a.intersect(b), b.intersect(a));
                assert_eq!(a.intersect(b).is_some(), a.compatible(b));
            }
        }
    }

    #[test]
    fn admits_realizations() {
        assert!(One.admits(true));
        assert!(!One.admits(false));
        assert!(Zero.admits(false));
        assert!(DontCare.admits(true) && DontCare.admits(false));
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Ternary::from(true), One);
        assert_eq!(Ternary::from(false), Zero);
        assert_eq!(One.specified(), Some(true));
        assert_eq!(DontCare.specified(), None);
    }
}
