//! Logic substrate: ternary values, incompletely specified truth tables,
//! and oracle interfaces for multiple-output functions.
//!
//! An *incompletely specified function* (ISF) maps `{0,1}ⁿ → {0,1,d}` where
//! `d` is the don't care (Definition 2.1 of the paper). A multiple-output
//! ISF bundles `m` such functions over a shared input space.
//!
//! This crate provides:
//!
//! * [`Ternary`] — the three-valued codomain with compatibility and
//!   intersection operators (Definition 3.7 lifted pointwise).
//! * [`TruthTable`] — an explicit multiple-output ISF for small input
//!   counts; the representation used by decomposition charts and the
//!   worked examples of the paper.
//! * [`MultiOracle`] — a black-box interface for *large* multiple-output
//!   ISFs (the benchmark generators implement it); sampled verification of
//!   synthesized circuits is driven through it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod table;
pub mod ternary;

pub use oracle::{MultiOracle, Response};
pub use table::TruthTable;
pub use ternary::Ternary;
