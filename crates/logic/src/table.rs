//! Explicit truth tables for small multiple-output incompletely specified
//! functions.
//!
//! A [`TruthTable`] stores a `2ⁿ × m` matrix of [`Ternary`] values. It is
//! the ground-truth representation for the paper's worked examples (Table 1,
//! Tables 2–3) and the reference every symbolic construction is validated
//! against in tests.

use crate::ternary::Ternary;
use std::fmt;

/// A multiple-output incompletely specified function given extensionally.
///
/// Row index `r` encodes the input assignment with **bit `i` of `r` = value
/// of input `xᵢ₊₁`**... more precisely: bit `i` (LSB = bit 0) of the row
/// index is the value of input `i`. Output `j` of row `r` is
/// `self.get(r, j)`.
#[derive(Clone, PartialEq, Eq)]
pub struct TruthTable {
    num_inputs: usize,
    num_outputs: usize,
    rows: Vec<Ternary>, // row-major, rows.len() == 2^n * m
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TruthTable({} inputs, {} outputs)",
            self.num_inputs, self.num_outputs
        )?;
        for r in 0..self.num_rows() {
            let input: String = (0..self.num_inputs)
                .rev()
                .map(|i| if r >> i & 1 == 1 { '1' } else { '0' })
                .collect();
            let output: String = (0..self.num_outputs)
                .map(|j| self.get(r, j).to_string())
                .collect();
            writeln!(f, "  {input} -> {output}")?;
        }
        Ok(())
    }
}

impl TruthTable {
    /// A table with every entry unspecified (don't care).
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 24` (the table would not fit in memory) or
    /// `num_outputs == 0`.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        assert!(num_inputs <= 24, "explicit tables limited to 24 inputs");
        assert!(num_outputs > 0, "a function needs at least one output");
        TruthTable {
            num_inputs,
            num_outputs,
            rows: vec![Ternary::DontCare; (1usize << num_inputs) * num_outputs],
        }
    }

    /// Parses one string per row (in row-index order), each with one
    /// character per output: `0`, `1`, or `d`/`-`.
    ///
    /// # Panics
    ///
    /// Panics if the number of rows is not a power of two, rows have
    /// differing lengths, or a character is not a ternary digit.
    pub fn from_rows(rows: &[&str]) -> Self {
        assert!(rows.len().is_power_of_two(), "row count must be 2^n");
        let num_inputs = rows.len().trailing_zeros() as usize;
        let num_outputs = rows[0].len();
        let mut table = TruthTable::new(num_inputs, num_outputs);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), num_outputs, "ragged row {r}");
            for (j, c) in row.chars().enumerate() {
                let v = Ternary::from_char(c)
                    .unwrap_or_else(|| panic!("invalid ternary digit {c:?} in row {r}"));
                table.set(r, j, v);
            }
        }
        table
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of rows, `2ⁿ`.
    pub fn num_rows(&self) -> usize {
        1 << self.num_inputs
    }

    /// The value of output `j` on row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `j` is out of range.
    pub fn get(&self, r: usize, j: usize) -> Ternary {
        assert!(j < self.num_outputs, "output index out of range");
        self.rows[r * self.num_outputs + j]
    }

    /// Sets the value of output `j` on row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `j` is out of range.
    pub fn set(&mut self, r: usize, j: usize, v: Ternary) {
        assert!(j < self.num_outputs, "output index out of range");
        self.rows[r * self.num_outputs + j] = v;
    }

    /// All outputs on row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Ternary] {
        &self.rows[r * self.num_outputs..(r + 1) * self.num_outputs]
    }

    /// Evaluates the row index for an input assignment (`bit i` = input `i`).
    pub fn row_index(&self, input: &[bool]) -> usize {
        assert_eq!(input.len(), self.num_inputs);
        input
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (usize::from(b) << i))
    }

    /// Fraction of `(row, output)` entries that are don't care — the
    /// quantity the paper's Table 4 reports in its `DC [%]` column when the
    /// don't cares come from unused input combinations.
    pub fn dc_ratio(&self) -> f64 {
        let dc = self.rows.iter().filter(|v| v.is_dont_care()).count();
        dc as f64 / self.rows.len() as f64
    }

    /// Does `candidate` (a completely specified function given as a row
    /// evaluator) realize this specification?
    pub fn is_realized_by(&self, mut candidate: impl FnMut(usize) -> u64) -> bool {
        (0..self.num_rows()).all(|r| {
            let word = candidate(r);
            (0..self.num_outputs).all(|j| self.get(r, j).admits(word >> j & 1 == 1))
        })
    }

    /// Restricts input `i` to `value`, producing a table over the remaining
    /// inputs (their indices shift down above `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the table has a single input.
    pub fn restrict(&self, i: usize, value: bool) -> TruthTable {
        assert!(i < self.num_inputs, "input index out of range");
        assert!(self.num_inputs > 1, "cannot restrict the last input");
        let mut out = TruthTable::new(self.num_inputs - 1, self.num_outputs);
        for r in 0..out.num_rows() {
            let low = r & ((1 << i) - 1);
            let high = (r >> i) << (i + 1);
            let full = high | (usize::from(value) << i) | low;
            for j in 0..self.num_outputs {
                out.set(r, j, self.get(full, j));
            }
        }
        out
    }

    /// Pointwise compatibility with another table of identical shape
    /// (Definition 3.7 lifted to multiple outputs).
    pub fn compatible(&self, other: &TruthTable) -> bool {
        assert_eq!(self.num_inputs, other.num_inputs);
        assert_eq!(self.num_outputs, other.num_outputs);
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| a.compatible(*b))
    }

    /// Pointwise intersection (the "logical product" of Lemma 3.1), or
    /// `None` if the tables are incompatible.
    pub fn intersect(&self, other: &TruthTable) -> Option<TruthTable> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for (o, b) in out.rows.iter_mut().zip(&other.rows) {
            *o = o.intersect(*b).expect("checked compatible");
        }
        Some(out)
    }

    /// The completion that maps every don't care to `fill`.
    pub fn completed(&self, fill: bool) -> TruthTable {
        let mut out = self.clone();
        for v in &mut out.rows {
            if v.is_dont_care() {
                *v = Ternary::from_bool(fill);
            }
        }
        out
    }

    /// Projects onto a subset of outputs (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `outputs` is empty.
    pub fn project_outputs(&self, outputs: &[usize]) -> TruthTable {
        assert!(!outputs.is_empty());
        let mut out = TruthTable::new(self.num_inputs, outputs.len());
        for r in 0..self.num_rows() {
            for (k, &j) in outputs.iter().enumerate() {
                out.set(r, k, self.get(r, j));
            }
        }
        out
    }

    /// The paper's running example (Table 1): a 4-input, 2-output
    /// incompletely specified function.
    pub fn paper_table1() -> TruthTable {
        // Row index bit 3 = x1 (leftmost column of Table 1), bit 0 = x4.
        // We store inputs LSB-first, so input 0 = x1 ... input 3 = x4 and the
        // row index here is built from (x1 x2 x3 x4) strings.
        let spec = [
            ("0000", "d1"),
            ("0001", "d1"),
            ("0010", "00"),
            ("0011", "00"),
            ("0100", "dd"),
            ("0101", "dd"),
            ("0110", "10"),
            ("0111", "11"),
            ("1000", "01"),
            ("1001", "01"),
            ("1010", "10"),
            ("1011", "10"),
            ("1100", "1d"),
            ("1101", "1d"),
            ("1110", "d0"),
            ("1111", "d1"),
        ];
        let mut table = TruthTable::new(4, 2);
        for (bits, outs) in spec {
            let mut r = 0usize;
            for (i, c) in bits.chars().enumerate() {
                if c == '1' {
                    r |= 1 << i; // input i = x_{i+1}
                }
            }
            for (j, c) in outs.chars().enumerate() {
                let v = Ternary::from_char(c)
                    .expect("invariant: the Table 1 spec above contains only ternary digits");
                table.set(r, j, v);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Ternary::*;

    #[test]
    fn new_table_is_all_dont_care() {
        let t = TruthTable::new(3, 2);
        assert_eq!(t.num_rows(), 8);
        assert_eq!(t.dc_ratio(), 1.0);
    }

    #[test]
    fn from_rows_parses() {
        let t = TruthTable::from_rows(&["01", "1d", "d0", "11"]);
        assert_eq!(t.num_inputs(), 2);
        assert_eq!(t.num_outputs(), 2);
        assert_eq!(t.get(0, 0), Zero);
        assert_eq!(t.get(0, 1), One);
        assert_eq!(t.get(1, 1), DontCare);
        assert_eq!(t.get(2, 0), DontCare);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn from_rows_rejects_non_power_of_two() {
        let _ = TruthTable::from_rows(&["0", "1", "d"]);
    }

    #[test]
    fn row_index_is_lsb_first() {
        let t = TruthTable::new(3, 1);
        assert_eq!(t.row_index(&[true, false, false]), 1);
        assert_eq!(t.row_index(&[false, false, true]), 4);
    }

    #[test]
    fn restrict_splits_cofactors() {
        // f(x0,x1) = x0 XOR x1 fully specified.
        let t = TruthTable::from_rows(&["0", "1", "1", "0"]);
        let f0 = t.restrict(0, false); // rows where x0=0: rows 0,2 -> 0,1
        assert_eq!(f0.get(0, 0), Zero);
        assert_eq!(f0.get(1, 0), One);
        let f1 = t.restrict(1, true); // rows where x1=1: rows 2,3 -> 1,0
        assert_eq!(f1.get(0, 0), One);
        assert_eq!(f1.get(1, 0), Zero);
    }

    #[test]
    fn compatibility_and_intersection() {
        let a = TruthTable::from_rows(&["0", "d", "1", "d"]);
        let b = TruthTable::from_rows(&["d", "1", "d", "d"]);
        assert!(a.compatible(&b));
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.get(0, 0), Zero);
        assert_eq!(c.get(1, 0), One);
        assert_eq!(c.get(2, 0), One);
        assert_eq!(c.get(3, 0), DontCare);
        let d = TruthTable::from_rows(&["1", "d", "d", "d"]);
        assert!(!a.compatible(&d));
        assert!(a.intersect(&d).is_none());
    }

    #[test]
    fn completion_fills_dont_cares() {
        let a = TruthTable::from_rows(&["0", "d", "1", "d"]);
        let c0 = a.completed(false);
        assert_eq!(c0.get(1, 0), Zero);
        assert_eq!(c0.dc_ratio(), 0.0);
        let c1 = a.completed(true);
        assert_eq!(c1.get(3, 0), One);
    }

    #[test]
    fn realization_check_respects_dont_cares() {
        let a = TruthTable::from_rows(&["0", "d", "1", "d"]);
        assert!(a.is_realized_by(|r| u64::from(r >= 2)));
        assert!(a.is_realized_by(|r| u64::from(r != 0)));
        assert!(!a.is_realized_by(|_| 0), "row 2 must be 1");
    }

    #[test]
    fn project_outputs_selects_columns() {
        let t = TruthTable::from_rows(&["01", "10", "dd", "11"]);
        let p = t.project_outputs(&[1]);
        assert_eq!(p.num_outputs(), 1);
        assert_eq!(p.get(0, 0), One);
        assert_eq!(p.get(1, 0), Zero);
    }

    #[test]
    fn paper_table1_spot_checks() {
        let t = TruthTable::paper_table1();
        assert_eq!(t.num_inputs(), 4);
        assert_eq!(t.num_outputs(), 2);
        // x1x2x3x4 = 0000 -> f1 = d, f2 = 1.
        assert_eq!(t.row(0), &[DontCare, One]);
        // x1x2x3x4 = 1010 -> r = 1 + 4 = 5 -> f1 = 1, f2 = 0.
        assert_eq!(t.row(0b0101), &[One, Zero]);
        // x1x2x3x4 = 0111 -> inputs x2,x3,x4 set -> r = 2+4+8 = 14 -> f = 11.
        assert_eq!(t.row(0b1110), &[One, One]);
        // 22 of the 32 entries are specified (Table 1 has 10 d's).
        let dc = (0..16)
            .flat_map(|r| t.row(r).to_vec())
            .filter(|v| v.is_dont_care())
            .count();
        assert_eq!(dc, 10);
    }

    #[test]
    fn paper_table1_matches_example21_cofunctions() {
        // Example 2.1 lists f1_0, f1_1, f1_d etc. as sums of products.
        // Check a few: f1_d = ¬x1¬x3 ∨ x1x2x3.
        let t = TruthTable::paper_table1();
        for r in 0..16usize {
            let x1 = r & 1 == 1;
            let x2 = r & 2 == 2;
            let x3 = r & 4 == 4;
            let f1_d_expected = (!x1 && !x3) || (x1 && x2 && x3);
            assert_eq!(
                t.get(r, 0).is_dont_care(),
                f1_d_expected,
                "f1 dc mismatch at row {r}"
            );
            let f2_d_expected = x2 && !x3;
            assert_eq!(t.get(r, 1).is_dont_care(), f2_d_expected);
        }
    }
}
