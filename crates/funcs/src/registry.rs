//! The paper's benchmark suite (the 16 rows of Table 4).

use crate::{Benchmark, DecimalAdder, DecimalMultiplier, RadixConverter, RnsConverter, WordList};

/// One suite entry: the paper's row label plus the generator.
pub struct BenchmarkEntry {
    /// Row label as printed in Table 4.
    pub label: &'static str,
    /// The function generator.
    pub benchmark: Box<dyn Benchmark>,
}

impl std::fmt::Debug for BenchmarkEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkEntry")
            .field("label", &self.label)
            .finish()
    }
}

/// All 16 benchmark functions of Table 4, in row order. The word lists are
/// the widened (output-0 → don't care) variants only where §5.3 uses them;
/// Table 4 itself uses the exact index functions, whose don't cares come
/// from the 5-bit letter coding — we follow Table 4 here and treat the
/// non-letter codes as input don't cares.
pub fn table4_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            label: "5-7-11-13 RNS",
            benchmark: Box::new(RnsConverter::rns_5_7_11_13()),
        },
        BenchmarkEntry {
            label: "7-11-13-17 RNS",
            benchmark: Box::new(RnsConverter::rns_7_11_13_17()),
        },
        BenchmarkEntry {
            label: "11-13-15-17 RNS",
            benchmark: Box::new(RnsConverter::rns_11_13_15_17()),
        },
        BenchmarkEntry {
            label: "4-digit 11-nary to binary",
            benchmark: Box::new(RadixConverter::new(11, 4)),
        },
        BenchmarkEntry {
            label: "4-digit 13-nary to binary",
            benchmark: Box::new(RadixConverter::new(13, 4)),
        },
        BenchmarkEntry {
            label: "5-digit 10-nary to binary",
            benchmark: Box::new(RadixConverter::new(10, 5)),
        },
        BenchmarkEntry {
            label: "6-digit 5-nary to binary",
            benchmark: Box::new(RadixConverter::new(5, 6)),
        },
        BenchmarkEntry {
            label: "6-digit 6-nary to binary",
            benchmark: Box::new(RadixConverter::new(6, 6)),
        },
        BenchmarkEntry {
            label: "6-digit 7-nary to binary",
            benchmark: Box::new(RadixConverter::new(7, 6)),
        },
        BenchmarkEntry {
            label: "10-digit 3-nary to binary",
            benchmark: Box::new(RadixConverter::new(3, 10)),
        },
        BenchmarkEntry {
            label: "3-digit decimal adder",
            benchmark: Box::new(DecimalAdder::new(3)),
        },
        BenchmarkEntry {
            label: "4-digit decimal adder",
            benchmark: Box::new(DecimalAdder::new(4)),
        },
        BenchmarkEntry {
            label: "2-digit decimal multiplier",
            benchmark: Box::new(DecimalMultiplier::new(2)),
        },
        BenchmarkEntry {
            label: "1730 words",
            benchmark: Box::new(WordList::synthetic(1730, true)),
        },
        BenchmarkEntry {
            label: "3366 words",
            benchmark: Box::new(WordList::synthetic(3366, true)),
        },
        BenchmarkEntry {
            label: "4705 words",
            benchmark: Box::new(WordList::synthetic(4705, true)),
        },
    ]
}

/// Scaled-down siblings of the Table-4 rows, small enough for smoke runs
/// (tests, CI, `bddcf check`) where the full suite would take minutes.
/// One entry per generator family.
pub fn small_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            label: "3-5 RNS",
            benchmark: Box::new(RnsConverter::new(vec![3, 5])),
        },
        BenchmarkEntry {
            label: "2-digit 3-nary to binary",
            benchmark: Box::new(RadixConverter::new(3, 2)),
        },
        BenchmarkEntry {
            label: "1-digit decimal adder",
            benchmark: Box::new(DecimalAdder::new(1)),
        },
        BenchmarkEntry {
            label: "1-digit decimal multiplier",
            benchmark: Box::new(DecimalMultiplier::new(1)),
        },
        BenchmarkEntry {
            label: "12 words",
            benchmark: Box::new(WordList::synthetic(12, true)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_sixteen_rows() {
        let suite = table4_benchmarks();
        assert_eq!(suite.len(), 16);
    }

    #[test]
    fn arities_match_table4() {
        // (label, In, Out) straight from Table 4.
        let expect = [
            ("5-7-11-13 RNS", 14, 13),
            ("7-11-13-17 RNS", 16, 15),
            ("11-13-15-17 RNS", 17, 16),
            ("4-digit 11-nary to binary", 16, 14),
            ("4-digit 13-nary to binary", 16, 15),
            ("5-digit 10-nary to binary", 20, 17),
            ("6-digit 5-nary to binary", 18, 14),
            ("6-digit 6-nary to binary", 18, 16),
            ("6-digit 7-nary to binary", 18, 17),
            ("10-digit 3-nary to binary", 20, 16),
            ("3-digit decimal adder", 24, 16),
            ("4-digit decimal adder", 32, 20),
            ("2-digit decimal multiplier", 16, 16),
            ("1730 words", 40, 11),
            ("3366 words", 40, 12),
            ("4705 words", 40, 13),
        ];
        let suite = table4_benchmarks();
        for (entry, (label, inputs, outputs)) in suite.iter().zip(expect) {
            assert_eq!(entry.label, label);
            assert_eq!(entry.benchmark.num_inputs(), inputs, "{label} inputs");
            assert_eq!(entry.benchmark.num_outputs(), outputs, "{label} outputs");
        }
    }

    #[test]
    fn dc_ratios_match_table4() {
        // Table 4's DC [%] column (word lists: 99.9).
        // Two entries are OCR-garbled in the paper copy ("790.", "9");
        // the values below follow §4.1's formula 1 − Π pᵢ/2^{bᵢ}, which
        // matches every legible entry.
        let expect = [
            69.5, 74.0, 72.2, 77.7, 56.4, 90.5, 94.0, 82.2, 55.1, 94.4, 94.0, 97.7, 84.7, 99.9,
            99.9, 99.9,
        ];
        for (entry, dc) in table4_benchmarks().iter().zip(expect) {
            let got = entry.benchmark.dc_ratio() * 100.0;
            assert!(
                (got - dc).abs() < 0.15,
                "{}: DC {got:.1} vs paper {dc}",
                entry.label
            );
        }
    }
}
