//! Binary-coded multi-valued digit layouts shared by the radix-converter
//! and RNS benchmarks (§4.1).
//!
//! A function `f: P₀ × P₁ × … × P_{k−1} → Q` with `Pᵢ = {0,…,pᵢ−1}` is
//! encoded over `Σ ⌈log₂ pᵢ⌉` binary inputs. When `pᵢ` is not a power of
//! two, the unused digit codes are *input don't cares*: the ratio of
//! unspecified input combinations is `1 − Π pᵢ/2^{bᵢ}` (the paper's §4.1
//! formula, checked in tests against Example 4.7).

use bddcf_bdd::bv::{self, BitVec};
use bddcf_bdd::{BddManager, NodeId};
use bddcf_core::CfLayout;

/// The digit structure of a multi-valued input: radix per digit, most
/// significant digit first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigitLayout {
    radixes: Vec<u64>,
}

impl DigitLayout {
    /// A layout with the given per-digit radixes (most significant digit
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if a radix is less than 2.
    pub fn new(radixes: Vec<u64>) -> Self {
        assert!(radixes.iter().all(|&p| p >= 2), "radix must be at least 2");
        DigitLayout { radixes }
    }

    /// A layout of `k` digits of the same radix.
    pub fn uniform(radix: u64, k: usize) -> Self {
        DigitLayout::new(vec![radix; k])
    }

    /// Number of digits.
    pub fn num_digits(&self) -> usize {
        self.radixes.len()
    }

    /// Radix of digit `i` (0 = most significant).
    pub fn radix(&self, i: usize) -> u64 {
        self.radixes[i]
    }

    /// Bits of digit `i`: `⌈log₂ pᵢ⌉`.
    pub fn bits(&self, i: usize) -> usize {
        bv::bits_for(self.radixes[i] - 1)
    }

    /// First input index of digit `i` (digits packed most significant
    /// first; within a digit, the first input is the digit's LSB).
    pub fn offset(&self, i: usize) -> usize {
        (0..i).map(|d| self.bits(d)).sum()
    }

    /// Total binary inputs.
    pub fn total_bits(&self) -> usize {
        self.offset(self.num_digits())
    }

    /// The digit's bits as a symbolic bit-vector of the input variables.
    pub fn digit_bv(&self, mgr: &mut BddManager, layout: &CfLayout, i: usize) -> BitVec {
        let offset = self.offset(i);
        (0..self.bits(i))
            .map(|b| {
                let var = layout.input_var(offset + b);
                mgr.var(var)
            })
            .collect()
    }

    /// The valid-input predicate `∧ᵢ digitᵢ < pᵢ`.
    pub fn valid(&self, mgr: &mut BddManager, layout: &CfLayout) -> NodeId {
        let mut acc = bddcf_bdd::TRUE;
        for i in 0..self.num_digits() {
            let digit = self.digit_bv(mgr, layout, i);
            let ok = bv::lt_const(mgr, &digit, self.radixes[i]);
            acc = mgr.and(acc, ok);
        }
        acc
    }

    /// Decodes the digits from a packed input word (`bit i` = input `i`);
    /// `None` if some digit code is out of range.
    pub fn decode(&self, input_word: u64) -> Option<Vec<u64>> {
        let mut digits = Vec::with_capacity(self.num_digits());
        for i in 0..self.num_digits() {
            let b = self.bits(i);
            let code = input_word >> self.offset(i) & ((1u64 << b) - 1);
            if code >= self.radixes[i] {
                return None;
            }
            digits.push(code);
        }
        Some(digits)
    }

    /// Encodes digit values into a packed input word.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a digit out of range.
    pub fn encode(&self, digits: &[u64]) -> u64 {
        assert_eq!(digits.len(), self.num_digits());
        let mut word = 0u64;
        for (i, &d) in digits.iter().enumerate() {
            assert!(d < self.radixes[i], "digit {i} out of range");
            word |= d << self.offset(i);
        }
        word
    }

    /// §4.1's input-don't-care ratio: `1 − Π pᵢ/2^{bᵢ}`.
    pub fn dc_ratio(&self) -> f64 {
        1.0 - (0..self.num_digits())
            .map(|i| self.radixes[i] as f64 / (1u64 << self.bits(i)) as f64)
            .product::<f64>()
    }

    /// Iterates all valid digit combinations (for exhaustive small tests).
    pub fn valid_combinations(&self) -> impl Iterator<Item = Vec<u64>> + '_ {
        let k = self.num_digits();
        let total: u64 = self.radixes.iter().product();
        (0..total).map(move |mut idx| {
            let mut digits = vec![0u64; k];
            for i in (0..k).rev() {
                digits[i] = idx % self.radixes[i];
                idx /= self.radixes[i];
            }
            digits
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_mixed_radixes() {
        let d = DigitLayout::new(vec![5, 7, 11, 13]);
        assert_eq!(d.num_digits(), 4);
        assert_eq!(d.bits(0), 3);
        assert_eq!(d.bits(2), 4);
        assert_eq!(d.total_bits(), 3 + 3 + 4 + 4);
        assert_eq!(d.offset(0), 0);
        assert_eq!(d.offset(3), 10);
    }

    #[test]
    fn example_47_ternary_dc_ratio() {
        // Example 4.7: 10-digit ternary, only (3/4)^10 = 0.0563 specified.
        let d = DigitLayout::uniform(3, 10);
        assert!((d.dc_ratio() - 0.9437).abs() < 5e-5);
    }

    #[test]
    fn paper_dc_ratios() {
        // Table 4 DC column spot checks.
        assert!((DigitLayout::new(vec![5, 7, 11, 13]).dc_ratio() - 0.695).abs() < 5e-4);
        assert!((DigitLayout::uniform(10, 6).dc_ratio() - 0.940).abs() < 5e-4);
        assert!((DigitLayout::uniform(10, 4).dc_ratio() - 0.847).abs() < 5e-4);
        assert!((DigitLayout::uniform(11, 4).dc_ratio() - 0.777).abs() < 5e-4);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = DigitLayout::new(vec![5, 7, 11, 13]);
        for digits in d.valid_combinations() {
            let word = d.encode(&digits);
            assert_eq!(d.decode(word), Some(digits));
        }
    }

    #[test]
    fn decode_rejects_invalid_codes() {
        let d = DigitLayout::uniform(3, 2); // 2 bits per digit, code 3 invalid
        assert_eq!(d.decode(0b0011), None);
        assert_eq!(d.decode(0b1100), None);
        assert_eq!(d.decode(0b1001), Some(vec![1, 2]));
    }

    #[test]
    fn valid_predicate_matches_decode() {
        let d = DigitLayout::new(vec![3, 5]);
        let layout = CfLayout::new(d.total_bits(), 1);
        let mut mgr = layout.new_manager();
        let valid = d.valid(&mut mgr, &layout);
        for word in 0..1u64 << d.total_bits() {
            let assignment: Vec<bool> =
                (0..layout.num_vars()).map(|i| word >> i & 1 == 1).collect();
            assert_eq!(
                mgr.eval(valid, &assignment),
                d.decode(word).is_some(),
                "word {word:#b}"
            );
        }
    }

    #[test]
    fn valid_combinations_counts() {
        let d = DigitLayout::new(vec![3, 5]);
        assert_eq!(d.valid_combinations().count(), 15);
        let all: Vec<_> = d.valid_combinations().collect();
        assert!(all.contains(&vec![2, 4]));
        assert!(all.contains(&vec![0, 0]));
    }
}
