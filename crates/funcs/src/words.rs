//! English word lists as index functions (§4.2, §5.3).
//!
//! Each word has up to 8 letters, blank-padded; a letter is one of 27
//! symbols (`a..z` plus blank) in 5 bits, so a word is `n = 40` input
//! bits. Word `i` maps to index `i+1` (1-based); in the *exact* variant
//! every other input maps to 0, in the *widened* variant (Fig. 8) it is
//! don't care.
//!
//! # Substitution note
//!
//! The paper's three concrete lists (1730 / 3366 / 4705 words, from \[19\])
//! are not distributed; this module generates deterministic synthetic
//! pseudo-English word lists of the same sizes and letter statistics. The
//! experiments only depend on those statistics (k sparse points in a
//! 27⁸-point space, DC ratio `1 − k/2⁴⁰ ≈ 99.9 %`), so the qualitative
//! results are preserved; see DESIGN.md.

use crate::Benchmark;
use bddcf_bdd::{BddManager, FALSE};
use bddcf_core::{CfLayout, IsfBdds};
use bddcf_logic::{MultiOracle, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Number of letters per word.
pub const WORD_LETTERS: usize = 8;
/// Bits per letter.
pub const LETTER_BITS: usize = 5;
/// The blank (padding) symbol code.
pub const BLANK: u8 = 26;

/// How inputs outside the registered word set are specified (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WordListMode {
    /// Every non-word maps to 0 — the exact index function.
    Exact,
    /// Non-words map to 0, but inputs containing an invalid 5-bit letter
    /// code (27..31) are don't cares: the paper's
    /// `1 − (27/32)⁸ ≈ 0.74` input-don't-care reading.
    LetterDc,
    /// Every non-word is don't care — the Fig. 8 widening,
    /// `DC = 1 − k/2⁴⁰ ≈ 99.9 %` (what Table 4's word rows use).
    #[default]
    Widened,
}

/// A list of unique words with 1-based indices, plus the chosen
/// out-of-dictionary semantics ([`WordListMode`]).
#[derive(Clone, Debug)]
pub struct WordList {
    words: Vec<String>,
    encoded: Vec<u64>,
    index_of: HashMap<u64, u64>,
    num_index_bits: usize,
    mode: WordListMode,
}

/// Encodes a word (lowercase ASCII, at most 8 letters) into 40 bits:
/// letter `p` occupies input bits `5p .. 5p+5` (first letter first),
/// missing positions are blanks.
///
/// # Panics
///
/// Panics on a non-lowercase-ASCII character or a word longer than 8.
pub fn encode_word(word: &str) -> u64 {
    assert!(word.len() <= WORD_LETTERS, "word {word:?} too long");
    let mut bits = 0u64;
    for p in 0..WORD_LETTERS {
        let code = match word.as_bytes().get(p) {
            Some(&c) => {
                assert!(c.is_ascii_lowercase(), "invalid character in {word:?}");
                c - b'a'
            }
            None => BLANK,
        };
        bits |= u64::from(code) << (LETTER_BITS * p);
    }
    bits
}

/// Generates `count` unique pseudo-English words deterministically from
/// `seed`, mimicking English letter and length statistics.
pub fn synthetic_words(count: usize, seed: u64) -> Vec<String> {
    // Rough English letter frequencies (per mille), a..z.
    const FREQ: [u32; 26] = [
        82, 15, 28, 43, 127, 22, 20, 61, 70, 2, 8, 40, 24, 67, 75, 19, 1, 60, 63, 91, 28, 10, 24,
        2, 20, 1,
    ];
    let total: u32 = FREQ.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut words = Vec::with_capacity(count);
    while words.len() < count {
        let len = *[3usize, 4, 4, 5, 5, 5, 6, 6, 7, 8]
            .get(rng.gen_range(0..10))
            .expect("index in range");
        let word: String = (0..len)
            .map(|_| {
                let mut pick = rng.gen_range(0..total);
                for (i, &f) in FREQ.iter().enumerate() {
                    if pick < f {
                        return (b'a' + i as u8) as char;
                    }
                    pick -= f;
                }
                'e'
            })
            .collect();
        if seen.insert(word.clone()) {
            words.push(word);
        }
    }
    words
}

impl WordList {
    /// Builds a word list function. `widened = false` is shorthand for
    /// [`WordListMode::Exact`], `widened = true` for
    /// [`WordListMode::Widened`]; use [`WordList::with_mode`] for the
    /// letter-code variant.
    ///
    /// # Panics
    ///
    /// Panics on duplicate words or an empty list.
    pub fn new(words: Vec<String>, widened: bool) -> Self {
        WordList::with_mode(
            words,
            if widened {
                WordListMode::Widened
            } else {
                WordListMode::Exact
            },
        )
    }

    /// Builds a word list function with explicit out-of-dictionary
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics on duplicate words or an empty list.
    pub fn with_mode(words: Vec<String>, mode: WordListMode) -> Self {
        assert!(!words.is_empty());
        let encoded: Vec<u64> = words.iter().map(|w| encode_word(w)).collect();
        let mut index_of = HashMap::with_capacity(encoded.len());
        for (i, &e) in encoded.iter().enumerate() {
            assert!(
                index_of.insert(e, (i + 1) as u64).is_none(),
                "duplicate word {:?}",
                words[i]
            );
        }
        let k = words.len() as u64;
        let num_index_bits = (64 - k.leading_zeros()) as usize;
        WordList {
            words,
            encoded,
            index_of,
            num_index_bits,
            mode,
        }
    }

    /// Synthetic list of `count` words (deterministic in `count`).
    pub fn synthetic(count: usize, widened: bool) -> Self {
        WordList::new(synthetic_words(count, 0x5a5a + count as u64), widened)
    }

    /// Synthetic list with explicit semantics.
    pub fn synthetic_with_mode(count: usize, mode: WordListMode) -> Self {
        WordList::with_mode(synthetic_words(count, 0x5a5a + count as u64), mode)
    }

    /// Does `input_bits` contain an invalid 5-bit letter code (≥ 27)?
    pub fn has_invalid_letter(input_bits: u64) -> bool {
        (0..WORD_LETTERS).any(|p| (input_bits >> (LETTER_BITS * p)) & 0x1f > u64::from(BLANK))
    }

    /// The three paper list sizes: 1730, 3366, 4705 (m = 11, 12, 13).
    pub fn paper_sizes() -> [usize; 3] {
        [1730, 3366, 4705]
    }

    /// The words.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// The 40-bit encodings, in index order.
    pub fn encoded(&self) -> &[u64] {
        &self.encoded
    }

    /// Number of registered words `k`.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Is this the widened (Fig. 8) variant?
    pub fn is_widened(&self) -> bool {
        self.mode == WordListMode::Widened
    }

    /// The out-of-dictionary semantics.
    pub fn mode(&self) -> WordListMode {
        self.mode
    }
}

impl MultiOracle for WordList {
    fn num_inputs(&self) -> usize {
        WORD_LETTERS * LETTER_BITS
    }

    fn num_outputs(&self) -> usize {
        self.num_index_bits
    }

    fn respond(&self, input: &[bool]) -> Response {
        let word = input
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        match self.index_of.get(&word) {
            Some(&index) => Response::Value(index),
            None => match self.mode {
                WordListMode::Widened => Response::DontCare,
                WordListMode::LetterDc if WordList::has_invalid_letter(word) => Response::DontCare,
                _ => Response::Value(0),
            },
        }
    }
}

impl Benchmark for WordList {
    fn name(&self) -> String {
        let suffix = match self.mode {
            WordListMode::Exact => "",
            WordListMode::LetterDc => " (letter dc)",
            WordListMode::Widened => " (widened)",
        };
        format!("{} words{}", self.len(), suffix)
    }

    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds {
        let input_vars = layout.input_vars();
        let m = self.num_outputs();
        let mut on = Vec::with_capacity(m);
        for j in 0..m {
            let minterms: Vec<u64> = self
                .encoded
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + 1) as u64 >> j & 1 == 1)
                .map(|(_, &w)| w)
                .collect();
            on.push(mgr.from_minterms(&input_vars, &minterms));
        }
        let dc = match self.mode {
            WordListMode::Widened => {
                let any = mgr.from_minterms(&input_vars, &self.encoded);
                let outside = mgr.not(any);
                vec![outside; m]
            }
            WordListMode::LetterDc => {
                // Some letter position holds a code ≥ 27. No registered
                // word contains one, so this set is disjoint from the ON
                // sets by construction.
                let mut invalid = FALSE;
                for p in 0..WORD_LETTERS {
                    let bits: Vec<_> = (0..LETTER_BITS)
                        .map(|b| mgr.var(layout.input_var(LETTER_BITS * p + b)))
                        .collect();
                    let ge27 = bddcf_bdd::bv::ge_const(mgr, &bits, 27);
                    invalid = mgr.or(invalid, ge27);
                }
                vec![invalid; m]
            }
            WordListMode::Exact => vec![FALSE; m],
        };
        IsfBdds::from_on_dc(mgr, on, dc)
    }

    fn dc_ratio(&self) -> f64 {
        match self.mode {
            WordListMode::Widened => 1.0 - self.len() as f64 / 2f64.powi(self.num_inputs() as i32),
            // §4.2: 1 − (27/32)^8 ≈ 0.74 (word minterms are negligible).
            WordListMode::LetterDc => 1.0 - (27.0f64 / 32.0).powi(WORD_LETTERS as i32),
            WordListMode::Exact => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_core::Cf;

    #[test]
    fn encoding_layout() {
        let e = encode_word("ab");
        assert_eq!(e & 0x1f, 0, "'a' = 0 in the first letter slot");
        assert_eq!(e >> 5 & 0x1f, 1, "'b' = 1 in the second slot");
        assert_eq!(e >> 10 & 0x1f, u64::from(BLANK), "padding is blank");
        assert_eq!(encode_word(""), encode_word(""));
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn rejects_long_words() {
        let _ = encode_word("abcdefghi");
    }

    #[test]
    fn synthetic_words_are_unique_and_deterministic() {
        let a = synthetic_words(500, 7);
        let b = synthetic_words(500, 7);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 500);
        assert!(a.iter().all(|w| (3..=8).contains(&w.len())));
    }

    #[test]
    fn index_bits_match_paper() {
        assert_eq!(WordList::synthetic(1730, true).num_outputs(), 11);
        assert_eq!(WordList::synthetic(3366, true).num_outputs(), 12);
        assert_eq!(WordList::synthetic(4705, true).num_outputs(), 13);
    }

    #[test]
    fn letter_dc_mode_matches_section_42() {
        let list = WordList::synthetic_with_mode(100, WordListMode::LetterDc);
        assert!(
            (list.dc_ratio() - 0.7428).abs() < 1e-3,
            "1-(27/32)^8 ≈ 0.74"
        );
        // A word with an invalid letter code is don't care…
        let mut bad = encode_word("cat");
        bad |= 31 << (LETTER_BITS * 7); // code 31 in the last slot
        assert!(WordList::has_invalid_letter(bad));
        let input: Vec<bool> = (0..40).map(|i| bad >> i & 1 == 1).collect();
        assert_eq!(list.respond(&input), Response::DontCare);
        // …a valid-letter non-word is 0.
        let good = encode_word("zzzzzzzz");
        assert!(!WordList::has_invalid_letter(good));
        let input: Vec<bool> = (0..40).map(|i| good >> i & 1 == 1).collect();
        assert_eq!(list.respond(&input), Response::Value(0));
    }

    #[test]
    fn letter_dc_isf_is_consistent_with_oracle() {
        let list = WordList::with_mode(
            vec!["ab".into(), "ba".into(), "cc".into()],
            WordListMode::LetterDc,
        );
        let mut cf =
            bddcf_core::Cf::build(list.layout(), |mgr, layout| list.build_isf(mgr, layout));
        // Registered word: exact index.
        let ab: Vec<bool> = (0..40).map(|i| encode_word("ab") >> i & 1 == 1).collect();
        assert_eq!(cf.allowed_words(&ab), vec![1]);
        // Valid-letter non-word: forced 0.
        let xy: Vec<bool> = (0..40).map(|i| encode_word("xy") >> i & 1 == 1).collect();
        assert_eq!(cf.allowed_words(&xy), vec![0]);
        // Invalid letter code: free.
        let mut bad = encode_word("ab");
        bad |= 30 << (LETTER_BITS * 3);
        let input: Vec<bool> = (0..40).map(|i| bad >> i & 1 == 1).collect();
        assert_eq!(cf.allowed_words(&input).len(), 4);
    }

    #[test]
    fn widened_dc_ratio_is_high() {
        let list = WordList::synthetic(1730, true);
        assert!(list.dc_ratio() > 0.999);
        let exact = WordList::synthetic(1730, false);
        assert_eq!(exact.dc_ratio(), 0.0);
    }

    #[test]
    fn oracle_answers() {
        let list = WordList::new(vec!["cat".into(), "dog".into()], false);
        let cat: Vec<bool> = (0..40).map(|i| encode_word("cat") >> i & 1 == 1).collect();
        assert_eq!(list.respond(&cat), Response::Value(1));
        let dog: Vec<bool> = (0..40).map(|i| encode_word("dog") >> i & 1 == 1).collect();
        assert_eq!(list.respond(&dog), Response::Value(2));
        let cow: Vec<bool> = (0..40).map(|i| encode_word("cow") >> i & 1 == 1).collect();
        assert_eq!(list.respond(&cow), Response::Value(0));
        let widened = WordList::new(vec!["cat".into(), "dog".into()], true);
        assert_eq!(widened.respond(&cow), Response::DontCare);
    }

    #[test]
    fn cf_of_a_small_list_matches_oracle() {
        let list = WordList::new(
            vec![
                "ape".into(),
                "bee".into(),
                "cat".into(),
                "doe".into(),
                "elk".into(),
            ],
            false,
        );
        let cf = Cf::build(list.layout(), |mgr, layout| list.build_isf(mgr, layout));
        for w in list.words() {
            let bits = encode_word(w);
            let input: Vec<bool> = (0..40).map(|i| bits >> i & 1 == 1).collect();
            if let Response::Value(expect) = list.respond(&input) {
                assert_eq!(cf.eval_completed(&input), expect, "word {w}");
            }
        }
        // A couple of non-words must give 0 in the exact variant.
        for w in ["fox", "gnu", "hen"] {
            let bits = encode_word(w);
            let input: Vec<bool> = (0..40).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(cf.eval_completed(&input), 0, "non-word {w}");
        }
    }

    #[test]
    fn widened_cf_admits_anything_outside() {
        let list = WordList::new(vec!["hi".into(), "yo".into()], true);
        let mut cf = Cf::build(list.layout(), |mgr, layout| list.build_isf(mgr, layout));
        let outside: Vec<bool> = (0..40).map(|i| encode_word("no") >> i & 1 == 1).collect();
        let words = cf.allowed_words(&outside);
        assert_eq!(words.len(), 4, "2 index bits all free");
        let hi: Vec<bool> = (0..40).map(|i| encode_word("hi") >> i & 1 == 1).collect();
        assert_eq!(cf.allowed_words(&hi), vec![1]);
    }
}
