//! Benchmark function generators for the paper's evaluation (§4):
//! residue-number-system converters, p-nary→binary radix converters,
//! BCD (decimal) adders and multipliers, and English word lists.
//!
//! Every generator implements [`Benchmark`]: it can
//!
//! * report its arity and analytic don't-care ratio,
//! * answer point queries ([`MultiOracle`]) — the ground truth for sampled
//!   end-to-end verification, and
//! * build its ON/OFF/DC sets **symbolically** as BDDs
//!   ([`Benchmark::build_isf`]) — the arithmetic functions are constructed
//!   with bit-vector arithmetic ([`bddcf_bdd::bv`]), never by enumerating
//!   their up-to-`2^40`-row truth tables.
//!
//! # Output numbering
//!
//! Output `0` is the **most significant** bit of the numeric result, so the
//! paper's partition `F₁ = (f₁ … f⌈m/2⌉)` (the high half) is output range
//! `0..⌈m/2⌉` and `F₂` (the "least significant bits" the paper highlights)
//! is `⌈m/2⌉..m`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcd;
pub mod digits;
pub mod radix;
pub mod registry;
pub mod rns;
pub mod words;

pub use bcd::{DecimalAdder, DecimalMultiplier};
pub use radix::{BinaryToRadix, RadixConverter};
pub use registry::{small_benchmarks, table4_benchmarks, BenchmarkEntry};
pub use rns::RnsConverter;
pub use words::WordList;

use bddcf_bdd::BddManager;
use bddcf_core::{CfLayout, IsfBdds};
use bddcf_logic::MultiOracle;

/// A named benchmark function that can be queried pointwise and built
/// symbolically.
pub trait Benchmark: MultiOracle {
    /// Display name, e.g. `"5-7-11-13 RNS"`.
    fn name(&self) -> String;

    /// Builds the ON/OFF/DC sets over the input variables of `mgr`
    /// (laid out per `layout`).
    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds;

    /// The layout matching this benchmark's arity.
    fn layout(&self) -> CfLayout {
        CfLayout::new(self.num_inputs(), self.num_outputs())
    }

    /// Analytic input-don't-care ratio (§4.1's formula where applicable).
    fn dc_ratio(&self) -> f64;

    /// A structurally good initial variable order (full layout, inputs and
    /// outputs, top to bottom), when the generator knows one — e.g. the
    /// digit-interleaved order of the decimal adders, whose carry-chain
    /// structure single-variable sifting cannot discover from the block
    /// order. Must satisfy Definition 2.4. `None` means the default
    /// inputs-then-outputs order.
    fn preferred_order(&self) -> Option<Vec<bddcf_bdd::Var>> {
        None
    }
}

/// Creates the manager (honouring the benchmark's preferred order), builds
/// the ISF, and returns all three pieces — the common preamble of every
/// experiment.
pub fn build_isf_pieces(benchmark: &dyn Benchmark) -> (BddManager, CfLayout, IsfBdds) {
    let layout = benchmark.layout();
    let mut mgr = layout.new_manager();
    if let Some(order) = benchmark.preferred_order() {
        mgr.set_order(&order);
    }
    let isf = benchmark.build_isf(&mut mgr, &layout);
    (mgr, layout, isf)
}

/// Packs a numeric `value` of `m` bits into the output word convention
/// (output 0 = MSB ⇒ response bit `j` = value bit `m-1-j`).
pub fn value_to_word(value: u64, m: usize) -> u64 {
    let mut word = 0u64;
    for j in 0..m {
        if value >> (m - 1 - j) & 1 == 1 {
            word |= 1 << j;
        }
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_word_roundtrip() {
        // value 0b101 over 3 outputs: output0 (MSB)=1, output1=0, output2=1.
        assert_eq!(value_to_word(0b101, 3), 0b101);
        // value 0b100: output0=1 -> word bit0 =1; others 0.
        assert_eq!(value_to_word(0b100, 3), 0b001);
        assert_eq!(value_to_word(0b001, 3), 0b100);
    }
}
