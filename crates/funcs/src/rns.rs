//! Residue-number-system → binary converters (§4.1, Fig. 9).
//!
//! The input is a tuple of binary-coded residues `(r₀ … r_{k−1})` modulo
//! pairwise-coprime `(m₀ … m_{k−1})`; the output is the unique
//! `v ∈ [0, M)`, `M = Π mᵢ`, with `v ≡ rᵢ (mod mᵢ)` — reconstructed by the
//! Chinese Remainder Theorem: `v = (Σ rᵢ·wᵢ) mod M` with
//! `wᵢ = Mᵢ·(Mᵢ⁻¹ mod mᵢ)`, `Mᵢ = M/mᵢ`. Residue codes `≥ mᵢ` are input
//! don't cares.

use crate::digits::DigitLayout;
use crate::{value_to_word, Benchmark};
use bddcf_bdd::bv::{self, BitVec};
use bddcf_bdd::BddManager;
use bddcf_core::{CfLayout, IsfBdds};
use bddcf_logic::{MultiOracle, Response};

/// An RNS-to-binary converter for a fixed modulus set.
///
/// # Example
///
/// ```
/// use bddcf_funcs::{Benchmark, RnsConverter};
/// use bddcf_core::Cf;
///
/// use bddcf_logic::MultiOracle;
///
/// let rns = RnsConverter::new(vec![3, 5]);
/// let cf = Cf::build(rns.layout(), |mgr, layout| rns.build_isf(mgr, layout));
/// // residues (2 mod 3, 4 mod 5) -> 14; inputs are binary-coded residues
/// // over 2 + 3 = 5 bits.
/// assert_eq!(rns.value_of(&[2, 4]), 14);
/// let word = rns.digits().encode(&[2, 4]);
/// let input: Vec<bool> = (0..rns.num_inputs()).map(|i| word >> i & 1 == 1).collect();
/// let out = cf.eval_completed(&input);
/// assert_eq!(out, bddcf_funcs::value_to_word(14, rns.num_outputs()));
/// ```
#[derive(Clone, Debug)]
pub struct RnsConverter {
    digits: DigitLayout,
    moduli: Vec<u64>,
    weights: Vec<u64>,
    modulus_product: u64,
    num_outputs: usize,
}

impl RnsConverter {
    /// Converter for the given moduli (must be pairwise coprime, each ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if the moduli are not pairwise coprime or `Π mᵢ` overflows.
    pub fn new(moduli: Vec<u64>) -> Self {
        assert!(!moduli.is_empty());
        for (i, &a) in moduli.iter().enumerate() {
            assert!(a >= 2, "modulus must be at least 2");
            for &b in &moduli[..i] {
                assert_eq!(gcd(a, b), 1, "moduli {a} and {b} are not coprime");
            }
        }
        let modulus_product: u64 = moduli
            .iter()
            .try_fold(1u64, |acc, &m| acc.checked_mul(m))
            .expect("modulus product overflows u64");
        let weights = moduli
            .iter()
            .map(|&m| {
                let mi = modulus_product / m;
                mi * mod_inverse(mi % m, m)
            })
            .collect();
        RnsConverter {
            digits: DigitLayout::new(moduli.clone()),
            moduli,
            weights,
            modulus_product,
            num_outputs: bv::bits_for(modulus_product - 1),
        }
    }

    /// The paper's `5-7-11-13 RNS` benchmark (14 in, 13 out).
    pub fn rns_5_7_11_13() -> Self {
        RnsConverter::new(vec![5, 7, 11, 13])
    }

    /// The paper's `7-11-13-17 RNS` benchmark (16 in, 15 out).
    pub fn rns_7_11_13_17() -> Self {
        RnsConverter::new(vec![7, 11, 13, 17])
    }

    /// The paper's `11-13-15-17 RNS` benchmark (17 in, 16 out).
    pub fn rns_11_13_15_17() -> Self {
        RnsConverter::new(vec![11, 13, 15, 17])
    }

    /// `M = Π mᵢ`.
    pub fn modulus_product(&self) -> u64 {
        self.modulus_product
    }

    /// The digit layout of the inputs.
    pub fn digits(&self) -> &DigitLayout {
        &self.digits
    }

    /// CRT reconstruction from residue values.
    pub fn value_of(&self, residues: &[u64]) -> u64 {
        residues
            .iter()
            .zip(&self.weights)
            .fold(0u128, |acc, (&r, &w)| acc + u128::from(r) * u128::from(w))
            .rem_euclid(u128::from(self.modulus_product)) as u64
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Modular inverse by exhaustion (moduli here are tiny).
fn mod_inverse(a: u64, m: u64) -> u64 {
    (1..m)
        .find(|&x| a * x % m == 1)
        .unwrap_or_else(|| panic!("{a} has no inverse modulo {m}"))
}

impl MultiOracle for RnsConverter {
    fn num_inputs(&self) -> usize {
        self.digits.total_bits()
    }

    fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    fn respond(&self, input: &[bool]) -> Response {
        let word = input
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        match self.digits.decode(word) {
            None => Response::DontCare,
            Some(residues) => {
                Response::Value(value_to_word(self.value_of(&residues), self.num_outputs))
            }
        }
    }
}

impl Benchmark for RnsConverter {
    fn name(&self) -> String {
        let parts: Vec<String> = self.moduli.iter().map(u64::to_string).collect();
        format!("{} RNS", parts.join("-"))
    }

    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds {
        // Σ rᵢ·wᵢ symbolically, then mod M by restoring division.
        let mut sum: BitVec = Vec::new();
        for i in 0..self.digits.num_digits() {
            let residue = self.digits.digit_bv(mgr, layout, i);
            let term = bv::mul_const(mgr, &residue, self.weights[i]);
            sum = bv::add(mgr, &sum, &term);
        }
        let value = bv::mod_const(mgr, &sum, self.modulus_product);
        let value = bv::resize(&value, self.num_outputs);
        let valid = self.digits.valid(mgr, layout);
        let invalid = mgr.not(valid);
        let mut on = Vec::with_capacity(self.num_outputs);
        let mut dc = Vec::with_capacity(self.num_outputs);
        for j in 0..self.num_outputs {
            let bit = value[self.num_outputs - 1 - j];
            on.push(mgr.and(valid, bit));
            dc.push(invalid);
        }
        IsfBdds::from_on_dc(mgr, on, dc)
    }

    fn dc_ratio(&self) -> f64 {
        self.digits.dc_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_core::Cf;

    #[test]
    fn crt_reconstruction() {
        let rns = RnsConverter::new(vec![3, 5, 7]);
        assert_eq!(rns.modulus_product(), 105);
        for v in 0..105u64 {
            let residues = [v % 3, v % 5, v % 7];
            assert_eq!(rns.value_of(&residues), v, "value {v}");
        }
    }

    #[test]
    fn paper_arities() {
        let r1 = RnsConverter::rns_5_7_11_13();
        assert_eq!(r1.num_inputs(), 14);
        assert_eq!(r1.num_outputs(), 13);
        let r2 = RnsConverter::rns_7_11_13_17();
        assert_eq!(r2.num_inputs(), 16);
        assert_eq!(r2.num_outputs(), 15);
        let r3 = RnsConverter::rns_11_13_15_17();
        assert_eq!(r3.num_inputs(), 17);
        assert_eq!(r3.num_outputs(), 16);
    }

    #[test]
    fn paper_dc_ratios() {
        assert!((RnsConverter::rns_5_7_11_13().dc_ratio() - 0.695).abs() < 5e-4);
        assert!((RnsConverter::rns_7_11_13_17().dc_ratio() - 0.740).abs() < 5e-4);
        assert!((RnsConverter::rns_11_13_15_17().dc_ratio() - 0.722).abs() < 5e-4);
    }

    #[test]
    fn symbolic_construction_matches_oracle_small() {
        let rns = RnsConverter::new(vec![3, 5]);
        let n = rns.num_inputs();
        let mut cf = Cf::build(rns.layout(), |mgr, layout| rns.build_isf(mgr, layout));
        for word in 0..1u64 << n {
            let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
            if let Response::Value(expect) = rns.respond(&input) {
                assert_eq!(cf.eval_completed(&input), expect, "input {word:#b}");
            }
        }
        assert!(cf.is_fully_live());
    }

    #[test]
    fn symbolic_construction_matches_oracle_medium() {
        let rns = RnsConverter::new(vec![3, 5, 7]);
        let n = rns.num_inputs();
        let cf = Cf::build(rns.layout(), |mgr, layout| rns.build_isf(mgr, layout));
        // Exhaustive over the valid combinations.
        for residues in rns.digits().valid_combinations() {
            let word = rns.digits().encode(&residues);
            let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
            assert_eq!(
                cf.eval_completed(&input),
                value_to_word(rns.value_of(&residues), rns.num_outputs()),
                "residues {residues:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not coprime")]
    fn rejects_non_coprime_moduli() {
        let _ = RnsConverter::new(vec![4, 6]);
    }
}
