//! p-nary → binary radix converters (§4.1).
//!
//! A `k`-digit `p`-nary number in binary-coded-`p`-nary becomes the binary
//! number `Σ dᵢ·pⁱ`. Outputs: `⌈log₂ pᵏ⌉` bits, MSB first. Digit codes
//! `≥ p` are input don't cares.

use crate::digits::DigitLayout;
use crate::{value_to_word, Benchmark};
use bddcf_bdd::bv::{self, BitVec};
use bddcf_bdd::{BddManager, FALSE};
use bddcf_core::{CfLayout, IsfBdds};
use bddcf_logic::{MultiOracle, Response};

/// A `k`-digit `p`-nary to binary converter.
#[derive(Clone, Debug)]
pub struct RadixConverter {
    digits: DigitLayout,
    radix: u64,
    num_outputs: usize,
}

impl RadixConverter {
    /// The `k`-digit radix-`p` converter.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`, `k == 0`, or `pᵏ` overflows `u64`.
    pub fn new(radix: u64, k: usize) -> Self {
        assert!(k > 0, "need at least one digit");
        let max = radix.checked_pow(k as u32).expect("p^k must fit in u64") - 1;
        RadixConverter {
            digits: DigitLayout::uniform(radix, k),
            radix,
            num_outputs: bv::bits_for(max),
        }
    }

    /// The digit layout of the inputs.
    pub fn digits(&self) -> &DigitLayout {
        &self.digits
    }

    /// Numeric value of a digit vector (most significant digit first).
    pub fn value_of(&self, digits: &[u64]) -> u64 {
        digits.iter().fold(0, |acc, &d| acc * self.radix + d)
    }
}

impl MultiOracle for RadixConverter {
    fn num_inputs(&self) -> usize {
        self.digits.total_bits()
    }

    fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    fn respond(&self, input: &[bool]) -> Response {
        let word = input
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        match self.digits.decode(word) {
            None => Response::DontCare,
            Some(digits) => {
                Response::Value(value_to_word(self.value_of(&digits), self.num_outputs))
            }
        }
    }
}

impl Benchmark for RadixConverter {
    fn name(&self) -> String {
        format!(
            "{}-digit {}-nary to binary",
            self.digits.num_digits(),
            self.radix
        )
    }

    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds {
        // Horner evaluation over symbolic digits: value = ((d₀·p)+d₁)·p …
        let mut value: BitVec = Vec::new();
        for i in 0..self.digits.num_digits() {
            let scaled = bv::mul_const(mgr, &value, self.radix);
            let digit = self.digits.digit_bv(mgr, layout, i);
            value = bv::add(mgr, &scaled, &digit);
        }
        let valid = self.digits.valid(mgr, layout);
        let invalid = mgr.not(valid);
        // Bits above the output width can only be set by invalid digit
        // codes (valid values fit ⌈log₂ pᵏ⌉ bits); drop them after checking.
        for &bit in value.iter().skip(self.num_outputs) {
            debug_assert_eq!(mgr.and(valid, bit), FALSE, "valid value overflows outputs");
        }
        value.truncate(self.num_outputs);
        let value = bv::resize(&value, self.num_outputs);
        let mut on = Vec::with_capacity(self.num_outputs);
        let mut dc = Vec::with_capacity(self.num_outputs);
        for j in 0..self.num_outputs {
            let bit = value[self.num_outputs - 1 - j]; // output 0 = MSB
            on.push(mgr.and(valid, bit));
            dc.push(invalid);
        }
        IsfBdds::from_on_dc(mgr, on, dc)
    }

    fn dc_ratio(&self) -> f64 {
        self.digits.dc_ratio()
    }
}

/// A binary → `k`-digit `p`-nary converter — the inverse direction of
/// [`RadixConverter`], covering the other half of the radix-conversion
/// family the paper's reference \[16\] studies. Inputs are the
/// `⌈log₂ pᵏ⌉` bits of a binary number `v < pᵏ`; outputs are the `k`
/// binary-coded `p`-nary digits (most significant digit first, MSB-first
/// within a digit). Inputs `v ≥ pᵏ` are don't cares.
#[derive(Clone, Debug)]
pub struct BinaryToRadix {
    radix: u64,
    k: usize,
    num_inputs: usize,
}

impl BinaryToRadix {
    /// The binary → `k`-digit radix-`p` converter.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`, `k == 0`, or `pᵏ` overflows `u64`.
    pub fn new(radix: u64, k: usize) -> Self {
        assert!(radix >= 2 && k > 0, "need p ≥ 2 and at least one digit");
        let max = radix.checked_pow(k as u32).expect("p^k must fit in u64") - 1;
        BinaryToRadix {
            radix,
            k,
            num_inputs: bv::bits_for(max),
        }
    }

    /// Bits per output digit.
    pub fn digit_bits(&self) -> usize {
        bv::bits_for(self.radix - 1)
    }

    /// The digits of `value` (most significant first).
    pub fn digits_of(&self, mut value: u64) -> Vec<u64> {
        let mut digits = vec![0u64; self.k];
        for d in (0..self.k).rev() {
            digits[d] = value % self.radix;
            value /= self.radix;
        }
        digits
    }
}

impl MultiOracle for BinaryToRadix {
    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn num_outputs(&self) -> usize {
        self.k * self.digit_bits()
    }

    fn respond(&self, input: &[bool]) -> Response {
        let value = input
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        if value >= self.radix.pow(self.k as u32) {
            return Response::DontCare;
        }
        let b = self.digit_bits();
        let mut word = 0u64;
        for (d, digit) in self.digits_of(value).into_iter().enumerate() {
            for bit in 0..b {
                if digit >> bit & 1 == 1 {
                    // MSB-first within the digit block.
                    word |= 1 << (d * b + (b - 1 - bit));
                }
            }
        }
        Response::Value(word)
    }
}

impl Benchmark for BinaryToRadix {
    fn name(&self) -> String {
        format!("binary to {}-digit {}-nary", self.k, self.radix)
    }

    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds {
        // Repeated symbolic div-mod extracts the digits from the input.
        let mut value: BitVec = (0..self.num_inputs)
            .map(|i| mgr.var(layout.input_var(i)))
            .collect();
        let b = self.digit_bits();
        let mut digit_bvs: Vec<BitVec> = Vec::with_capacity(self.k);
        for _ in 0..self.k - 1 {
            let (q, r) = bv::divmod_const(mgr, &value, self.radix);
            let mut digit = r;
            digit.truncate(b);
            digit.resize(b, bddcf_bdd::FALSE);
            digit_bvs.push(digit);
            value = q;
        }
        // The most significant digit is what remains (< p on valid inputs;
        // wider bits only fire on don't-care inputs).
        let mut top = value;
        top.truncate(b);
        top.resize(b, bddcf_bdd::FALSE);
        digit_bvs.push(top);
        digit_bvs.reverse(); // most significant digit first

        let valid = {
            let input_bv: BitVec = (0..self.num_inputs)
                .map(|i| mgr.var(layout.input_var(i)))
                .collect();
            bv::lt_const(mgr, &input_bv, self.radix.pow(self.k as u32))
        };
        let invalid = mgr.not(valid);
        let m = self.num_outputs();
        let mut on = Vec::with_capacity(m);
        let mut dc = Vec::with_capacity(m);
        for j in 0..m {
            let d = j / b;
            let bit = b - 1 - j % b;
            let value_bit = digit_bvs[d][bit];
            on.push(mgr.and(valid, value_bit));
            dc.push(invalid);
        }
        IsfBdds::from_on_dc(mgr, on, dc)
    }

    fn dc_ratio(&self) -> f64 {
        1.0 - self.radix.pow(self.k as u32) as f64 / 2f64.powi(self.num_inputs as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_core::Cf;

    /// Builds the CF and exhaustively checks it against the oracle.
    fn check_converter(radix: u64, k: usize) {
        let conv = RadixConverter::new(radix, k);
        let n = conv.num_inputs();
        assert!(n <= 12, "exhaustive test only for small converters");
        let mut cf = Cf::build(conv.layout(), |mgr, layout| conv.build_isf(mgr, layout));
        for word in 0..1u64 << n {
            let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
            let got = cf.eval_completed(&input);
            match conv.respond(&input) {
                Response::Value(expect) => {
                    assert_eq!(got, expect, "{} input {word:#x}", conv.name());
                }
                Response::DontCare => {} // anything goes
            }
        }
        assert!(cf.is_fully_live());
    }

    #[test]
    fn ternary_2_digits() {
        check_converter(3, 2);
    }

    #[test]
    fn ternary_4_digits() {
        check_converter(3, 4);
    }

    #[test]
    fn five_nary_2_digits() {
        check_converter(5, 2);
    }

    #[test]
    fn ten_nary_2_digits() {
        check_converter(10, 2);
    }

    #[test]
    fn thirteen_nary_2_digits() {
        check_converter(13, 2);
    }

    #[test]
    fn paper_arities() {
        // Table 4's In/Out columns.
        let cases = [
            (11, 4, 16, 14),
            (13, 4, 16, 15),
            (10, 5, 20, 17),
            (5, 6, 18, 14),
            (6, 6, 18, 16),
            (7, 6, 18, 17),
            (3, 10, 20, 16),
        ];
        for (p, k, inputs, outputs) in cases {
            let conv = RadixConverter::new(p, k);
            assert_eq!(conv.num_inputs(), inputs, "{p}-nary {k}-digit inputs");
            assert_eq!(conv.num_outputs(), outputs, "{p}-nary {k}-digit outputs");
        }
    }

    #[test]
    fn binary_to_ternary_exhaustive() {
        let conv = BinaryToRadix::new(3, 3); // v < 27, 5 input bits
        assert_eq!(conv.num_inputs(), 5);
        assert_eq!(conv.num_outputs(), 6);
        let cf = Cf::build(conv.layout(), |mgr, layout| conv.build_isf(mgr, layout));
        for v in 0..1u64 << conv.num_inputs() {
            let input: Vec<bool> = (0..conv.num_inputs()).map(|i| v >> i & 1 == 1).collect();
            if let Response::Value(expect) = conv.respond(&input) {
                assert_eq!(cf.eval_completed(&input), expect, "value {v}");
            }
        }
    }

    #[test]
    fn binary_to_decimal_digits() {
        let conv = BinaryToRadix::new(10, 2); // v < 100, 7 bits
        assert_eq!(conv.digits_of(73), vec![7, 3]);
        let cf = Cf::build(conv.layout(), |mgr, layout| conv.build_isf(mgr, layout));
        for v in 0..100u64 {
            let input: Vec<bool> = (0..7).map(|i| v >> i & 1 == 1).collect();
            let Response::Value(expect) = conv.respond(&input) else {
                panic!("value {v} must be specified");
            };
            assert_eq!(cf.eval_completed(&input), expect, "value {v}");
        }
        // dc ratio: 1 - 100/128
        assert!((conv.dc_ratio() - (1.0 - 100.0 / 128.0)).abs() < 1e-12);
    }

    #[test]
    fn round_trip_through_both_converters() {
        // binary -> ternary -> binary must be the identity on valid values.
        let to_t = BinaryToRadix::new(3, 3);
        let to_b = RadixConverter::new(3, 3);
        for v in 0..27u64 {
            let digits = to_t.digits_of(v);
            assert_eq!(to_b.value_of(&digits), v);
        }
    }

    #[test]
    fn oracle_values() {
        let conv = RadixConverter::new(3, 3);
        // digits (2,1,0) -> 2*9 + 1*3 + 0 = 21.
        assert_eq!(conv.value_of(&[2, 1, 0]), 21);
        let word = conv.digits().encode(&[2, 1, 0]);
        let input: Vec<bool> = (0..conv.num_inputs()).map(|i| word >> i & 1 == 1).collect();
        assert_eq!(
            conv.respond(&input),
            Response::Value(value_to_word(21, conv.num_outputs()))
        );
    }
}
