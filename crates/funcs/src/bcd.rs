//! BCD (binary-coded decimal) arithmetic benchmarks: the paper's k-digit
//! decimal adders and the 2-digit decimal multiplier (§4.1).
//!
//! Every decimal digit uses 4 bits; codes `10..15` are input don't cares
//! (§4.1's ratio: `1 − (10/16)^{digits}`).

use crate::digits::DigitLayout;
use crate::Benchmark;
use bddcf_bdd::bv::{self, BitVec};
use bddcf_bdd::{BddManager, FALSE};
use bddcf_core::{CfLayout, IsfBdds};
use bddcf_logic::{MultiOracle, Response};

/// Packs a decimal `value` into the output-word convention: the result has
/// `digits` BCD digits, most significant digit first, and within each digit
/// the MSB comes first (so output 0 is the topmost bit of the topmost
/// digit).
fn decimal_to_word(value: u64, digits: usize) -> u64 {
    let mut word = 0u64;
    let mut v = value;
    // Digit index `digits-1` is the units digit.
    for d in (0..digits).rev() {
        let code = v % 10;
        v /= 10;
        for b in 0..4 {
            if code >> b & 1 == 1 {
                // Output index of bit b (LSB) of digit d: digit block d,
                // MSB-first within the block.
                let j = d * 4 + (3 - b);
                word |= 1 << j;
            }
        }
    }
    debug_assert_eq!(v, 0, "value needs more than {digits} decimal digits");
    word
}

/// Truncates a bit-vector, allowing the dropped bits to be non-constant
/// (they are only reachable on invalid inputs).
fn truncate_unchecked(mut value: BitVec, width: usize) -> BitVec {
    value.truncate(width);
    while value.len() < width {
        value.push(FALSE);
    }
    value
}

/// A `k`-digit decimal adder: two BCD operands in, a `(k+1)`-digit BCD sum
/// out.
#[derive(Clone, Debug)]
pub struct DecimalAdder {
    k: usize,
    digits: DigitLayout,
}

impl DecimalAdder {
    /// The `k`-digit adder (the paper uses `k = 3` and `k = 4`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the arity would exceed 64 bits.
    pub fn new(k: usize) -> Self {
        assert!(k > 0 && 8 * k <= 64, "unsupported digit count {k}");
        // Input layout: digit pair i (0 = most significant): aᵢ then bᵢ.
        DecimalAdder {
            k,
            digits: DigitLayout::uniform(10, 2 * k),
        }
    }

    /// Decodes the two operands from an input word; `None` on invalid BCD.
    fn operands(&self, input_word: u64) -> Option<(u64, u64)> {
        let digits = self.digits.decode(input_word)?;
        let mut a = 0u64;
        let mut b = 0u64;
        for i in 0..self.k {
            a = a * 10 + digits[2 * i];
            b = b * 10 + digits[2 * i + 1];
        }
        Some((a, b))
    }
}

impl MultiOracle for DecimalAdder {
    fn num_inputs(&self) -> usize {
        8 * self.k
    }

    fn num_outputs(&self) -> usize {
        4 * (self.k + 1)
    }

    fn respond(&self, input: &[bool]) -> Response {
        let word = input
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        match self.operands(word) {
            None => Response::DontCare,
            Some((a, b)) => Response::Value(decimal_to_word(a + b, self.k + 1)),
        }
    }
}

impl Benchmark for DecimalAdder {
    fn name(&self) -> String {
        format!("{}-digit decimal adder", self.k)
    }

    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds {
        // Digit-serial BCD addition from the units digit up.
        let mut carry = FALSE;
        // sum_digits[d] = 4-bit BCD code of result digit d (0 = most
        // significant of the k+1 digits).
        let mut sum_digits: Vec<BitVec> = vec![Vec::new(); self.k + 1];
        for i in (0..self.k).rev() {
            let a = self.digits.digit_bv(mgr, layout, 2 * i);
            let b = self.digits.digit_bv(mgr, layout, 2 * i + 1);
            let ab = bv::add(mgr, &a, &b);
            let s = bv::add(mgr, &ab, &vec![carry]);
            let ge10 = bv::ge_const(mgr, &s, 10);
            let (diff, _) = bv::sub(mgr, &s, &bv::constant(10, s.len()));
            let corrected = bv::select(mgr, ge10, &diff, &s);
            sum_digits[i + 1] = truncate_unchecked(corrected, 4);
            carry = ge10;
        }
        sum_digits[0] = vec![carry, FALSE, FALSE, FALSE];

        let valid = self.digits.valid(mgr, layout);
        let invalid = mgr.not(valid);
        let m = self.num_outputs();
        let mut on = Vec::with_capacity(m);
        let mut dc = Vec::with_capacity(m);
        for j in 0..m {
            let digit = j / 4;
            let bit = 3 - j % 4; // MSB-first within the digit
            let value_bit = sum_digits[digit][bit];
            on.push(mgr.and(valid, value_bit));
            dc.push(invalid);
        }
        IsfBdds::from_on_dc(mgr, on, dc)
    }

    fn dc_ratio(&self) -> f64 {
        self.digits.dc_ratio()
    }

    /// Carry-chain order: units digit pair first, each sum digit directly
    /// below the operand digits it is determined by (together with the
    /// carry from below, whose inputs are above too), the final carry digit
    /// last. This keeps the BDD_for_CF width near the carry-state count —
    /// the structure behind the paper's width-10..27 adder rows.
    fn preferred_order(&self) -> Option<Vec<bddcf_bdd::Var>> {
        let layout = self.layout();
        let mut order = Vec::with_capacity(layout.num_vars());
        for i in (0..self.k).rev() {
            // operand digits aᵢ, bᵢ (digit-layout digits 2i and 2i+1)
            for d in [2 * i, 2 * i + 1] {
                let offset = self.digits.offset(d);
                for b in 0..self.digits.bits(d) {
                    order.push(layout.input_var(offset + b));
                }
            }
            // sum digit i sits at output digit d = i+1 (digit 0 is the
            // final carry), outputs 4d .. 4d+4
            for j in 4 * (i + 1)..4 * (i + 2) {
                order.push(layout.output_var(j));
            }
        }
        for j in 0..4 {
            order.push(layout.output_var(j)); // the carry digit, at the bottom
        }
        Some(order)
    }
}

/// A `k`-digit decimal multiplier: two BCD operands in, a `2k`-digit BCD
/// product out (the paper uses `k = 2`: 16 in, 16 out).
#[derive(Clone, Debug)]
pub struct DecimalMultiplier {
    k: usize,
    digits: DigitLayout,
}

impl DecimalMultiplier {
    /// The `k`-digit multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 4` (the symbolic product grows quickly).
    pub fn new(k: usize) -> Self {
        assert!(k > 0 && k <= 4, "unsupported digit count {k}");
        DecimalMultiplier {
            k,
            digits: DigitLayout::uniform(10, 2 * k),
        }
    }

    fn operands(&self, input_word: u64) -> Option<(u64, u64)> {
        let digits = self.digits.decode(input_word)?;
        let mut a = 0u64;
        let mut b = 0u64;
        for i in 0..self.k {
            a = a * 10 + digits[2 * i];
            b = b * 10 + digits[2 * i + 1];
        }
        Some((a, b))
    }
}

impl MultiOracle for DecimalMultiplier {
    fn num_inputs(&self) -> usize {
        8 * self.k
    }

    fn num_outputs(&self) -> usize {
        8 * self.k
    }

    fn respond(&self, input: &[bool]) -> Response {
        let word = input
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        match self.operands(word) {
            None => Response::DontCare,
            Some((a, b)) => Response::Value(decimal_to_word(a * b, 2 * self.k)),
        }
    }
}

impl Benchmark for DecimalMultiplier {
    fn name(&self) -> String {
        format!("{}-digit decimal multiplier", self.k)
    }

    fn build_isf(&self, mgr: &mut BddManager, layout: &CfLayout) -> IsfBdds {
        // Binary values of the operands (Horner over BCD digits)…
        let mut a: BitVec = Vec::new();
        let mut b: BitVec = Vec::new();
        for i in 0..self.k {
            let da = self.digits.digit_bv(mgr, layout, 2 * i);
            let db = self.digits.digit_bv(mgr, layout, 2 * i + 1);
            let a10 = bv::mul_const(mgr, &a, 10);
            a = bv::add(mgr, &a10, &da);
            let b10 = bv::mul_const(mgr, &b, 10);
            b = bv::add(mgr, &b10, &db);
        }
        // …binary product, then binary→BCD by repeated div-mod 10.
        let mut product = bv::mul(mgr, &a, &b);
        let num_digits = 2 * self.k;
        let mut bcd: Vec<BitVec> = Vec::with_capacity(num_digits);
        for _ in 0..num_digits - 1 {
            let (q, r) = bv::divmod_const(mgr, &product, 10);
            bcd.push(truncate_unchecked(r, 4));
            product = q;
        }
        bcd.push(truncate_unchecked(product, 4)); // most significant digit
        bcd.reverse(); // bcd[0] = most significant

        let valid = self.digits.valid(mgr, layout);
        let invalid = mgr.not(valid);
        let m = self.num_outputs();
        let mut on = Vec::with_capacity(m);
        let mut dc = Vec::with_capacity(m);
        for j in 0..m {
            let digit = j / 4;
            let bit = 3 - j % 4;
            let value_bit = bcd[digit][bit];
            on.push(mgr.and(valid, value_bit));
            dc.push(invalid);
        }
        IsfBdds::from_on_dc(mgr, on, dc)
    }

    fn dc_ratio(&self) -> f64 {
        self.digits.dc_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddcf_core::Cf;

    #[test]
    fn decimal_packing() {
        // 3 digits, value 105: digits (1, 0, 5).
        // Digit 0 (MSB) = 1 -> code 0001 -> its LSB (bit 0) sits at output 3.
        // Digit 2 = 5 -> code 0101 -> bits 2 and 0 -> outputs 8+1, 8+3.
        let w = decimal_to_word(105, 3);
        assert_eq!(w, (1 << 3) | (1 << 9) | (1 << 11));
    }

    #[test]
    fn paper_arities() {
        let a3 = DecimalAdder::new(3);
        assert_eq!(a3.num_inputs(), 24);
        assert_eq!(a3.num_outputs(), 16);
        let a4 = DecimalAdder::new(4);
        assert_eq!(a4.num_inputs(), 32);
        assert_eq!(a4.num_outputs(), 20);
        let m2 = DecimalMultiplier::new(2);
        assert_eq!(m2.num_inputs(), 16);
        assert_eq!(m2.num_outputs(), 16);
    }

    #[test]
    fn paper_dc_ratios() {
        assert!((DecimalAdder::new(3).dc_ratio() - 0.940).abs() < 5e-4);
        assert!((DecimalAdder::new(4).dc_ratio() - 0.977).abs() < 5e-4);
        assert!((DecimalMultiplier::new(2).dc_ratio() - 0.847).abs() < 5e-4);
    }

    #[test]
    fn one_digit_adder_exhaustive() {
        let adder = DecimalAdder::new(1);
        let cf = Cf::build(adder.layout(), |mgr, layout| adder.build_isf(mgr, layout));
        for word in 0..1u64 << 8 {
            let input: Vec<bool> = (0..8).map(|i| word >> i & 1 == 1).collect();
            if let Response::Value(expect) = adder.respond(&input) {
                assert_eq!(cf.eval_completed(&input), expect, "input {word:#x}");
            }
        }
    }

    #[test]
    fn two_digit_adder_on_valid_inputs() {
        let adder = DecimalAdder::new(2);
        let cf = Cf::build(adder.layout(), |mgr, layout| adder.build_isf(mgr, layout));
        for a in 0..100u64 {
            for b in 0..100u64 {
                // digit pair layout: (a_hi, b_hi, a_lo, b_lo)
                let digits = [a / 10, b / 10, a % 10, b % 10];
                let word = adder.digits.encode(&digits);
                let input: Vec<bool> = (0..16).map(|i| word >> i & 1 == 1).collect();
                assert_eq!(
                    cf.eval_completed(&input),
                    decimal_to_word(a + b, 3),
                    "{a} + {b}"
                );
            }
        }
    }

    #[test]
    fn one_digit_multiplier_exhaustive() {
        let mult = DecimalMultiplier::new(1);
        let cf = Cf::build(mult.layout(), |mgr, layout| mult.build_isf(mgr, layout));
        for word in 0..1u64 << 8 {
            let input: Vec<bool> = (0..8).map(|i| word >> i & 1 == 1).collect();
            if let Response::Value(expect) = mult.respond(&input) {
                assert_eq!(cf.eval_completed(&input), expect, "input {word:#x}");
            }
        }
    }

    #[test]
    fn two_digit_multiplier_sampled() {
        let mult = DecimalMultiplier::new(2);
        let cf = Cf::build(mult.layout(), |mgr, layout| mult.build_isf(mgr, layout));
        for a in (0..100u64).step_by(7) {
            for b in (0..100u64).step_by(13) {
                let digits = [a / 10, b / 10, a % 10, b % 10];
                let word = mult.digits.encode(&digits);
                let input: Vec<bool> = (0..16).map(|i| word >> i & 1 == 1).collect();
                assert_eq!(
                    cf.eval_completed(&input),
                    decimal_to_word(a * b, 4),
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn adder_oracle_dc_on_invalid_bcd() {
        let adder = DecimalAdder::new(1);
        // a = 0xF is invalid BCD.
        let input: Vec<bool> = (0..8).map(|i| 0x0Fu64 >> i & 1 == 1).collect();
        assert_eq!(adder.respond(&input), Response::DontCare);
    }
}
