//! Sampled consistency between every generator's symbolic construction and
//! its arithmetic oracle: on specified inputs the completed BDD_for_CF must
//! equal the oracle word; on don't-care inputs anything is admissible by
//! construction (checked through the allowed-word sets where cheap).

use bddcf_core::Cf;
use bddcf_funcs::{
    Benchmark, DecimalAdder, DecimalMultiplier, RadixConverter, RnsConverter, WordList,
};
use bddcf_logic::Response;

/// Deterministic xorshift so failures are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn check(benchmark: &dyn Benchmark, samples: usize) {
    let cf = Cf::build(benchmark.layout(), |mgr, layout| {
        benchmark.build_isf(mgr, layout)
    });
    let n = benchmark.num_inputs();
    let mut rng = Rng(0x1234_5678_9abc_def0 ^ n as u64);
    let mut checked = 0usize;
    let mut guard = 0usize;
    while checked < samples {
        guard += 1;
        assert!(guard < samples * 1000, "not enough specified inputs found");
        let word = rng.next() & ((1u64 << n) - 1);
        let input: Vec<bool> = (0..n).map(|i| word >> i & 1 == 1).collect();
        if let Response::Value(expect) = benchmark.respond(&input) {
            assert_eq!(
                cf.eval_completed(&input),
                expect,
                "{}: input {word:#x}",
                benchmark.name()
            );
            checked += 1;
        }
    }
}

#[test]
fn rns_5_7_11_13_matches_crt() {
    check(&RnsConverter::rns_5_7_11_13(), 200);
}

#[test]
fn radix_converters_match_horner() {
    check(&RadixConverter::new(11, 4), 150);
    check(&RadixConverter::new(13, 4), 150);
    check(&RadixConverter::new(5, 6), 150);
    check(&RadixConverter::new(3, 10), 150);
}

#[test]
fn three_digit_adder_matches_bcd_arithmetic() {
    check(&DecimalAdder::new(3), 150);
}

#[test]
fn two_digit_multiplier_matches_arithmetic() {
    check(&DecimalMultiplier::new(2), 150);
}

#[test]
fn word_list_matches_dictionary() {
    // Exact variant so random probes are specified (mostly index 0).
    let list = WordList::synthetic(64, false);
    let cf = Cf::build(list.layout(), |mgr, layout| list.build_isf(mgr, layout));
    // All registered words.
    for (i, &w) in list.encoded().iter().enumerate() {
        let input: Vec<bool> = (0..40).map(|b| w >> b & 1 == 1).collect();
        assert_eq!(cf.eval_completed(&input), (i + 1) as u64);
    }
    // Random non-words map to 0.
    let mut rng = Rng(7);
    for _ in 0..100 {
        let w = rng.next() & ((1u64 << 40) - 1);
        if list.encoded().contains(&w) {
            continue;
        }
        let input: Vec<bool> = (0..40).map(|b| w >> b & 1 == 1).collect();
        assert_eq!(cf.eval_completed(&input), 0);
    }
}
