//! A minimal, deterministic JSON layer for the serving protocol.
//!
//! The workspace builds offline with no serialization dependencies, and the
//! daemon's crash-recovery guarantee ("a resumed response is byte-identical
//! to an uninterrupted one") needs *deterministic* rendering anyway, so the
//! protocol uses its own tiny JSON subset:
//!
//! * values are `null`, booleans, **integers** (no floats, no exponents —
//!   the protocol never needs them and rejecting them keeps round trips
//!   exact), strings, arrays, and objects;
//! * objects preserve insertion order and render exactly as constructed,
//!   so the same [`Json`] value always renders to the same bytes;
//! * the parser bounds nesting depth, making malformed-input handling a
//!   typed error instead of a stack overflow.

use std::fmt;

/// Maximum nesting depth the parser accepts. The protocol uses at most
/// three levels; 32 leaves generous headroom while keeping hostile input
/// from recursing unboundedly.
const MAX_DEPTH: usize = 32;

/// A JSON value of the protocol subset (integers only, ordered objects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the subset has no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep insertion order and may not repeat.
    Obj(Vec<(String, Json)>),
}

/// Why a byte sequence failed to parse as protocol JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (first match; parsed objects have no repeats).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as an unsigned value, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to the canonical byte representation: no whitespace, fields
    /// in construction order, minimal escapes. The same value always
    /// renders to the same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                out.push_str(&n.to_string());
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses protocol JSON from bytes. Rejects floats, duplicate object keys,
/// trailing garbage, and nesting deeper than [`MAX_DEPTH`].
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
        offset: e.valid_up_to(),
        message: "request is not valid UTF-8".into(),
    })?;
    let mut p = Parser {
        text: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(p.err("trailing bytes after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.text[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.integer(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn integer(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not part of the protocol"));
        }
        let digits = std::str::from_utf8(&self.text[start..self.pos])
            .expect("invariant: digit span is ASCII");
        digits
            .parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err(format!("integer {digits:?} out of i64 range")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .text
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the emitter never produces them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input was validated).
                    let rest = std::str::from_utf8(&self.text[self.pos..])
                        .expect("invariant: input validated as UTF-8");
                    let c = rest
                        .chars()
                        .next()
                        .expect("invariant: peek saw at least one byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_byte_identical() {
        let value = Json::Obj(vec![
            ("id".into(), Json::Str("req-1".into())),
            ("n".into(), Json::Int(-42)),
            (
                "arr".into(),
                Json::Arr(vec![
                    Json::Null,
                    Json::Bool(true),
                    Json::Str("a\"b\n".into()),
                ]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = value.render();
        let reparsed = parse(text.as_bytes()).expect("round trip");
        assert_eq!(reparsed, value);
        assert_eq!(reparsed.render(), text, "render is canonical");
    }

    #[test]
    fn rejects_floats_duplicates_and_trailing_garbage() {
        assert!(parse(b"1.5").is_err());
        assert!(parse(b"1e3").is_err());
        assert!(parse(b"{\"a\":1,\"a\":2}").is_err());
        assert!(parse(b"{} x").is_err());
        assert!(parse(b"").is_err());
        assert!(parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn bounds_nesting_depth() {
        let mut hostile = String::new();
        for _ in 0..200 {
            hostile.push('[');
        }
        let err = parse(hostile.as_bytes()).expect_err("deep nesting rejected");
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn accessors_see_fields() {
        let v = parse(b"{\"s\":\"x\",\"i\":7,\"b\":false,\"a\":[1]}").expect("parse");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("i").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn control_chars_escape_and_reparse() {
        let value = Json::Str("\u{1}\u{1f}".into());
        let text = value.render();
        assert_eq!(text, "\"\\u0001\\u001f\"");
        assert_eq!(parse(text.as_bytes()).expect("reparse"), value);
    }
}
