//! The TCP daemon: accept loop, durable request spool, crash recovery,
//! and the two graceful-shutdown modes.
//!
//! # Durability model
//!
//! When a spool directory is configured, each admitted spec owns one entry
//! `req-<hash16>/` inside it:
//!
//! * `request.json` — the request's wire payload, written atomically
//!   (tmp + fsync + rename) right after admission. Its existence is the
//!   daemon's *acceptance record*.
//! * `ckpt/` — `BDDCFCKP` checkpoints, written by the reduction when the
//!   request asked for checkpointing (and always for recovered jobs).
//! * `response.json` — the response's wire payload, written atomically on
//!   completion. Its existence marks the entry *done*.
//!
//! A restarted daemon rescans the spool before accepting connections:
//! every entry with an acceptance record but no completion record is
//! resubmitted (resuming from its latest checkpoint when one exists), so a
//! `SIGKILL` loses no accepted request — the chaos harness asserts exactly
//! this. A later request for an already-completed spec replays the spooled
//! response, but only after it passes the same artifact audit a cache hit
//! must pass.
//!
//! # Shutdown
//!
//! `unsafe` is forbidden workspace-wide, so the daemon does not hook
//! signals; shutdown is a protocol operation. `drain` finishes all
//! admitted work, `checkpoint` cancels in-flight jobs at their next
//! resumable boundary and leaves the rest spooled for the next start.

use crate::cache::{CacheStats, ResponseCache};
use crate::job::build_cf;
use crate::pool::{DoneHook, Job, PoolConfig, PoolCounters, WorkerPool};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, RequestBody, Response, ShutdownMode,
    Status, SynthSpec, DEFAULT_MAX_FRAME,
};
use crate::{json, json::Json};
use bddcf_bdd::vfs::{self, StdVfs, Vfs};
use bddcf_bdd::{Clock, MonotonicClock};
use bddcf_check::audit_artifact_text;
use bddcf_core::quarantine_name;
use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Bounded queue depth.
    pub queue_capacity: usize,
    /// Global in-flight node budget.
    pub max_inflight_nodes: usize,
    /// Default per-job node shard.
    pub default_node_limit: usize,
    /// Frame payload cap.
    pub max_frame_len: usize,
    /// Validated response cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Durable spool directory (None disables spooling, checkpointing, and
    /// crash recovery).
    pub spool_dir: Option<PathBuf>,
    /// Circuit-breaker consecutive-failure threshold.
    pub breaker_threshold: u32,
    /// Circuit-breaker open-state cooldown (rejections before a trial).
    pub breaker_cooldown: u32,
    /// Time source (injectable for deterministic deadline tests).
    pub clock: Arc<dyn Clock>,
    /// Test hook: hold picked-up jobs while true (see [`PoolConfig::hold`]).
    pub hold: Option<Arc<AtomicBool>>,
    /// Filesystem behind the spool, cache records, and checkpoints —
    /// [`StdVfs`] in production, a fault-injecting
    /// [`FaultVfs`](bddcf_bdd::vfs::FaultVfs) under `bddcf diskchaos`.
    pub vfs: Arc<dyn Vfs>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 16,
            max_inflight_nodes: 1 << 22,
            default_node_limit: 1 << 20,
            max_frame_len: DEFAULT_MAX_FRAME,
            cache_capacity: 64,
            spool_dir: None,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            clock: Arc::new(MonotonicClock),
            hold: None,
            vfs: Arc::new(StdVfs),
        }
    }
}

/// Final numbers reported by [`Server::wait`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Pool counters at exit.
    pub pool: PoolCounters,
    /// Cache counters at exit.
    pub cache: CacheStats,
    /// Spool entries resubmitted at startup (crash recovery).
    pub recovered: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Storage faults observed on the spool path (failed request/response
    /// record writes, torn records quarantined on rescan).
    pub storage_faults: u64,
    /// Accepted-and-replied requests whose durable record could not be
    /// written; their responses carried `storage_degraded`.
    pub storage_nondurable: u64,
}

/// Whether the daemon can currently write durable records, plus the fault
/// counters behind the `stats` op. ENOSPC/EIO on the spool flips
/// `degraded` on (storage-degraded mode: admissions keep working, replies
/// carry `storage_degraded`, nothing is cached); the next successful
/// durable write flips it back off — breaker-style recovery, observable by
/// clients polling `stats`.
#[derive(Default)]
struct StorageHealth {
    degraded: AtomicBool,
    faults: AtomicU64,
    nondurable: AtomicU64,
}

impl StorageHealth {
    fn mark_fault(&self) {
        // Monotonic counter, read only for stats; no payload is
        // published through it. xlint: relaxed-ok
        self.faults.fetch_add(1, Ordering::Relaxed);
        // Release pairs with the Acquire load in stats_payload: a client
        // that observes `storage_degraded: true` also observes the fault
        // counters bumped before the flag flipped.
        self.degraded.store(true, Ordering::Release);
    }

    fn mark_ok(&self) {
        self.degraded.store(false, Ordering::Release);
    }

    fn note_nondurable(&self) {
        // xlint: relaxed-ok — monotonic counter, read only for stats.
        self.nondurable.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by connection threads and the pool's completion hook.
struct Store {
    cache: Mutex<ResponseCache>,
    /// Spec hashes whose spool entry is owned by an in-flight job; a
    /// second concurrent request for the same spec runs spool-less (the
    /// artifacts are deterministic, so both replies are byte-identical).
    pending: Mutex<HashSet<u64>>,
    spool: Option<PathBuf>,
    vfs: Arc<dyn Vfs>,
    health: StorageHealth,
}

struct Inner {
    store: Arc<Store>,
    pool: WorkerPool,
    max_frame_len: usize,
    clock: Arc<dyn Clock>,
    stop: AtomicBool,
    shutdown_mode: Mutex<Option<ShutdownMode>>,
    connections: AtomicU64,
}

/// A running daemon. Dropping it without [`Server::wait`] leaves the
/// accept thread running; long-lived embedders should always `wait`.
pub struct Server {
    inner: Arc<Inner>,
    accept_handle: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
    recovered: u64,
}

impl Server {
    /// Binds, replays the spool, and starts accepting.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if let Some(dir) = &config.spool_dir {
            config.vfs.create_dir_all(dir)?;
        }
        let store = Arc::new(Store {
            cache: Mutex::new(ResponseCache::new(config.cache_capacity)),
            pending: Mutex::new(HashSet::new()),
            spool: config.spool_dir.clone(),
            vfs: Arc::clone(&config.vfs),
            health: StorageHealth::default(),
        });
        let done: DoneHook = {
            let store = Arc::clone(&store);
            Arc::new(move |job: &Job, response: &mut Response| {
                if let Some(entry) = &job.spool_entry {
                    // Any terminal outcome is a completion record; failed
                    // specs are re-executed for fresh requests but are not
                    // "lost" for recovery accounting. A failed write flips
                    // the daemon storage-degraded and flags the reply
                    // *before* it is sent: an accepted-and-replied request
                    // is either durably recorded or explicitly non-durable.
                    match vfs::write_atomic(
                        store.vfs.as_ref(),
                        entry,
                        "response.json",
                        &response.to_bytes(),
                    ) {
                        Ok(()) => store.health.mark_ok(),
                        Err(_) => {
                            store.health.mark_fault();
                            store.health.note_nondurable();
                            response.storage_degraded = true;
                        }
                    }
                    lock(&store.pending).remove(&job.spec.hash());
                }
                // Only clean, durably-recorded results are cacheable: a
                // storage-degraded response must be recomputed (and
                // re-recorded) once storage recovers.
                if response.status == Status::Ok && !response.cached && !response.storage_degraded {
                    if let Some(result) = &response.result {
                        lock(&store.cache).insert(&job.spec, result, false);
                    }
                }
            })
        };
        let pool = WorkerPool::start(
            PoolConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                max_inflight_nodes: config.max_inflight_nodes,
                default_node_limit: config.default_node_limit,
                breaker_threshold: config.breaker_threshold,
                breaker_cooldown: config.breaker_cooldown,
                clock: Arc::clone(&config.clock),
                hold: config.hold.clone(),
                vfs: Arc::clone(&config.vfs),
            },
            done,
        );
        let inner = Arc::new(Inner {
            store,
            pool,
            max_frame_len: config.max_frame_len,
            clock: Arc::clone(&config.clock),
            stop: AtomicBool::new(false),
            shutdown_mode: Mutex::new(None),
            connections: AtomicU64::new(0),
        });

        let recovered = match &config.spool_dir {
            Some(dir) => recover_spool(&inner, dir),
            None => 0,
        };

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name("bddcf-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))?;
        Ok(Server {
            inner,
            accept_handle: Some(accept_handle),
            local_addr,
            recovered,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until a protocol shutdown completes, then returns the final
    /// stats. (With no shutdown request this serves forever.)
    pub fn wait(mut self) -> ServerStats {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // The shutdown connection already ran begin_drain/begin_halt; a
        // stop without a recorded mode (not reachable via protocol) drains.
        if lock(&self.inner.shutdown_mode).is_none() {
            self.inner.pool.begin_drain();
        }
        let pool = self.inner.pool.join();
        ServerStats {
            pool,
            cache: lock(&self.inner.store.cache).stats(),
            recovered: self.recovered,
            connections: self.inner.connections.load(Ordering::Relaxed),
            storage_faults: self.inner.store.health.faults.load(Ordering::Relaxed),
            storage_nondurable: self.inner.store.health.nondurable.load(Ordering::Relaxed),
        }
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Quarantines a torn or unparsable durable record: rename to
/// `<name>.corrupt` (so rescans skip it) and report on stderr.
fn quarantine(vfs: &dyn Vfs, path: &Path, why: &str) {
    let dest = quarantine_name(path);
    let moved = vfs.rename(path, &dest).is_ok();
    eprintln!(
        "bddcf-serve: quarantining {why}: {}{}",
        path.display(),
        if moved {
            format!(" (moved to {})", dest.display())
        } else {
            String::from(" (rename failed; left in place)")
        }
    );
}

/// Resubmits every accepted-but-incomplete spool entry. Returns the count.
///
/// Salvage rules for a hostile disk: a torn `response.json` is quarantined
/// and its entry re-executed from the acceptance record; an unparsable
/// `request.json` is quarantined and skipped (the acceptance record never
/// durably landed, so the client was never promised anything).
fn recover_spool(inner: &Arc<Inner>, dir: &Path) -> u64 {
    let spool_vfs = Arc::clone(&inner.store.vfs);
    let Ok(entries) = spool_vfs.list(dir) else {
        return 0;
    };
    let mut recovered = 0;
    for path in entries {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if !name.starts_with("req-") || !spool_vfs.is_dir(&path) {
            continue;
        }
        let response_path = path.join("response.json");
        if spool_vfs.exists(&response_path) {
            match spool_vfs.read(&response_path) {
                Ok(bytes) if Response::from_bytes(&bytes).is_ok() => {
                    continue; // completed before the crash
                }
                _ => {
                    // Torn completion record: the outcome is unknown, so
                    // quarantine the record and re-run the entry.
                    inner.store.health.mark_fault();
                    quarantine(spool_vfs.as_ref(), &response_path, "torn spool response");
                }
            }
        }
        let request_path = path.join("request.json");
        let Ok(bytes) = spool_vfs.read(&request_path) else {
            continue; // killed before the acceptance record landed
        };
        let Ok(request) = Request::from_bytes(&bytes) else {
            inner.store.health.mark_fault();
            quarantine(
                spool_vfs.as_ref(),
                &request_path,
                "unparsable spool request",
            );
            continue;
        };
        let RequestBody::Synth { spec, .. } = request.body else {
            continue;
        };
        let hash = spec.hash();
        lock(&inner.store.pending).insert(hash);
        let mut attempt = 0u32;
        loop {
            let job = Job {
                id: format!("recovered-{:016x}", hash),
                spec: spec.clone(),
                // The original relative deadline is meaningless after a
                // restart; recovered jobs run to completion.
                deadline: None,
                ckpt_dir: Some(path.join("ckpt")),
                spool_entry: Some(path.clone()),
                resume: true,
                reply: None,
            };
            match inner.pool.submit(job) {
                Ok(()) => {
                    recovered += 1;
                    break;
                }
                Err(e) if e.code().is_retryable() && attempt < 10_000 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    // Breaker open (a spec that keeps killing workers):
                    // leave the entry for the next restart.
                    lock(&inner.store.pending).remove(&hash);
                    break;
                }
            }
        }
    }
    recovered
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    loop {
        if inner.stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Monotonic counter for final stats; `wait` joins the
                // accept thread before reading it. xlint: relaxed-ok
                inner.connections.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(inner);
                // Connection threads are detached: they exit at client EOF
                // and hold only an Arc, so a post-shutdown straggler cannot
                // keep the pool alive.
                let _ = std::thread::Builder::new()
                    .name("bddcf-conn".into())
                    .spawn(move || conn_loop(&conn_inner, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn conn_loop(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, inner.max_frame_len) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(FrameError::Oversized { len, max }) => {
                // The unread payload desyncs the stream: reply, then close.
                let response = Response::failure(
                    "",
                    ErrorCode::Oversized,
                    format!("frame of {len} bytes exceeds the {max}-byte cap"),
                );
                let _ = write_frame(&mut writer, &response.to_bytes());
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let reply = handle_frame(inner, &payload);
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Dispatches one frame and returns the reply payload.
fn handle_frame(inner: &Arc<Inner>, payload: &[u8]) -> Vec<u8> {
    let request = match Request::from_bytes(payload) {
        Ok(request) => request,
        Err(e) => {
            return Response::failure(e.id.unwrap_or_default(), ErrorCode::Malformed, e.message)
                .to_bytes()
        }
    };
    match request.body {
        RequestBody::Synth {
            spec,
            deadline_ms,
            checkpoint,
        } => handle_synth(inner, request.id, spec, deadline_ms, checkpoint).to_bytes(),
        RequestBody::Stats => stats_payload(inner, &request.id),
        RequestBody::Shutdown(mode) => handle_shutdown(inner, &request.id, mode),
    }
}

fn handle_synth(
    inner: &Arc<Inner>,
    id: String,
    spec: SynthSpec,
    deadline_ms: Option<u64>,
    checkpoint: bool,
) -> Response {
    let hash = spec.hash();
    let hash_hex = spec.hash_hex();

    // 1. Validated cache.
    if let Some(result) = lock(&inner.store.cache).lookup(&spec) {
        return Response {
            id,
            status: Status::Ok,
            spec_hash: Some(hash_hex),
            error: None,
            result: Some(result),
            cached: true,
            resumed: false,
            storage_degraded: false,
        };
    }

    // 2. Spool replay (a prior daemon life already answered this spec).
    let entry = inner
        .store
        .spool
        .as_ref()
        .map(|dir| dir.join(format!("req-{hash_hex}")));
    if let Some(entry_dir) = &entry {
        if let Some(mut replay) = replay_spooled(&inner.store, &spec, entry_dir) {
            replay.id = id;
            return replay;
        }
    }

    // 3. Claim spool ownership (losers run spool-less; same bytes).
    let owner = match &entry {
        Some(_) => lock(&inner.store.pending).insert(hash),
        None => false,
    };
    let entry_existed = owner
        && entry
            .as_deref()
            .is_some_and(|dir| inner.store.vfs.exists(&dir.join("request.json")));
    let (spool_entry, ckpt_dir) = if owner {
        let dir = entry.clone();
        let ckpt = if checkpoint || entry_existed {
            dir.as_ref().map(|d| d.join("ckpt"))
        } else {
            None
        };
        (dir, ckpt)
    } else {
        (None, None)
    };

    let deadline = deadline_ms.map(|ms| inner.clock.now() + Duration::from_millis(ms));
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        id: id.clone(),
        spec: spec.clone(),
        deadline,
        ckpt_dir,
        spool_entry: spool_entry.clone(),
        resume: entry_existed,
        reply: Some(reply_tx),
    };
    match inner.pool.submit(job) {
        Err(e) => {
            if owner {
                lock(&inner.store.pending).remove(&hash);
            }
            let mut response = Response::failure(id, e.code(), e.message());
            response.spec_hash = Some(hash_hex);
            response
        }
        Ok(()) => {
            // A failed acceptance-record write is storage-degraded, not
            // fatal: the job still runs, but its reply is flagged
            // non-durable because a crash would forget the acceptance.
            let mut accept_nondurable = false;
            if let Some(entry_dir) = &spool_entry {
                let record = Request {
                    id: id.clone(),
                    body: RequestBody::Synth {
                        spec: spec.clone(),
                        deadline_ms: None,
                        checkpoint,
                    },
                };
                match vfs::write_atomic(
                    inner.store.vfs.as_ref(),
                    entry_dir,
                    "request.json",
                    &record.to_bytes(),
                ) {
                    Ok(()) => inner.store.health.mark_ok(),
                    Err(_) => {
                        inner.store.health.mark_fault();
                        accept_nondurable = true;
                    }
                }
            }
            match reply_rx.recv() {
                Ok(mut response) => {
                    if accept_nondurable && !response.storage_degraded {
                        inner.store.health.note_nondurable();
                        response.storage_degraded = true;
                    }
                    response
                }
                // The sender was dropped without a reply: the job parked
                // during a checkpoint-mode shutdown. Its spool entry
                // survives; the next daemon finishes it.
                Err(_) => {
                    let mut response = Response::failure(
                        id,
                        ErrorCode::Draining,
                        "job parked at a checkpoint during shutdown; retry after restart",
                    );
                    response.spec_hash = Some(hash_hex);
                    response
                }
            }
        }
    }
}

/// Replays a spooled completed response for `spec`, but only if it passes
/// the same artifact audit a cache hit must pass. A rotten record is
/// quarantined (`.corrupt`) so the spec re-executes and the evidence
/// survives for inspection.
fn replay_spooled(store: &Store, spec: &SynthSpec, entry_dir: &Path) -> Option<Response> {
    let replay_vfs = store.vfs.as_ref();
    let path = entry_dir.join("response.json");
    let bytes = replay_vfs.read(&path).ok()?;
    let Ok(mut response) = Response::from_bytes(&bytes) else {
        store.health.mark_fault();
        quarantine(replay_vfs, &path, "torn spool response");
        return None;
    };
    if response.status != Status::Ok {
        return None; // errors and degradations are not replayable verdicts
    }
    let ok = response.result.as_ref().is_some_and(|result| {
        build_cf(spec).is_ok_and(|mut spec_cf| {
            audit_artifact_text(
                &result.cascade,
                &result.verilog,
                &format!("spec_{}", spec.hash_hex()),
                &mut spec_cf,
                &format!("spool:{}", spec.hash_hex()),
            )
            .is_clean()
        })
    });
    if !ok {
        store.health.mark_fault();
        quarantine(replay_vfs, &path, "audit-failing spool response");
        return None;
    }
    response.resumed = true;
    response.cached = false;
    Some(response)
}

fn stats_payload(inner: &Arc<Inner>, id: &str) -> Vec<u8> {
    let counters = inner.pool.counters();
    let cache = lock(&inner.store.cache).stats();
    let n = |v: u64| Json::Int(v.min(i64::MAX as u64) as i64);
    Json::Obj(vec![
        ("id".into(), Json::Str(id.to_owned())),
        ("status".into(), Json::Str("ok".into())),
        (
            "stats".into(),
            Json::Obj(vec![
                ("queue".into(), Json::Int(inner.pool.queue_len() as i64)),
                ("inflight".into(), Json::Int(inner.pool.inflight() as i64)),
                (
                    "committed_nodes".into(),
                    Json::Int(inner.pool.committed_nodes() as i64),
                ),
                ("submitted".into(), n(counters.submitted)),
                ("completed".into(), n(counters.completed)),
                ("degraded".into(), n(counters.degraded)),
                ("failed".into(), n(counters.failed)),
                ("panicked".into(), n(counters.panicked)),
                ("shed_deadline".into(), n(counters.shed_deadline)),
                ("parked".into(), n(counters.parked)),
                (
                    "rejected_queue_full".into(),
                    n(counters.rejected_queue_full),
                ),
                (
                    "rejected_overloaded".into(),
                    n(counters.rejected_overloaded),
                ),
                ("rejected_draining".into(), n(counters.rejected_draining)),
                ("rejected_breaker".into(), n(counters.rejected_breaker)),
                ("cache_hits".into(), n(cache.hits)),
                ("cache_misses".into(), n(cache.misses)),
                ("cache_invalidated".into(), n(cache.invalidated)),
                (
                    "storage_degraded".into(),
                    Json::Bool(inner.store.health.degraded.load(Ordering::Acquire)),
                ),
                (
                    "storage_faults".into(),
                    n(inner.store.health.faults.load(Ordering::Relaxed)),
                ),
                (
                    "storage_nondurable".into(),
                    n(inner.store.health.nondurable.load(Ordering::Relaxed)),
                ),
                (
                    "storage_degraded_jobs".into(),
                    n(counters.storage_degraded_jobs),
                ),
                ("engine_peak_nodes".into(), n(counters.engine_peak_nodes)),
                (
                    "engine_peak_arena_bytes".into(),
                    n(counters.engine_peak_arena_bytes),
                ),
                (
                    "engine_unique_lookups".into(),
                    n(counters.engine_unique_lookups),
                ),
                (
                    "engine_unique_probes".into(),
                    n(counters.engine_unique_probes),
                ),
                ("engine_cache_hits".into(), n(counters.engine_cache_hits)),
                (
                    "engine_cache_misses".into(),
                    n(counters.engine_cache_misses),
                ),
                ("engine_gc_runs".into(), n(counters.engine_gc_runs)),
                ("engine_gc_pause_ns".into(), n(counters.engine_gc_pause_ns)),
            ]),
        ),
    ])
    .render()
    .into_bytes()
}

fn handle_shutdown(inner: &Arc<Inner>, id: &str, mode: ShutdownMode) -> Vec<u8> {
    let first = {
        let mut guard = lock(&inner.shutdown_mode);
        if guard.is_none() {
            *guard = Some(mode);
            true
        } else {
            false
        }
    };
    if first {
        match mode {
            // begin_drain blocks until the pool is idle, so the ack below
            // certifies that every admitted job has a durable outcome.
            ShutdownMode::Drain => inner.pool.begin_drain(),
            ShutdownMode::Checkpoint => inner.pool.begin_halt(),
        }
        // Pure exit flag: the shutdown rendezvous is the pool drain/halt
        // above and the accept-thread join in `wait`; no data is
        // published through `stop` itself. xlint: relaxed-ok
        inner.stop.store(true, Ordering::Relaxed);
    }
    let mode_str = match mode {
        ShutdownMode::Drain => "drain",
        ShutdownMode::Checkpoint => "checkpoint",
    };
    Json::Obj(vec![
        ("id".into(), Json::Str(id.to_owned())),
        ("status".into(), Json::Str("ok".into())),
        ("shutdown".into(), Json::Str(mode_str.into())),
    ])
    .render()
    .into_bytes()
}

// Re-exported for the loadtest client, which parses ad-hoc stats frames.
pub(crate) fn parse_control_status(payload: &[u8]) -> Option<String> {
    let value = json::parse(payload).ok()?;
    value
        .get("status")
        .and_then(Json::as_str)
        .map(str::to_owned)
}
