//! `bddcf diskchaos` — the hostile-disk harness.
//!
//! Where `bddcf loadtest --kill` murders the *process*, this harness
//! murders the *disk*. Both durable paths of the workspace — `BDDCFCKP`
//! checkpoint sequences and the serve spool — are driven over a
//! journaling [`FaultVfs`], and the harness then sweeps *crash points*:
//! for every storage-event prefix it rematerializes, via
//! [`FaultVfs::crash_state`], the state an adversarial power loss could
//! leave behind (fsync-lies model: un-fsynced file data torn or lost,
//! un-dir-synced renames and creations dropped) and asserts the recovery
//! contract on that state:
//!
//! * recovery never panics (violations are typed, panics are quarantined
//!   via [`bddcf_check::run_quarantined`]);
//! * every checkpoint save that *returned* before the crash is still
//!   found by [`latest_valid_checkpoint_vfs`] afterwards, and resuming
//!   from it reproduces the uninterrupted run's artifacts byte for byte;
//! * zero accepted-and-replied serve requests are lost: each one still
//!   owns a parseable `response.json` completion record carrying the
//!   artifacts the client was promised, and a restarted daemon re-serves
//!   the identical result;
//! * every surviving artifact passes the full
//!   [`audit_artifact_text`](bddcf_check::audit_artifact_text) stack.
//!
//! A seeded write-fault sweep (ENOSPC / EIO / short write on the Nth
//! write) additionally asserts the storage-degraded contract: faulted
//! jobs still complete with baseline-identical artifacts and the
//! [`storage_degraded`](crate::job::ExecOutcome::storage_degraded) flag
//! raised.
//!
//! [`DiskChaosConfig::drop_dir_sync`] is the harness's negative control:
//! it makes every directory fsync a silent lie, exactly the failure mode
//! a missing parent-directory fsync would produce, and the sweep must
//! then report violations — proving the harness actually checks rename
//! durability rather than vacuously passing.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use bddcf_bdd::vfs::{splitmix64, FaultPlan, FaultVfs, Vfs, WriteFault};
use bddcf_check::{audit_artifact_text, run_quarantined, with_quiet_panics};
use bddcf_core::latest_valid_checkpoint_vfs;

use crate::job::{build_cf, execute, execute_vfs};
use crate::protocol::{
    read_frame, write_frame, Request, RequestBody, Response, ShutdownMode, Source, Status,
    SynthResult, SynthSpec, DEFAULT_MAX_FRAME,
};
use crate::server::{parse_control_status, Server, ServerConfig};

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct DiskChaosConfig {
    /// Seed for fault plans and crash-torn choices.
    pub seed: u64,
    /// Crash points to sweep per phase (`0` = every storage event).
    pub points: usize,
    /// Requests in the recorded serve session.
    pub requests: usize,
    /// Negative control: every directory fsync silently lies, so renames
    /// never become durable. A correct harness must FAIL under this.
    pub drop_dir_sync: bool,
}

impl Default for DiskChaosConfig {
    fn default() -> Self {
        DiskChaosConfig {
            seed: 0xd15c_cf5e,
            points: 0,
            requests: 6,
            drop_dir_sync: false,
        }
    }
}

/// What the sweep covered and every contract violation it found.
#[derive(Clone, Debug, Default)]
pub struct DiskChaosReport {
    /// Storage events journaled by the checkpointed reduction.
    pub reduction_events: usize,
    /// Crash prefixes swept over the reduction journal.
    pub reduction_crash_points: usize,
    /// Seeded Nth-write fault runs (ENOSPC / EIO / short write).
    pub reduction_fault_runs: usize,
    /// Storage events journaled by the serve spool session.
    pub serve_events: usize,
    /// Crash prefixes swept over the serve journal.
    pub serve_crash_points: usize,
    /// Requests the recorded daemon accepted and replied to.
    pub serve_replied: usize,
    /// Faults actually injected across the fault sweep.
    pub faults_injected: u64,
    /// Distinct surviving artifacts run through the audit stack.
    pub artifacts_audited: usize,
    /// Every broken promise, in discovery order.
    pub violations: Vec<String>,
}

impl DiskChaosReport {
    /// True when every crash prefix honored the recovery contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human summary (the CLI prints this verbatim).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diskchaos: reduction: {} event(s), {} crash point(s), {} fault run(s)",
            self.reduction_events, self.reduction_crash_points, self.reduction_fault_runs
        );
        let _ = writeln!(
            out,
            "           serve: {} event(s), {} crash point(s), {} request(s) replied",
            self.serve_events, self.serve_crash_points, self.serve_replied
        );
        let _ = writeln!(
            out,
            "           {} fault(s) injected, {} artifact(s) audited, {} violation(s)",
            self.faults_injected,
            self.artifacts_audited,
            self.violations.len()
        );
        const SHOWN: usize = 12;
        for violation in self.violations.iter().take(SHOWN) {
            let _ = writeln!(out, "           VIOLATION {violation}");
        }
        if self.violations.len() > SHOWN {
            let _ = writeln!(out, "           (+{} more)", self.violations.len() - SHOWN);
        }
        out.push_str(if self.passed() {
            "           PASS: every crash prefix recovered; no accepted-and-replied request lost\n"
        } else {
            "           FAIL: the storage-fault contract was violated\n"
        });
        out
    }
}

/// Runs both sweeps. `Err` is a harness breakdown (the adversary could
/// not even be set up); contract violations land in the report instead.
pub fn run_diskchaos(config: &DiskChaosConfig) -> Result<DiskChaosReport, String> {
    with_quiet_panics(|| {
        let mut report = DiskChaosReport::default();
        reduction_sweep(config, &mut report)?;
        serve_sweep(config, &mut report)?;
        Ok(report)
    })
}

/// Crash prefixes to sweep: all of `0..=total` when `points` is zero or
/// at least as many, otherwise `points` evenly spaced prefixes plus the
/// boundaries (the empty disk and the clean-shutdown disk).
fn crash_points(total: usize, points: usize) -> Vec<usize> {
    if points == 0 || points > total {
        return (0..=total).collect();
    }
    let mut out: Vec<usize> = (0..points).map(|i| i * total / points).collect();
    out.push(total);
    out.sort_unstable();
    out.dedup();
    out
}

/// Sequence number of a `ckpt-NNNNNN.bddcfck` path.
fn ckpt_seq(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("ckpt-")?
        .strip_suffix(".bddcfck")?
        .parse()
        .ok()
}

/// The reduction under test: the 5-in/3-out smoke function, big enough
/// to checkpoint at several fixpoint boundaries.
const REDUCTION_PLA: &str = "\
.i 5
.o 3
00000 001
00001 010
00010 011
00011 100
00100 101
01000 110
10000 111
11111 001
10101 1-0
";

fn reduction_spec() -> SynthSpec {
    SynthSpec::new(Source::Pla(REDUCTION_PLA.into()))
}

/// Phase A: sweep crash prefixes and seeded write faults over a
/// checkpointed reduction.
fn reduction_sweep(config: &DiskChaosConfig, report: &mut DiskChaosReport) -> Result<(), String> {
    let spec = reduction_spec();
    let dir = PathBuf::from("/ckpt");
    let baseline = execute(&spec, None, None, false)
        .map_err(|e| format!("diskchaos baseline run failed: {e:?}"))?;

    // Recording run: a fault-free FaultVfs journals every storage event
    // the checkpointed reduction performs.
    let vfs = FaultVfs::with_plan(FaultPlan {
        seed: splitmix64(config.seed),
        ignore_sync_dir: config.drop_dir_sync,
        ..FaultPlan::default()
    });
    let shared: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let recorded = execute_vfs(&spec, None, Some(&dir), false, &shared)
        .map_err(|e| format!("diskchaos recording run failed: {e:?}"))?;
    if recorded.storage_degraded {
        return Err("diskchaos recording run degraded on a fault-free disk".into());
    }
    if recorded.result != baseline.result {
        report
            .violations
            .push("recording run diverged from the in-memory baseline".into());
    }

    let journal = vfs.journal();
    report.reduction_events = journal.len();

    // A `Checkpointer::save` returns only after the covering directory
    // fsync, so the SyncDir events on the checkpoint directory mark
    // exactly the saves whose durability was *promised* to the caller.
    let save_returns: Vec<usize> = journal
        .iter()
        .enumerate()
        .filter(|(_, event)| event.is_sync_dir_of(&dir))
        .map(|(index, _)| index)
        .collect();

    for k in crash_points(journal.len(), config.points) {
        report.reduction_crash_points += 1;
        let completed_saves = save_returns.iter().filter(|&&index| index < k).count() as u64;
        let crashed: Arc<dyn Vfs> =
            Arc::new(vfs.crash_state(k, splitmix64(config.seed ^ 0xa11c_e000 ^ k as u64)));
        let spec = spec.clone();
        let baseline_result = baseline.result.clone();
        let dir = dir.clone();
        let outcome = run_quarantined(&format!("reduction crash point {k}"), move || {
            // Saves are sequential from 0, so `completed_saves` returned
            // saves promise a surviving checkpoint of sequence at least
            // `completed_saves - 1`.
            if completed_saves > 0 {
                match latest_valid_checkpoint_vfs(crashed.as_ref(), &dir) {
                    Ok(Some((path, _loaded))) => {
                        let seq = ckpt_seq(&path);
                        if seq.is_none() || seq.is_some_and(|s| s + 1 < completed_saves) {
                            return Err(format!(
                                "crash point {k}: {completed_saves} save(s) returned but the \
                                 newest surviving checkpoint is {}",
                                path.display()
                            ));
                        }
                    }
                    Ok(None) => {
                        return Err(format!(
                            "crash point {k}: {completed_saves} save(s) returned but no \
                             checkpoint survived the crash"
                        ))
                    }
                    Err(e) => {
                        return Err(format!("crash point {k}: checkpoint rescan failed: {e}"))
                    }
                }
            }
            match execute_vfs(&spec, None, Some(&dir), true, &crashed) {
                Ok(out) if out.result == baseline_result => Ok(()),
                Ok(_) => Err(format!(
                    "crash point {k}: recovered artifacts diverge from the baseline"
                )),
                Err(e) => Err(format!("crash point {k}: recovery failed: {e:?}")),
            }
        });
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(violation)) => report.violations.push(violation),
            Err(q) => report
                .violations
                .push(format!("reduction recovery panicked: {q}")),
        }
    }

    // Seeded Nth-write fault sweep: the job must absorb ENOSPC / EIO /
    // short writes by falling back to an un-checkpointed run — same
    // artifacts, `storage_degraded` raised.
    const FAULTS: [WriteFault; 3] = [WriteFault::Enospc, WriteFault::Eio, WriteFault::ShortWrite];
    let total_writes = vfs.writes_observed();
    let fault_runs = (total_writes.min(6)) as usize;
    for i in 0..fault_runs {
        let nth = i as u64 * total_writes / fault_runs as u64;
        report.reduction_fault_runs += 1;
        let faulty = FaultVfs::with_plan(FaultPlan {
            seed: splitmix64(config.seed ^ 0xfa17 ^ nth),
            fail_write: Some(nth),
            fault: FAULTS[i % FAULTS.len()],
            ignore_sync_dir: config.drop_dir_sync,
            ..FaultPlan::default()
        });
        let faulty_shared: Arc<dyn Vfs> = Arc::new(faulty.clone());
        match execute_vfs(&spec, None, Some(&dir), false, &faulty_shared) {
            Ok(out) => {
                if !out.storage_degraded {
                    report.violations.push(format!(
                        "write fault at op {nth} was absorbed without the storage_degraded flag"
                    ));
                }
                if out.result != baseline.result {
                    report.violations.push(format!(
                        "write fault at op {nth}: degraded run diverged from the baseline"
                    ));
                }
            }
            Err(e) => report.violations.push(format!(
                "write fault at op {nth} failed the job instead of degrading: {e:?}"
            )),
        }
        report.faults_injected += faulty.faults_injected();
    }

    // Every crash recovery above was asserted byte-identical to the
    // baseline, so auditing the baseline audits every surviving artifact.
    audit_result(&spec, &baseline.result, "reduction artifacts", report);
    Ok(())
}

/// One accepted-and-replied request of the recorded serve session.
struct Replied {
    spec: SynthSpec,
    /// Journal length right after the reply frame was read: every storage
    /// event backing this reply has an index below this.
    events_after: usize,
    /// The daemon explicitly disclaimed durability for this reply.
    storage_degraded: bool,
}

/// Phase B: record a spooled serve session, then sweep crash prefixes
/// over its storage journal.
fn serve_sweep(config: &DiskChaosConfig, report: &mut DiskChaosReport) -> Result<(), String> {
    let spool = PathBuf::from("/spool");
    let vfs = FaultVfs::with_plan(FaultPlan {
        seed: splitmix64(config.seed ^ 0x5e12_e000),
        ignore_sync_dir: config.drop_dir_sync,
        ..FaultPlan::default()
    });

    // One worker keeps the session sequential, so `events_after` cleanly
    // separates each reply's storage events from the next request's.
    let server = Server::start(serve_config(&spool, &vfs))
        .map_err(|e| format!("diskchaos serve start failed: {e}"))?;
    let addr = server.local_addr();

    let mut expected: BTreeMap<u64, (SynthSpec, SynthResult)> = BTreeMap::new();
    let mut replied: Vec<Replied> = Vec::new();
    for i in 0..config.requests.max(1) {
        // Three distinct tiny functions, repeated: duplicates exercise
        // the cache/replay path on the crashed disk too.
        let spec = SynthSpec::new(Source::Pla(crate::loadtest::pla_text(i as u64 % 3)));
        let request = Request {
            id: format!("dc-{i}"),
            body: RequestBody::Synth {
                spec: spec.clone(),
                deadline_ms: None,
                checkpoint: i % 2 == 0,
            },
        };
        let response = roundtrip(addr, &request)?;
        if response.status == Status::Error {
            report.violations.push(format!(
                "request dc-{i} failed on a fault-free disk: {:?}",
                response.error
            ));
            continue;
        }
        let hash = spec.hash();
        if let std::collections::btree_map::Entry::Vacant(slot) = expected.entry(hash) {
            let local = execute(&spec, None, None, false)
                .map_err(|e| format!("local baseline for dc-{i} failed: {e:?}"))?;
            slot.insert((spec.clone(), local.result));
        }
        if response.result.as_ref() != expected.get(&hash).map(|(_, r)| r) {
            report.violations.push(format!(
                "request dc-{i}: reply diverges from the local baseline"
            ));
        }
        replied.push(Replied {
            spec,
            events_after: vfs.events_len(),
            storage_degraded: response.storage_degraded,
        });
    }
    shutdown_drain(addr)?;
    let _ = server.wait();
    report.serve_replied = replied.len();
    report.serve_events = vfs.events_len();

    for k in crash_points(vfs.events_len(), config.points) {
        report.serve_crash_points += 1;
        let crashed = vfs.crash_state(k, splitmix64(config.seed ^ 0xd15c_0000 ^ k as u64));

        // Zero-loss check: every request replied to before the crash —
        // and not explicitly disclaimed as non-durable — must still own a
        // parseable completion record promising the same artifacts. The
        // reply frame is sent only after `response.json` publishes
        // (write + fsync + rename + dir fsync), so the whole publish sits
        // inside this crash prefix.
        let mut checked: BTreeSet<u64> = BTreeSet::new();
        for r in replied
            .iter()
            .filter(|r| r.events_after <= k && !r.storage_degraded)
        {
            let hash = r.spec.hash();
            if !checked.insert(hash) {
                continue;
            }
            let record = spool
                .join(format!("req-{}", r.spec.hash_hex()))
                .join("response.json");
            match crashed.read(&record) {
                Ok(bytes) => match Response::from_bytes(&bytes) {
                    Ok(resp)
                        if resp.status != Status::Error
                            && resp.result.as_ref() == expected.get(&hash).map(|(_, r)| r) => {}
                    Ok(_) => report.violations.push(format!(
                        "crash point {k}: durable record for req-{} diverges from the reply",
                        r.spec.hash_hex()
                    )),
                    Err(e) => report.violations.push(format!(
                        "crash point {k}: durable record for req-{} is torn: {e}",
                        r.spec.hash_hex()
                    )),
                },
                Err(_) => report.violations.push(format!(
                    "crash point {k}: accepted-and-replied req-{} lost its durable record",
                    r.spec.hash_hex()
                )),
            }
        }

        // Restart on the crashed disk: recovery must not panic, and every
        // previously replied spec must re-serve the identical result
        // (from the surviving record, a surviving checkpoint, or a clean
        // re-run — the client cannot tell and must not need to).
        let replay: Vec<(SynthSpec, SynthResult)> = {
            let mut seen = BTreeSet::new();
            replied
                .iter()
                .filter(|r| r.events_after <= k && seen.insert(r.spec.hash()))
                .filter_map(|r| {
                    expected
                        .get(&r.spec.hash())
                        .map(|(_, want)| (r.spec.clone(), want.clone()))
                })
                .collect()
        };
        let spool = spool.clone();
        let outcome = run_quarantined(&format!("serve crash point {k}"), move || {
            let server = Server::start(serve_config(&spool, &crashed))
                .map_err(|e| format!("crash point {k}: restart failed: {e}"))?;
            let addr = server.local_addr();
            for (j, (spec, want)) in replay.iter().enumerate() {
                let request = Request {
                    id: format!("dc-replay-{k}-{j}"),
                    body: RequestBody::Synth {
                        spec: spec.clone(),
                        deadline_ms: None,
                        checkpoint: false,
                    },
                };
                let response = retry_roundtrip(addr, &request)?;
                if response.status == Status::Error {
                    return Err(format!(
                        "crash point {k}: replay of req-{} failed: {:?}",
                        spec.hash_hex(),
                        response.error
                    ));
                }
                if response.result.as_ref() != Some(want) {
                    return Err(format!(
                        "crash point {k}: replay of req-{} diverges from the baseline",
                        spec.hash_hex()
                    ));
                }
            }
            shutdown_drain(addr)?;
            let _ = server.wait();
            Ok(())
        });
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(violation)) => report.violations.push(violation),
            Err(q) => report
                .violations
                .push(format!("serve recovery panicked: {q}")),
        }
    }

    // Every distinct artifact the session promised goes through the full
    // audit stack once (replies and records were asserted identical).
    for (spec, result) in expected.values() {
        audit_result(
            spec,
            result,
            &format!("serve req-{}", spec.hash_hex()),
            report,
        );
    }
    Ok(())
}

fn serve_config(spool: &Path, vfs: &FaultVfs) -> ServerConfig {
    ServerConfig {
        workers: 1,
        queue_capacity: 16,
        spool_dir: Some(spool.to_path_buf()),
        vfs: Arc::new(vfs.clone()),
        ..ServerConfig::default()
    }
}

/// Runs one surviving artifact pair through the audit stack.
fn audit_result(spec: &SynthSpec, result: &SynthResult, tag: &str, report: &mut DiskChaosReport) {
    report.artifacts_audited += 1;
    let clean = build_cf(spec).is_ok_and(|mut cf| {
        audit_artifact_text(
            &result.cascade,
            &result.verilog,
            &format!("spec_{}", spec.hash_hex()),
            &mut cf,
            tag,
        )
        .is_clean()
    });
    if !clean {
        report
            .violations
            .push(format!("{tag}: surviving artifact failed the audit stack"));
    }
}

fn roundtrip_raw(addr: SocketAddr, payload: &[u8]) -> Result<Vec<u8>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("socket: {e}"))?;
    let read_half = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, payload).map_err(|e| format!("send: {e}"))?;
    match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
        Ok(Some(reply)) => Ok(reply),
        Ok(None) => Err("daemon closed before replying".into()),
        Err(e) => Err(format!("read: {e}")),
    }
}

fn roundtrip(addr: SocketAddr, request: &Request) -> Result<Response, String> {
    let reply = roundtrip_raw(addr, &request.to_bytes())?;
    Response::from_bytes(&reply).map_err(|e| format!("parse reply: {e}"))
}

/// [`roundtrip`] that waits out retryable admission rejections (a
/// restarted daemon may still be chewing through recovered spool entries).
fn retry_roundtrip(addr: SocketAddr, request: &Request) -> Result<Response, String> {
    for _ in 0..2000 {
        let response = roundtrip(addr, request)?;
        match &response.error {
            Some((code, _)) if code.is_retryable() => {
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => return Ok(response),
        }
    }
    Err("admission retries exhausted".into())
}

fn shutdown_drain(addr: SocketAddr) -> Result<(), String> {
    let request = Request {
        id: "dc-drain".into(),
        body: RequestBody::Shutdown(ShutdownMode::Drain),
    };
    let ack = roundtrip_raw(addr, &request.to_bytes())?;
    if parse_control_status(&ack).as_deref() == Some("ok") {
        Ok(())
    } else {
        Err("drain shutdown was not acknowledged".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_point_sampling_covers_the_boundaries() {
        assert_eq!(crash_points(3, 0), vec![0, 1, 2, 3]);
        assert_eq!(crash_points(3, 10), vec![0, 1, 2, 3]);
        let sampled = crash_points(100, 4);
        assert_eq!(sampled.first(), Some(&0));
        assert_eq!(sampled.last(), Some(&100));
        assert!(sampled.len() <= 5);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(crash_points(0, 4), vec![0]);
    }

    #[test]
    fn ckpt_seq_parses_checkpoint_names_only() {
        assert_eq!(ckpt_seq(Path::new("/d/ckpt-000007.bddcfck")), Some(7));
        assert_eq!(ckpt_seq(Path::new("/d/ckpt-000007.bddcfck.corrupt")), None);
        assert_eq!(ckpt_seq(Path::new("/d/other.bin")), None);
    }

    #[test]
    fn small_diskchaos_run_passes() {
        let config = DiskChaosConfig {
            seed: 3,
            points: 4,
            requests: 3,
            drop_dir_sync: false,
        };
        let report = run_diskchaos(&config).expect("harness runs");
        assert!(report.passed(), "{}", report.render());
        assert!(report.reduction_events > 0);
        assert!(report.serve_events > 0);
        assert_eq!(report.serve_replied, 3);
        assert!(report.faults_injected > 0);
        assert!(report.artifacts_audited > 0);
    }

    #[test]
    fn dropped_directory_fsyncs_are_caught() {
        // The negative control: with every dir fsync a lie, renames never
        // become durable and the sweep must surface violations. This is
        // the regression proving the harness checks rename durability.
        let config = DiskChaosConfig {
            seed: 3,
            points: 4,
            requests: 2,
            drop_dir_sync: true,
        };
        let report = run_diskchaos(&config).expect("harness runs");
        assert!(
            !report.passed(),
            "a lying directory fsync must break the contract"
        );
    }
}
